//! Offline stand-in for the `criterion` crate.
//!
//! crates.io is unreachable in the build environment, so this crate
//! provides the criterion API surface the workspace's benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`Throughput`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — backed by
//! a simple wall-clock harness: a short warm-up, then timed batches until
//! a per-benchmark time budget is spent, reporting the mean iteration
//! time and derived throughput.
//!
//! The budget defaults to 500 ms per benchmark; set
//! `CRITERION_BUDGET_MS` to trade precision for runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility; the
/// harness always times routine invocations individually per batch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units processed per iteration, used to derive a rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        let mut elapsed;
        loop {
            black_box(routine());
            iters += 1;
            elapsed = start.elapsed();
            if elapsed >= self.budget {
                break;
            }
        }
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn budget_from_env() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500u64);
    Duration::from_millis(ms)
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, mean_ns: f64, iters: u64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  ({:.0} elem/s)", n as f64 / (mean_ns / 1e9))
        }
        Throughput::Bytes(n) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0)
            )
        }
    });
    println!(
        "{name:<50} time: {:>12}   iters: {iters}{}",
        format_ns(mean_ns),
        rate.unwrap_or_default()
    );
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: budget_from_env(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            budget: self.budget,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            budget: self.budget,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(name, bencher.mean_ns, bencher.iters, None);
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive a rate.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; the harness is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) {
        self.budget = time;
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut bencher = Bencher {
            budget: self.budget,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id),
            bencher.mean_ns,
            bencher.iters,
            self.throughput,
        );
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            budget: self.budget,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id),
            bencher.mean_ns,
            bencher.iters,
            self.throughput,
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher {
            budget: Duration::from_millis(5),
            mean_ns: 0.0,
            iters: 0,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.iters > 0);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut b = Bencher {
            budget: Duration::from_millis(5),
            mean_ns: 0.0,
            iters: 0,
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
