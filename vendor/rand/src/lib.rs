//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `rand` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, which is all the
//! simulator requires (it never needs cryptographic randomness).
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, so
//! simulated traces are not bit-compatible with ones produced against
//! crates.io `rand`; everything inside this repository is seeded through
//! this crate, so all in-repo results remain reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their "standard" distribution (full integer range,
/// `[0, 1)` for floats, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` without modulo bias worth caring about
/// (widening-multiply method).
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Ready-made generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for upstream's
    /// `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let i = r.gen_range(0..7usize);
            assert!(i < 7);
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_supported() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn unit_floats_cover_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
