//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose length lies in `size` (half-open) with elements
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::new(9);
        let s = vec(0u8..10, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }
}
