//! The [`Strategy`] trait and the built-in combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Generation-only (no shrinking): `generate` must be deterministic given
/// the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among strategies of a common value type (the result of
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut needle = rng.below(total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if needle < w {
                return s.generate(rng);
            }
            needle -= w;
        }
        unreachable!("weights covered above")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// String literals act as regex-shaped string strategies, like upstream
/// proptest. Only the subset the workspace uses is supported: literal
/// characters, `.`, `\PC` (any non-control character), and an optional
/// `{m,n}` repetition suffix per atom. Anything else panics loudly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Clone, Copy)]
enum PatternAtom {
    NonControl,
    AnyChar,
    Literal(char),
}

fn random_char(atom: PatternAtom, rng: &mut TestRng) -> char {
    match atom {
        PatternAtom::Literal(c) => c,
        PatternAtom::NonControl | PatternAtom::AnyChar => loop {
            // Bias towards ASCII but exercise multi-byte UTF-8 too.
            let c = if rng.below(4) > 0 {
                char::from(0x20 + rng.below(0x5f) as u8)
            } else {
                match char::from_u32(rng.below(0x11_0000 - 0x20) as u32 + 0x20) {
                    Some(c) => c,
                    None => continue,
                }
            };
            if !c.is_control() {
                return c;
            }
        },
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') if chars.next_if_eq(&'C').is_some() => PatternAtom::NonControl,
                Some(esc @ ('\\' | '.' | '{' | '}')) => PatternAtom::Literal(esc),
                other => panic!("unsupported escape \\{other:?} in string strategy {pattern:?}"),
            },
            '.' => PatternAtom::AnyChar,
            '{' | '}' | '*' | '+' | '?' | '[' | '(' | '|' => {
                panic!("unsupported regex syntax {c:?} in string strategy {pattern:?}")
            }
            lit => PatternAtom::Literal(lit),
        };
        let (lo, hi) = if chars.next_if_eq(&'{').is_some() {
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            let (lo, hi) = spec
                .split_once(',')
                .unwrap_or((spec.as_str(), spec.as_str()));
            (
                lo.trim().parse::<u64>().unwrap_or(0),
                hi.trim().parse::<u64>().unwrap_or(0),
            )
        } else {
            (1, 1)
        };
        let count = lo + if hi > lo { rng.below(hi - lo + 1) } else { 0 };
        for _ in 0..count {
            out.push(random_char(atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop_oneof;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::new(1);
        let s = (0u8..4, 10u64..20, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((10..20).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::new(2);
        let s = Just(21u64).prop_map(|v| v * 2);
        assert_eq!(s.generate(&mut rng), 42);
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 750, "trues {trues}");
        let unweighted = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..10 {
            assert!((1..=2).contains(&unweighted.generate(&mut rng)));
        }
    }

    #[test]
    fn array_of_strategies() {
        let mut rng = TestRng::new(4);
        let s = [0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0];
        let v = s.generate(&mut rng);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
    }
}
