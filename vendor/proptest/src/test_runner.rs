//! The minimal test-runner machinery: configuration, RNG, case errors.

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    /// 64 cases, overridable at runtime with the `PROPTEST_CASES`
    /// environment variable (like upstream proptest) so CI can run a
    /// deeper fuzz pass without recompiling.
    fn default() -> Config {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        Config { cases }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and does not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Deterministic generation RNG (SplitMix64).
///
/// Seeded from the test name so every test has an independent, stable
/// stream; set `PROPTEST_SEED` to explore different streams.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The generator for the named test, honouring `PROPTEST_SEED`.
    pub fn for_test(name: &str) -> TestRng {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x1a9a_17ce_5eed_0001);
        // FNV-1a over the test name, mixed with the base seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(base ^ h)
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_streams_are_stable_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("beta");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn default_cases_parse_env_shape() {
        // The env var is process-global, so only check the fallback here;
        // the parse path is the same `str::parse` exercised below.
        if std::env::var_os("PROPTEST_CASES").is_none() {
            assert_eq!(Config::default().cases, 64);
        }
        assert_eq!("2048".parse::<u32>().ok(), Some(2048));
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::new(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }
}
