//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest's API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` and `boxed`;
//! * range, tuple, array, [`Just`], `any::<T>()` and
//!   [`collection::vec`] strategies;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`]
//!   macros;
//! * [`test_runner::Config`] (re-exported as `ProptestConfig`).
//!
//! Unlike upstream there is **no shrinking**: a failing case panics with
//! the generated input printed via `Debug`, which is enough to reproduce
//! since generation is fully deterministic (seeded per test name, override
//! with the `PROPTEST_SEED` environment variable). The default case count
//! (64) can be raised without recompiling via `PROPTEST_CASES`, mirroring
//! upstream — CI uses this for its scheduled deep fuzz pass.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Glob-import of the common names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(10).saturating_add(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let case = ::std::format!("{:#?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            ::std::panic!(
                                "proptest case {}/{} failed: {}\ninput: {}",
                                accepted + 1, config.cases, msg, case
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Chooses among strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 2 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}

/// Rejects (skips) the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}
