//! Whole-pipeline integration tests spanning every crate: simulate →
//! serialize → deserialize → analyze → render → report.

use lagalyzer::core::browser::PatternBrowser;
use lagalyzer::core::prelude::*;
use lagalyzer::model::{DurationNs, OriginClassifier};
use lagalyzer::report::{compare, figures, table3, Study};
use lagalyzer::sim::{apps, runner, scenarios};
use lagalyzer::trace::{binary, text};
use lagalyzer::viz::ascii::ascii_sketch;
use lagalyzer::viz::sketch::{render_sketch, SketchOptions};

#[test]
fn simulate_serialize_analyze_render() {
    let profile = apps::crossword_sage();
    let trace = runner::simulate_session(&profile, 0, 7);

    // Serialize and re-read through both codecs.
    let mut bin = Vec::new();
    binary::write(&trace, &mut bin).unwrap();
    let trace = binary::read(&mut bin.as_slice()).unwrap();
    let mut txt = Vec::new();
    text::write(&trace, &mut txt).unwrap();
    let trace = text::read(&mut txt.as_slice()).unwrap();

    // Analyze the decoded trace.
    let session = AnalysisSession::new(trace, AnalysisConfig::default());
    let stats = SessionStats::compute(&session);
    assert!(stats.traced_count > 1000);
    assert!(stats.perceptible_count > 10);
    let patterns = session.mine_patterns();
    assert!(patterns.len() > 50);

    // Render the slowest episode.
    let slowest = session
        .episodes()
        .iter()
        .max_by_key(|e| e.duration())
        .unwrap();
    let svg = render_sketch(
        slowest,
        session.trace().symbols(),
        &SketchOptions::default(),
    );
    assert!(svg.starts_with("<svg"));
    let art = ascii_sketch(slowest, session.trace().symbols(), 80);
    assert!(art.contains("depth 0"));

    // Browse patterns.
    let browser = PatternBrowser::new(&session, &patterns);
    assert!(!browser.rows().is_empty());
}

#[test]
fn study_to_figures_and_comparison() {
    let study = Study::run(&[apps::jfree_chart(), apps::jedit()], 1, 11);
    let table = table3::render(&study);
    assert!(table.contains("JFreeChart"));
    assert!(table.contains("Mean"));

    for fig in [
        figures::fig3(&study),
        figures::fig4(&study),
        figures::fig5(&study, true),
        figures::fig7(&study, true),
        figures::fig8(&study, true),
    ] {
        assert!(
            fig.svg.contains("JEdit") || fig.svg.contains("JFreeChart"),
            "{}",
            fig.id
        );
    }

    let comparisons = compare::table3_comparisons(&study);
    assert_eq!(comparisons.len(), 22, "11 columns x 2 apps");
    // The exact-by-construction quantities must be spot on.
    for c in &comparisons {
        if c.label.contains("< 3ms") {
            assert!((c.ratio() - 1.0).abs() < 1e-9, "{}", c.label);
        }
    }
}

#[test]
fn scenario_episode_flows_through_analysis() {
    // The scripted Fig 1 episode must classify as an output episode with
    // a GC inside, and survive the full codec + analysis pipeline.
    let trace = scenarios::figure1().into_trace();
    let mut buf = Vec::new();
    binary::write(&trace, &mut buf).unwrap();
    let trace = binary::read(&mut buf.as_slice()).unwrap();
    let session = AnalysisSession::new(trace, AnalysisConfig::default());
    assert_eq!(session.episodes().len(), 1);
    let episode = &session.episodes()[0];
    assert_eq!(episode.duration(), DurationNs::from_millis(1705));
    assert_eq!(
        lagalyzer::core::Trigger::of_episode(episode),
        lagalyzer::core::Trigger::Output
    );
    let patterns = session.mine_patterns();
    assert_eq!(patterns.len(), 1);
    assert_eq!(patterns.patterns()[0].gc_episode_count(), 1);
    // GC excluded from the signature.
    assert!(!patterns.patterns()[0].signature().as_str().contains('G'));
}

#[test]
fn custom_threshold_changes_perceptibility_not_patterns() {
    let trace = runner::simulate_session(&apps::jedit(), 0, 3);
    let strict = AnalysisSession::new(
        trace.clone(),
        AnalysisConfig {
            perceptible_threshold: DurationNs::from_millis(50),
        },
    );
    let default = AnalysisSession::new(trace, AnalysisConfig::default());
    assert!(strict.perceptible_episodes().count() > default.perceptible_episodes().count());
    // Pattern structure is timing-independent.
    assert_eq!(strict.mine_patterns().len(), default.mine_patterns().len());
}

#[test]
fn location_analysis_spans_crates() {
    let trace = runner::simulate_session(&apps::euclide(), 1, 5);
    let session = AnalysisSession::new(trace, AnalysisConfig::default());
    let classifier = OriginClassifier::java_default();
    let loc = LocationStats::of_perceptible(&session, &classifier);
    assert!((loc.library + loc.application - 1.0).abs() < 1e-9);
    assert!(loc.gc >= 0.0 && loc.gc <= 1.0);
    assert!(loc.native >= 0.0 && loc.native <= 1.0);
}
