//! Equivalence gate for the hash-consed mining hot path.
//!
//! [`PatternSet::mine_reference`] preserves the original string-keyed
//! mining implementation (render a `ShapeSignature` per episode, bucket
//! in a `HashMap` keyed by string). These tests prove the interned
//! `ShapeId` pipeline — serial, sharded (`--jobs N`), clean and salvaged
//! — produces *byte-identical* results: every `PatternSet` field, the
//! pattern browser's rendered table, and the cross-session analyses
//! (multi-session grouping, stable problems, session diff) that key on
//! the canonical signature string.

use lagalyzer::core::prelude::*;
use lagalyzer::model::prelude::*;
use lagalyzer::sim::{apps, runner};
use lagalyzer::trace::{binary, read_bytes_salvage};

fn assert_sets_identical(a: &PatternSet, b: &PatternSet) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.covered_episodes(), b.covered_episodes());
    assert_eq!(a.structureless_episodes(), b.structureless_episodes());
    assert_eq!(a.salvaged(), b.salvaged());
    for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
        assert_eq!(pa.signature(), pb.signature());
        assert_eq!(pa.episode_indices(), pb.episode_indices());
        assert_eq!(pa.stats(), pb.stats());
        assert_eq!(pa.perceptible_count(), pb.perceptible_count());
        assert_eq!(pa.gc_episode_count(), pb.gc_episode_count());
        assert_eq!(pa.tree_size(), pb.tree_size());
        assert_eq!(pa.tree_depth(), pb.tree_depth());
        assert_eq!(pa.first_is_perceptible(), pb.first_is_perceptible());
    }
}

/// Every Table II application, serial and sharded, against the
/// string-keyed reference. Identical `PatternSet`s mean the per-session
/// aggregates feeding Table III are identical too; the browser rendering
/// is compared byte-for-byte to pin the session-boundary string path.
#[test]
fn interned_mining_matches_reference_on_table2_suite() {
    for (i, profile) in apps::standard_suite().iter().enumerate() {
        let session = AnalysisSession::new(
            runner::simulate_session(profile, 0, 42),
            AnalysisConfig::default(),
        );
        let reference = PatternSet::mine_reference(&session);
        let interned = session.mine_patterns();
        assert_sets_identical(&reference, &interned);
        // Sharded mining: vary jobs a little across apps to keep runtime
        // in check while still covering several shard counts.
        for jobs in [2, 3 + i % 4] {
            assert_sets_identical(&reference, &session.mine_patterns_with_jobs(jobs));
        }
        let ref_table = PatternBrowser::new(&session, &reference).to_table();
        let new_table = PatternBrowser::new(&session, &interned).to_table();
        assert_eq!(
            ref_table, new_table,
            "{}: browser output changed",
            profile.name
        );
    }
}

/// Same gate over a salvaged (truncated) trace: lenient decode, then
/// serial and sharded mining vs the reference.
#[test]
fn interned_mining_matches_reference_on_salvaged_session() {
    let trace = runner::simulate_session(&apps::jmol(), 0, 7);
    let mut bytes = Vec::new();
    binary::write(&trace, &mut bytes).unwrap();
    bytes.truncate(bytes.len() * 3 / 4);

    let salvaged = read_bytes_salvage(&bytes).expect("truncated trace salvages");
    assert!(!salvaged.report.is_clean());
    let session = AnalysisSession::with_provenance(
        salvaged.trace,
        AnalysisConfig::default(),
        Provenance::Salvaged {
            skips: salvaged.report.skips.len() as u64,
            episodes_lost: salvaged.report.episodes_lost,
        },
    );
    let reference = PatternSet::mine_reference(&session);
    assert!(reference.salvaged());
    assert_sets_identical(&reference, &session.mine_patterns());
    for jobs in [2usize, 5] {
        assert_sets_identical(&reference, &session.mine_patterns_with_jobs(jobs));
    }
}

/// Builds a session from `(class, duration ms)` specs; `pad` extra
/// symbols are interned *first* so the same method names land on
/// different raw [`SymbolId`]s across sessions.
fn session_with_offset_symbols(specs: &[(&str, u64)], pad: usize) -> AnalysisSession {
    let meta = SessionMeta {
        application: "X".into(),
        session: SessionId::from_raw(0),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(100),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
    for i in 0..pad {
        b.symbols_mut().method(&format!("noise.Pad{i}"), "pad");
    }
    let mut cursor = 0u64;
    for (i, (name, dur)) in specs.iter().enumerate() {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(cursor))
            .unwrap();
        let m = b.symbols_mut().method(name, "run");
        t.enter(
            IntervalKind::Listener,
            Some(m),
            TimeNs::from_millis(cursor + 1),
        )
        .unwrap();
        t.exit(TimeNs::from_millis(cursor + dur - 1)).unwrap();
        t.exit(TimeNs::from_millis(cursor + dur)).unwrap();
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        cursor += dur + 10;
    }
    AnalysisSession::new(b.finish(), AnalysisConfig::default())
}

/// Token streams are per-session (raw symbol ids), so two sessions that
/// assign different ids to the same methods must still agree at the
/// session boundary: canonical signatures, multi-session grouping,
/// stable-problem detection, and diffs all key on the rendered string.
#[test]
fn cross_session_analyses_agree_despite_disjoint_symbol_ids() {
    let specs: &[(&str, u64)] = &[
        ("app.Editor", 120),
        ("app.Editor", 30),
        ("app.Renderer", 250),
        ("app.Loader", 40),
    ];
    let plain = session_with_offset_symbols(specs, 0);
    let offset = session_with_offset_symbols(specs, 17);

    // Sanity: the id assignments really are different...
    let class_id = |s: &AnalysisSession| s.trace().symbols().lookup("app.Editor");
    assert_ne!(
        class_id(&plain),
        class_id(&offset),
        "pad symbols must shift raw ids"
    );

    // ...yet the canonical signatures render identically.
    let set_a = plain.mine_patterns();
    let set_b = offset.mine_patterns();
    assert_sets_identical(&set_a, &set_b);

    // Multi-session grouping pairs every pattern across both sessions.
    let multi = MultiPatternSet::merge(&[set_a.clone(), set_b.clone()]);
    assert_eq!(multi.len(), set_a.len());
    for mp in multi.patterns() {
        assert_eq!(
            mp.session_coverage(),
            2,
            "{:?} failed to pair",
            mp.signature()
        );
    }

    // Diff sees the same pattern library on both sides.
    let diff = SessionDiff::from_patterns(&set_a, &set_b);
    assert!(diff.appeared.is_empty());
    assert!(diff.disappeared.is_empty());
    assert_eq!(diff.common.len(), set_a.len());
}
