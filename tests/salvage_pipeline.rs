//! Salvage-while-mining: a damaged trace is recovered by the lenient
//! decoder and mined through the parallel pipeline. Sharded mining over
//! the salvaged session, and streaming chunked mining over a
//! [`SalvageEpisodeStream`], must both match the serial reference
//! exactly — and every result must carry the salvaged provenance flag.

use lagalyzer::core::patterns::{PatternSet, PatternTable};
use lagalyzer::core::prelude::*;
use lagalyzer::sim::{apps, runner};
use lagalyzer::trace::{binary, read_bytes_salvage, SalvageEpisodeStream};

/// Encodes a simulated session and truncates it mid-record so strict
/// decoding fails but most episodes survive salvage.
fn damaged_trace_bytes() -> Vec<u8> {
    let trace = runner::simulate_session(&apps::crossword_sage(), 0, 21);
    let mut bytes = Vec::new();
    binary::write(&trace, &mut bytes).unwrap();
    bytes.truncate(bytes.len() * 4 / 5);
    bytes
}

fn assert_sets_identical(a: &PatternSet, b: &PatternSet) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.covered_episodes(), b.covered_episodes());
    assert_eq!(a.structureless_episodes(), b.structureless_episodes());
    assert_eq!(a.salvaged(), b.salvaged());
    for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
        assert_eq!(pa.signature(), pb.signature());
        assert_eq!(pa.episode_indices(), pb.episode_indices());
        assert_eq!(pa.stats(), pb.stats());
        assert_eq!(pa.perceptible_count(), pb.perceptible_count());
    }
}

#[test]
fn parallel_mining_over_salvaged_session_matches_serial() {
    let bytes = damaged_trace_bytes();
    let salvaged = read_bytes_salvage(&bytes).expect("truncated trace salvages");
    assert!(!salvaged.report.is_clean(), "truncation must be reported");
    assert!(salvaged.report.episodes_recovered > 100);

    let session = AnalysisSession::with_provenance(
        salvaged.trace,
        AnalysisConfig::default(),
        Provenance::Salvaged {
            skips: salvaged.report.skips.len() as u64,
            episodes_lost: salvaged.report.episodes_lost,
        },
    );
    let serial = session.mine_patterns();
    assert!(serial.salvaged(), "provenance must reach the pattern set");
    for jobs in [2usize, 4, 8] {
        assert_sets_identical(&serial, &session.mine_patterns_with_jobs(jobs));
    }
}

#[test]
fn chunked_mining_over_salvage_stream_matches_serial() {
    let bytes = damaged_trace_bytes();

    // Serial reference: bulk salvage, then mine.
    let salvaged = read_bytes_salvage(&bytes).unwrap();
    let session = AnalysisSession::with_provenance(
        salvaged.trace,
        AnalysisConfig::default(),
        Provenance::Salvaged {
            skips: salvaged.report.skips.len() as u64,
            episodes_lost: salvaged.report.episodes_lost,
        },
    );
    let reference = session.mine_patterns();
    let threshold = AnalysisConfig::default().perceptible_threshold;

    // Streaming: decode leniently, mine in chunks as episodes surface.
    // Symbol definitions can in principle appear between episode records,
    // so resolve signatures with the post-stream symbol table.
    let mut stream = SalvageEpisodeStream::new(&bytes).unwrap();
    let mut chunks: Vec<(usize, Vec<_>)> = Vec::new();
    let mut chunk = Vec::new();
    let mut base = 0usize;
    while let Some(episode) = stream.next_episode() {
        chunk.push(episode);
        if chunk.len() == 64 {
            let full = std::mem::take(&mut chunk);
            chunks.push((base, full));
            base = chunks.iter().map(|(_, c)| c.len()).sum();
        }
    }
    if !chunk.is_empty() {
        chunks.push((base, chunk));
    }
    assert!(chunks.len() > 2, "expected several chunks");
    let symbols = stream.symbols().clone();
    let (_tail, report) = stream.finish();
    assert!(!report.is_clean());

    let mut merged = PatternTable::new();
    merged.mark_salvaged();
    // Merge in reverse chunk order to exercise order-independence.
    for (start, episodes) in chunks.iter().rev() {
        let mut table = PatternTable::new();
        table.scan_episodes(episodes, *start, threshold);
        merged.merge(table);
    }
    assert_sets_identical(&reference, &merged.into_pattern_set(&symbols));
}
