//! End-to-end streaming + parallel mining: episodes are decoded
//! incrementally from the binary codec and handed to scan workers while
//! the reader is still consuming the byte stream. The merged result must
//! be byte-identical to the in-memory serial analysis.

use std::sync::mpsc;

use lagalyzer::core::patterns::PatternTable;
use lagalyzer::core::prelude::*;
use lagalyzer::sim::{apps, runner};
use lagalyzer::trace::{binary, EpisodeStream};

#[test]
fn streamed_shards_match_in_memory_mining() {
    let trace = runner::simulate_session(&apps::crossword_sage(), 0, 7);
    let mut bytes = Vec::new();
    binary::write(&trace, &mut bytes).unwrap();

    // The serial reference: decode everything, then mine.
    let session = AnalysisSession::new(trace, AnalysisConfig::default());
    let reference = session.mine_patterns();
    let threshold = AnalysisConfig::default().perceptible_threshold;

    // The streaming pipeline: the main thread decodes episodes chunk by
    // chunk and ships each chunk to a scan worker as soon as it is
    // assembled; workers mine concurrently with the decode. Chunk results
    // arrive in completion order — the table merge is order-independent,
    // so that is fine.
    const CHUNK: usize = 128;
    const WORKERS: usize = 3;
    let mut stream = EpisodeStream::new(bytes.as_slice()).unwrap();
    // Symbols are interned before the first episode record, so workers can
    // resolve frames from a clone taken as soon as episodes start flowing.
    let first = stream.next_episode().unwrap().expect("trace has episodes");
    let symbols = stream.symbols().clone();
    let (chunk_tx, chunk_rx) = mpsc::channel::<(usize, Vec<_>)>();
    let chunk_rx = std::sync::Mutex::new(chunk_rx);
    let (table_tx, table_rx) = mpsc::channel::<PatternTable>();
    let merged = std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let chunk_rx = &chunk_rx;
            let table_tx = table_tx.clone();
            scope.spawn(move || loop {
                let msg = chunk_rx.lock().unwrap().recv();
                let Ok((base, episodes)) = msg else { break };
                let mut table = PatternTable::new();
                table.scan_episodes(&episodes, base, threshold);
                table_tx.send(table).unwrap();
            });
        }
        drop(table_tx);

        let mut chunk = vec![first];
        let mut base = 0;
        let mut sent = 0usize;
        for episode in &mut stream {
            chunk.push(episode.unwrap());
            if chunk.len() == CHUNK {
                let full = std::mem::take(&mut chunk);
                base += full.len();
                chunk_tx.send((base - full.len(), full)).unwrap();
                sent += 1;
            }
        }
        if !chunk.is_empty() {
            chunk_tx.send((base, chunk)).unwrap();
            sent += 1;
        }
        drop(chunk_tx);
        assert!(sent > 3, "expected several chunks, got {sent}");

        let mut merged = PatternTable::new();
        for table in table_rx {
            merged.merge(table);
        }
        merged
    });

    let streamed = merged.into_pattern_set(&symbols);
    assert_eq!(streamed.len(), reference.len());
    assert_eq!(streamed.covered_episodes(), reference.covered_episodes());
    assert_eq!(
        streamed.structureless_episodes(),
        reference.structureless_episodes()
    );
    for (a, b) in streamed.patterns().iter().zip(reference.patterns()) {
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.episode_indices(), b.episode_indices());
        assert_eq!(a.stats().total, b.stats().total);
        assert_eq!(a.perceptible_count(), b.perceptible_count());
    }
}

#[test]
fn stream_tail_matches_bulk_metadata() {
    let trace = runner::simulate_session(&apps::jedit(), 1, 13);
    let mut bytes = Vec::new();
    binary::write(&trace, &mut bytes).unwrap();

    let mut stream = EpisodeStream::new(bytes.as_slice()).unwrap();
    let mut count = 0usize;
    while stream.next_episode().unwrap().is_some() {
        count += 1;
    }
    let tail = stream.finish().unwrap();
    assert_eq!(count, trace.episodes().len());
    assert_eq!(tail.short_episode_count, trace.short_episode_count());
    assert_eq!(tail.gc_events.len(), trace.gc_events().len());
    assert_eq!(tail.symbols.len(), trace.symbols().len());
}
