//! Work with trace files directly: write a session in both codecs, read
//! them back, and verify they agree — what an integration with a real
//! profiler would do.
//!
//! Run with: `cargo run --release --example trace_roundtrip`

use lagalyzer::sim::{apps, runner};
use lagalyzer::trace::{binary, text};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;
    let trace = runner::simulate_session(&apps::free_mind(), 0, 42);

    let bin_path = out_dir.join("freemind.lgz");
    let mut bin = Vec::new();
    binary::write(&trace, &mut bin)?;
    std::fs::write(&bin_path, &bin)?;

    let txt_path = out_dir.join("freemind.lgzt");
    let mut txt = Vec::new();
    text::write(&trace, &mut txt)?;
    std::fs::write(&txt_path, &txt)?;

    println!(
        "binary: {} ({} KiB)\ntext:   {} ({} KiB)",
        bin_path.display(),
        bin.len() / 1024,
        txt_path.display(),
        txt.len() / 1024
    );

    let from_bin = binary::read(&mut bin.as_slice())?;
    let from_txt = text::read(&mut txt.as_slice())?;
    assert_eq!(from_bin.episodes(), trace.episodes());
    assert_eq!(from_txt.episodes(), trace.episodes());
    assert_eq!(
        from_bin.short_episode_count(),
        from_txt.short_episode_count()
    );
    println!(
        "round trip ok: {} episodes, {} GC events, {} symbols",
        from_bin.episodes().len(),
        from_bin.gc_events().len(),
        from_bin.symbols().len()
    );
    Ok(())
}
