//! Cross-session analysis: find the *stable* performance problems — the
//! patterns that are perceptibly slow in every session they appear in —
//! and render a session timeline to see where they strike.
//!
//! Run with: `cargo run --release --example stable_patterns`

use lagalyzer::core::prelude::*;
use lagalyzer::sim::{apps, runner};
use lagalyzer::viz::timeline::{render_timeline, TimelineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four sessions of GanttProject, like the paper's methodology.
    let profile = apps::gantt_project();
    let sessions: Vec<AnalysisSession> = (0..4)
        .map(|i| {
            AnalysisSession::new(
                runner::simulate_session(&profile, i, 42),
                AnalysisConfig::default(),
            )
        })
        .collect();

    // Merge patterns across the sessions by structural signature.
    let multi = MultiPatternSet::mine(&sessions);
    println!(
        "{}: {} merged patterns over {} sessions; {} recur in every session",
        profile.name,
        multi.len(),
        multi.sessions(),
        multi.recurring().count()
    );

    println!("\ntop stable problems (perceptible wherever they occur):");
    for (i, p) in multi.stable_problems().iter().take(8).enumerate() {
        let sig: String = p.signature().as_str().chars().take(56).collect();
        println!(
            "  {i}. {} episodes ({} perceptible) across {} sessions, total {} — {sig}",
            p.total_episodes(),
            p.total_perceptible(),
            p.session_coverage(),
            p.total_lag(),
        );
    }

    // Timeline of the first session for orientation.
    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;
    let svg = render_timeline(&sessions[0], &TimelineOptions::default());
    let path = out_dir.join("gantt_timeline.svg");
    std::fs::write(&path, svg)?;
    println!("\nwrote session timeline to {}", path.display());
    Ok(())
}
