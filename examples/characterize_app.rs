//! Characterize one application the way the paper's §IV does: triggers,
//! location, concurrency, and causes, averaged over four sessions.
//!
//! Run with: `cargo run --release --example characterize_app [AppName]`

use lagalyzer::core::prelude::*;
use lagalyzer::model::OriginClassifier;
use lagalyzer::report::study::aggregate_sessions;
use lagalyzer::sim::{apps, runner};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "FindBugs".into());
    let Some(profile) = apps::by_name(&name) else {
        eprintln!("unknown application {name:?}; available:");
        for p in apps::standard_suite() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };

    let sessions: Vec<AnalysisSession> = (0..4)
        .map(|i| {
            AnalysisSession::new(
                runner::simulate_session(&profile, i, 42),
                AnalysisConfig::default(),
            )
        })
        .collect();
    let agg = aggregate_sessions(&profile.name, &sessions, &OriginClassifier::java_default());

    println!("=== {} ({} sessions) ===", agg.name, agg.sessions);
    println!(
        "episodes/session: {:.0} traced, {:.0} perceptible",
        agg.stats.traced_count, agg.stats.perceptible_count
    );

    let t = agg.trigger_perceptible.fractions();
    println!(
        "triggers (perceptible): {:.0}% input, {:.0}% output, {:.0}% async, {:.0}% unspecified",
        t[0] * 100.0,
        t[1] * 100.0,
        t[2] * 100.0,
        t[3] * 100.0
    );

    let loc = &agg.location_perceptible;
    println!(
        "location (perceptible): {:.0}% library / {:.0}% application; {:.0}% GC, {:.0}% native",
        loc.library * 100.0,
        loc.application * 100.0,
        loc.gc * 100.0,
        loc.native * 100.0
    );

    let c = &agg.causes_perceptible;
    println!(
        "GUI thread (perceptible): {:.0}% blocked, {:.0}% waiting, {:.0}% sleeping, {:.0}% runnable",
        c.blocked * 100.0, c.waiting * 100.0, c.sleeping * 100.0, c.runnable * 100.0
    );

    println!(
        "concurrency: {:.2} runnable threads (all), {:.2} (perceptible)",
        agg.concurrency.all, agg.concurrency.perceptible
    );

    let occ = agg.occurrence.fractions();
    println!(
        "patterns: {:.0}% always / {:.0}% sometimes / {:.0}% once / {:.0}% never perceptible",
        occ[0] * 100.0,
        occ[1] * 100.0,
        occ[2] * 100.0,
        occ[3] * 100.0
    );
}
