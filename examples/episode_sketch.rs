//! Render episode sketches: the paper's Fig 1 scenario, plus the slowest
//! episode of a freshly simulated GanttProject session.
//!
//! Run with: `cargo run --release --example episode_sketch`

use lagalyzer::core::prelude::*;
use lagalyzer::sim::{apps, runner, scenarios};
use lagalyzer::viz::ascii::ascii_sketch;
use lagalyzer::viz::sketch::{render_sketch, SketchOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;

    // The scripted Fig 1 episode (1705 ms paint with native call + GC).
    let fig1 = scenarios::figure1();
    let svg = render_sketch(&fig1.episode, &fig1.symbols, &SketchOptions::default());
    let path = out_dir.join("fig1.svg");
    std::fs::write(&path, svg)?;
    println!("{}", ascii_sketch(&fig1.episode, &fig1.symbols, 100));
    println!("wrote {}\n", path.display());

    // The slowest episode of a simulated GanttProject session.
    let trace = runner::simulate_session(&apps::gantt_project(), 0, 42);
    let session = AnalysisSession::new(trace, AnalysisConfig::default());
    let slowest = session
        .episodes()
        .iter()
        .max_by_key(|e| e.duration())
        .expect("session has episodes");
    println!(
        "slowest GanttProject episode: {} ({} intervals, depth {})",
        slowest.duration(),
        slowest.tree().len(),
        slowest.tree().max_depth()
    );
    let svg = render_sketch(
        slowest,
        session.trace().symbols(),
        &SketchOptions::default(),
    );
    let path = out_dir.join("gantt_slowest.svg");
    std::fs::write(&path, svg)?;
    println!("wrote {}", path.display());
    Ok(())
}
