//! Extend LagAlyzer with a custom analysis via the `Analysis` trait —
//! the paper's §II-A promises exactly this extension point.
//!
//! The example implements a "GC blame" analysis: for each pattern, how
//! often do its episodes contain a garbage collection? Because GC nodes
//! are excluded from pattern signatures, a pattern that *always* collects
//! points at the allocation behaviour of that code path (paper §II-D).
//!
//! Run with: `cargo run --release --example custom_analysis`

use lagalyzer::core::analysis::{run, Analysis};
use lagalyzer::core::prelude::*;
use lagalyzer::sim::{apps, runner};

/// Per-pattern GC prevalence.
struct GcBlame;

/// One finding: a pattern and how many of its episodes collected.
#[derive(Debug)]
struct GcFinding {
    signature: String,
    episodes: u64,
    with_gc: u64,
}

impl Analysis for GcBlame {
    type Output = Vec<GcFinding>;

    fn name(&self) -> &str {
        "gc-blame"
    }

    fn run(&self, session: &AnalysisSession) -> Vec<GcFinding> {
        let mut findings: Vec<GcFinding> = session
            .mine_patterns()
            .patterns()
            .iter()
            .filter(|p| p.gc_episode_count() > 0)
            .map(|p| GcFinding {
                signature: p.signature().as_str().to_owned(),
                episodes: p.count(),
                with_gc: p.gc_episode_count(),
            })
            .collect();
        findings.sort_by_key(|f| std::cmp::Reverse(f.with_gc));
        findings
    }
}

fn main() {
    // ArgoUML: the paper finds minor collections spread across many
    // patterns (high allocation rate).
    let trace = runner::simulate_session(&apps::argo_uml(), 0, 42);
    let session = AnalysisSession::new(trace, AnalysisConfig::default());
    let (name, findings) = run(&GcBlame, &session);
    println!("analysis {name:?}: {} patterns contain GC", findings.len());
    for f in findings.iter().take(8) {
        let pct = f.with_gc as f64 / f.episodes as f64 * 100.0;
        let sig: String = f.signature.chars().take(58).collect();
        println!("  {:>4}/{:<4} ({pct:>5.1}%)  {sig}", f.with_gc, f.episodes);
    }
}
