//! Quickstart: simulate a session, analyze it, browse the worst patterns.
//!
//! Run with: `cargo run --release --example quickstart`

use lagalyzer::core::browser::{PatternBrowser, SortBy};
use lagalyzer::core::prelude::*;
use lagalyzer::sim::{apps, runner};

fn main() {
    // 1. Obtain a trace. In a real deployment this comes from a latency
    //    profiler (see `lagalyzer::trace` for the format); here we
    //    synthesize a session of the JMol molecule viewer.
    let profile = apps::jmol();
    let trace = runner::simulate_session(&profile, 0, 42);
    println!(
        "{}: {} traced episodes, {} filtered (<3ms)",
        trace.meta().application,
        trace.episodes().len(),
        trace.short_episode_count()
    );

    // 2. Load it into an analysis session (100 ms perceptibility).
    let session = AnalysisSession::new(trace, AnalysisConfig::default());
    let stats = SessionStats::compute(&session);
    println!(
        "{} perceptible episodes ({:.0} per in-episode minute)",
        stats.perceptible_count, stats.long_per_minute
    );

    // 3. Mine patterns and show the five with the most perceptible lag.
    let patterns = session.mine_patterns();
    println!(
        "{} patterns cover {} episodes ({:.0}% singletons)",
        patterns.len(),
        patterns.covered_episodes(),
        patterns.singleton_fraction() * 100.0
    );
    let mut browser = PatternBrowser::new(&session, &patterns);
    browser.perceptible_only(true).sort_by(SortBy::TotalLag);
    for row in browser.rows().into_iter().take(5) {
        let s = row.pattern.stats();
        println!(
            "  #{} {} episodes, {} perceptible, total lag {}, {}",
            row.rank,
            s.count,
            row.pattern.perceptible_count(),
            s.total,
            row.occurrence,
        );
    }
}
