//! `lagalyzer` — the command-line front end.
//!
//! Subcommands:
//!
//! * `apps` — list the built-in application profiles (Table II);
//! * `simulate` — synthesize a session trace (or, with `--sessions N`, a
//!   multi-session corpus) to a file;
//! * `pack` — pack N `.lgz` traces into one `.lgzc` corpus;
//! * `compact` — re-pack a corpus, dropping salvage-skipped bytes;
//! * `analyze` — print overall statistics for a trace (a Table III row)
//!   or corpus-wide statistics for a `.lgzc` file;
//! * `patterns` — print the pattern browser table for a trace, or the
//!   merged cross-session table for a corpus;
//! * `sketch` — render an episode sketch (SVG or ASCII);
//! * `lint` — check a trace file for damage and print the salvage report;
//! * `check` — run the semantic rule checker and print its diagnostics;
//! * `outliers` — flag per-pattern duration outliers and attribute each
//!   one's excess to a cause (lock wait, GC, slow I/O, self time);
//! * `experiments` — regenerate every table and figure of the paper.
//!
//! Exit codes: `0` success on a clean trace, `1` usage or I/O error,
//! `2` the trace was damaged but salvageable (for `check`: semantic
//! errors were found), `3` the trace is unrecoverable. `check` exits `1`
//! when only warnings were found.

#![forbid(unsafe_code)]

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lagalyzer_check::{check_bytes, HazardConfig, HazardReport, RuleSet, Severity};
use lagalyzer_core::browser::{PatternBrowser, SortBy};
use lagalyzer_core::prelude::*;
use lagalyzer_model::{DurationNs, Episode, SymbolTable, TimeNs};
use lagalyzer_report::{figures, table3, Study};
use lagalyzer_sim::{apps, runner};
use lagalyzer_trace::corpus::{self, CorpusReader, PackOptions};
use lagalyzer_trace::{DamageVerdict, EpisodeFilter, IndexedTrace};
use lagalyzer_viz::ascii::ascii_sketch;
use lagalyzer_viz::sketch::{render_pattern_gallery, render_sketch, SketchOptions};
use lagalyzer_viz::timeline::{render_timeline, TimelineOptions};

/// Exit code for a trace that was damaged but salvageable.
const EXIT_SALVAGED: u8 = 2;
/// Exit code for a trace that could not be decoded at all.
const EXIT_UNRECOVERABLE: u8 = 3;

/// A command failure: the message printed to stderr plus the process
/// exit code it maps to (plain errors exit `1`).
struct Failure {
    msg: String,
    code: u8,
}

impl Failure {
    fn unrecoverable(msg: String) -> Failure {
        Failure {
            msg,
            code: EXIT_UNRECOVERABLE,
        }
    }
}

impl From<String> for Failure {
    fn from(msg: String) -> Failure {
        Failure { msg, code: 1 }
    }
}

impl From<&str> for Failure {
    fn from(msg: &str) -> Failure {
        Failure {
            msg: msg.to_owned(),
            code: 1,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(failure) => {
            eprintln!("error: {}", failure.msg);
            ExitCode::from(failure.code)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Failure> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(ExitCode::SUCCESS);
    };
    let rest = &args[1..];
    match command.as_str() {
        "apps" => cmd_apps(),
        "simulate" => cmd_simulate(rest),
        "pack" => cmd_pack(rest),
        "compact" => cmd_compact(rest),
        "analyze" => cmd_analyze(rest),
        "patterns" => cmd_patterns(rest),
        "sketch" => cmd_sketch(rest),
        "timeline" => cmd_timeline(rest),
        "stable" => cmd_stable(rest),
        "diff" => cmd_diff(rest),
        "lint" => cmd_lint(rest),
        "check" => cmd_check(rest),
        "hazards" => cmd_hazards(rest),
        "outliers" => cmd_outliers(rest),
        "experiments" => cmd_experiments(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}; try `lagalyzer help`").into()),
    }
}

fn print_usage() {
    println!(
        "lagalyzer — latency profile analysis and visualization\n\
         \n\
         usage: lagalyzer <command> [options]\n\
         \n\
         commands:\n\
           apps                               list built-in application profiles\n\
           simulate --app NAME [--session N] [--seed S] [--text] --out FILE\n\
                    [--sessions N] [--compress]\n\
                                              synthesize a session trace; --sessions N\n\
                                              writes an N-session .lgzc corpus instead\n\
           pack IN.lgz [IN.lgz...] --out OUT.lgzc [--compress] [--salvage] [--jobs N]\n\
                                              pack traces into one corpus with a\n\
                                              deduplicated corpus-wide symbol table\n\
           compact IN.lgzc --out OUT.lgzc [--compress] [--jobs N]\n\
                                              re-pack a corpus, dropping salvage-skipped\n\
                                              bytes and re-deduplicating symbols\n\
           analyze FILE [--threshold-ms MS] [--histogram] [--jobs N] [--salvage] [--check]\n\
                   [--session K] [--format text|json]\n\
                                              overall statistics of a trace; on a .lgzc\n\
                                              corpus: corpus-wide stats (or one session\n\
                                              via --session K)\n\
           patterns FILE [--perceptible-only] [--sort count|total|max|perceptible] [--jobs N] [--salvage]\n\
                    [--session K]\n\
                                              browse mined patterns; on a corpus: the\n\
                                              cross-session merged table\n\
           lint FILE                          check a trace (or corpus) for damage; print the salvage report and index health\n\
           check FILE [--format text|json] [--allow CODE] [--deny CODE] [--level CODE=SEV] [--fix-report FILE.json]\n\
                                              run the semantic rule checker (codes LA001..);\n\
                                              check --list-rules prints the full rule table\n\
           hazards FILE [--format text|json] [--jobs N] [--salvage] [--explain N]\n\
                   [--min-samples N] [--starvation-streak N]\n\
                                              concurrency-hazard analysis over the session\n\
                                              lock graph (LA020 lock-order inversion, LA021\n\
                                              held-across-IO, LA022 held-across-pause, LA023\n\
                                              starvation, LA024 self-wait); on a .lgzc\n\
                                              corpus also LA025 cross-session inversions\n\
           outliers FILE [--format text|json] [--mad-k K] [--min-excess-ms MS] [--min-count N]\n\
                    [--explain N] [--jobs N] [--salvage]\n\
                                              flag per-pattern duration outliers and attribute\n\
                                              each one's excess (codes OC-LOCK, OC-WAIT, OC-SLEEP,\n\
                                              OC-GC, OC-IO, OC-NATIVE, OC-SELF)\n\
           sketch FILE [--episode N | --pattern N [--gallery]] [--ascii] [--out FILE.svg]\n\
                                              render an episode sketch\n\
           timeline FILE [--out FILE.svg]     render the whole-session timeline\n\
           stable FILE [FILE...] [--jobs N]   stable slow patterns across several traces\n\
           diff BASELINE CANDIDATE            pattern-level regression report\n\
           experiments [--out-dir DIR] [--sessions N] [--seed S] [--jobs N]\n\
                                              regenerate the paper's tables and figures\n\
         \n\
         --jobs N shards trace decoding and analysis work across N worker\n\
         threads (0 or omitted: all cores; 1: serial). Results are\n\
         byte-identical for any N.\n\
         \n\
         --min-lag MS, --perceptible, --since-ms MS and --until-ms MS\n\
         filter episodes at ingest; on indexed binary traces the excluded\n\
         episodes are never even decoded (skip-decode filtering).\n\
         \n\
         --salvage decodes a damaged trace leniently, dropping corrupt\n\
         records and reporting every skip. Exit codes: 0 clean, 1 usage or\n\
         I/O error, 2 damaged but salvaged, 3 unrecoverable.\n\
         \n\
         analyze, patterns and outliers answer from a persisted rollup\n\
         section when the trace (or every corpus session) carries a valid\n\
         one — zero episode decoding, byte-identical output, a `rollup:\n\
         cache hit` note on stderr. --no-cache forces the cold decode\n\
         path; stale or missing rollups fall back to it automatically.\n\
         \n\
         check exits 0 when clean (notes allowed), 1 on warnings, 2 on\n\
         errors, 3 when the trace is unrecoverable. analyze --check runs\n\
         the checker first and refuses analysis when it reports errors."
    );
}

/// Every value-taking flag shared by the trace-loading commands, so
/// positional-argument scanning can skip their values.
const VALUE_FLAGS: &[&str] = &[
    "--threshold-ms",
    "--jobs",
    "--min-lag",
    "--since-ms",
    "--until-ms",
    "--session",
    "--format",
];

/// Fetches the value following a `--flag`.
fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn opt_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Every value given for a repeatable flag, in order
/// (`--allow LA007 --allow LA011` yields both codes).
fn opt_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            if let Some(value) = iter.next() {
                out.push(value.as_str());
            }
        }
    }
    out
}

/// Positional (non-flag) arguments, skipping the values of value-taking
/// flags so `stable a.lgz b.lgz --jobs 4` does not try to load "4".
fn positional_args<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a String> {
    let mut out = Vec::new();
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
        } else if arg.starts_with("--") {
            skip_value = value_flags.contains(&arg.as_str());
        } else {
            out.push(arg);
        }
    }
    out
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match opt_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects a number, got {v:?}")),
    }
}

/// Resolves `--jobs N` into a worker count. Absent or `0` means "use all
/// available cores"; `--jobs 1` runs the original serial path. Parallel
/// analysis output is byte-identical to serial, so this only affects speed.
fn parse_jobs(args: &[String]) -> Result<usize, String> {
    match opt_value(args, "--jobs") {
        None => Ok(lagalyzer_core::parallel::resolve_jobs(None)),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("--jobs expects a number, got {v:?}"))?;
            Ok(lagalyzer_core::parallel::resolve_jobs(Some(n)))
        }
    }
}

fn cmd_apps() -> Result<ExitCode, Failure> {
    println!(
        "{:<15} {:<10} {:>8}  description",
        "name", "version", "classes"
    );
    for p in apps::standard_suite() {
        println!(
            "{:<15} {:<10} {:>8}  {}",
            p.name, p.version, p.classes, p.description
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_simulate(args: &[String]) -> Result<ExitCode, Failure> {
    let app_name = opt_value(args, "--app").ok_or("simulate requires --app NAME")?;
    let profile = apps::by_name(app_name)
        .ok_or_else(|| format!("unknown application {app_name:?}; see `lagalyzer apps`"))?;
    let session = parse_u64(args, "--session", 0)? as u32;
    let seed = parse_u64(args, "--seed", 42)?;
    let out = opt_value(args, "--out").ok_or("simulate requires --out FILE")?;
    if let Some(v) = opt_value(args, "--sessions") {
        // Multi-session corpus generation: N consecutive sessions of the
        // application, packed straight into one .lgzc file.
        let n: u32 = v
            .parse()
            .map_err(|_| format!("--sessions expects a count, got {v:?}"))?;
        if n == 0 {
            return Err("--sessions must be at least 1".into());
        }
        if opt_flag(args, "--text") {
            return Err("--text cannot be combined with --sessions (corpora are binary)".into());
        }
        let traces = runner::simulate_corpus(&profile, n, seed);
        let mut opened = Vec::with_capacity(traces.len());
        for trace in &traces {
            let mut buf = Vec::new();
            let rollup = lagalyzer_core::rollup::build(trace);
            lagalyzer_trace::binary::write_with_rollup(trace, &mut buf, rollup)
                .map_err(|e| e.to_string())?;
            opened.push(IndexedTrace::open(buf).map_err(|e| e.to_string())?);
        }
        let packed = corpus::pack(
            &opened,
            PackOptions {
                compress: opt_flag(args, "--compress"),
            },
        )
        .map_err(|e| e.to_string())?;
        fs::write(out, &packed).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "wrote {} corpus of {n} sessions ({} traced episodes) to {out}",
            profile.name,
            opened.iter().map(IndexedTrace::len).sum::<usize>()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let trace = runner::simulate_session(&profile, session, seed);
    let file = fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut writer = std::io::BufWriter::new(file);
    if opt_flag(args, "--text") {
        lagalyzer_trace::text::write(&trace, &mut writer).map_err(|e| e.to_string())?;
    } else {
        // Binary traces ship with a rollup section so every later
        // `analyze`/`patterns`/`outliers` run takes the warm path.
        let rollup = lagalyzer_core::rollup::build(&trace);
        lagalyzer_trace::binary::write_with_rollup(&trace, &mut writer, rollup)
            .map_err(|e| e.to_string())?;
    }
    writer.flush().map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} traced episodes, {} filtered) to {out}",
        profile.name,
        trace.episodes().len(),
        trace.short_episode_count()
    );
    Ok(ExitCode::SUCCESS)
}

/// Value-taking flags of the `pack` subcommand.
const PACK_VALUE_FLAGS: &[&str] = &["--out", "--jobs"];

fn cmd_pack(args: &[String]) -> Result<ExitCode, Failure> {
    let out = opt_value(args, "--out").ok_or("pack requires --out FILE.lgzc")?;
    let inputs = positional_args(args, PACK_VALUE_FLAGS);
    if inputs.is_empty() {
        return Err("pack requires at least one input .lgz trace".into());
    }
    let salvage = opt_flag(args, "--salvage");
    let options = PackOptions {
        compress: opt_flag(args, "--compress"),
    };
    let mut opened = Vec::with_capacity(inputs.len());
    for path in &inputs {
        let bytes = fs::read(path.as_str()).map_err(|e| format!("cannot read {path}: {e}"))?;
        if !bytes.starts_with(b"LGLZTRC") {
            return Err(format!("{path} is not a binary .lgz trace").into());
        }
        let trace = if salvage {
            IndexedTrace::open_salvage(bytes)
                .map_err(|e| Failure::unrecoverable(format!("cannot salvage {path}: {e}")))?
        } else {
            IndexedTrace::open(bytes)
                .map_err(|e| format!("cannot load {path}: {e} (retry with --salvage)"))?
        };
        if let Some(report) = trace.salvage_report() {
            if !report.is_clean() {
                eprintln!(
                    "salvage: {path}: recovered {} episode(s), lost {}, {} skip(s)",
                    report.episodes_recovered,
                    report.episodes_lost,
                    report.skips.len()
                );
            }
        }
        opened.push(trace);
    }
    let per_file_symbols: usize = opened.iter().map(|t| t.symbols().len()).sum();
    let distinct_symbols = {
        let mut set = std::collections::HashSet::new();
        for trace in &opened {
            for (_, name) in trace.symbols().iter() {
                set.insert(name);
            }
        }
        set.len()
    };
    let episodes: usize = opened.iter().map(IndexedTrace::len).sum();
    let damaged = opened
        .iter()
        .filter(|t| t.salvage_report().is_some_and(|r| !r.is_clean()))
        .count();
    // Clean inputs without a persisted rollup get one built at pack time
    // (decode once now, answer warm forever); salvaged inputs stay cold
    // since the warm path refuses damaged sessions anyway.
    let jobs = parse_jobs(args)?;
    let built: Vec<Option<lagalyzer_trace::Rollup>> = opened
        .iter()
        .map(|t| {
            if t.rollup().is_some() || t.salvage_report().is_some() {
                return None;
            }
            t.par_decode(jobs)
                .ok()
                .map(|trace| lagalyzer_core::rollup::build(&trace))
        })
        .collect();
    let packed = corpus::pack_with_rollups(&opened, built, options).map_err(|e| e.to_string())?;
    fs::write(out, &packed).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "packed {} session(s), {episodes} episode(s) into {out} ({} bytes): \
         {per_file_symbols} per-file symbols deduplicated to {distinct_symbols}",
        opened.len(),
        packed.len(),
    );
    if damaged > 0 {
        Ok(ExitCode::from(EXIT_SALVAGED))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Value-taking flags of the `compact` subcommand.
const COMPACT_VALUE_FLAGS: &[&str] = &["--out", "--jobs"];

fn cmd_compact(args: &[String]) -> Result<ExitCode, Failure> {
    let positionals = positional_args(args, COMPACT_VALUE_FLAGS);
    let path = positionals
        .first()
        .ok_or("compact requires a corpus file")?;
    let out = opt_value(args, "--out").ok_or("compact requires --out FILE.lgzc")?;
    let jobs = parse_jobs(args)?;
    let options = PackOptions {
        compress: opt_flag(args, "--compress"),
    };
    let bytes = fs::read(path.as_str()).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !corpus::is_corpus(&bytes) {
        return Err(format!("{path} is not a .lgzc corpus (pack traces first)").into());
    }
    let before = bytes.len();
    let reader = CorpusReader::open(bytes)
        .map_err(|e| Failure::unrecoverable(format!("cannot load {path}: {e}")))?;
    // Sessions keep their valid rollups through compaction; sessions
    // without one get theirs built from the re-encoded payload.
    let build = |trace: &lagalyzer_model::SessionTrace| lagalyzer_core::rollup::build(trace);
    let compacted = corpus::compact_with_rollups(&reader, jobs, options, Some(&build))
        .map_err(|e| e.to_string())?;
    let after = compacted.len();
    fs::write(out, compacted).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "compacted {} session(s): {before} -> {after} bytes in {out}",
        reader.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// Builds the ingest-time episode filter from `--min-lag MS`,
/// `--perceptible` and the `--since-ms`/`--until-ms` session window. On
/// indexed binary traces the filter is evaluated against the extent index
/// alone, so excluded episodes are never decoded.
fn parse_filter(args: &[String]) -> Result<EpisodeFilter, String> {
    let mut filter = EpisodeFilter::new();
    if let Some(v) = opt_value(args, "--min-lag") {
        let ms: u64 = v
            .parse()
            .map_err(|_| format!("--min-lag expects milliseconds, got {v:?}"))?;
        filter = filter.min_duration(DurationNs::from_millis(ms));
    }
    if opt_flag(args, "--perceptible") {
        filter = filter.min_duration(DurationNs::PERCEPTIBLE_DEFAULT);
    }
    let since = opt_value(args, "--since-ms");
    let until = opt_value(args, "--until-ms");
    if since.is_some() || until.is_some() {
        let parse = |flag: &str, v: &str| -> Result<u64, String> {
            v.parse()
                .map_err(|_| format!("{flag} expects milliseconds, got {v:?}"))
        };
        let from = match since {
            Some(v) => TimeNs::from_millis(parse("--since-ms", v)?),
            None => TimeNs::from_nanos(0),
        };
        let to = match until {
            Some(v) => TimeNs::from_millis(parse("--until-ms", v)?),
            None => TimeNs::from_nanos(u64::MAX),
        };
        filter = filter.window(from, to);
    }
    Ok(filter)
}

/// Prints the salvage summary to stderr and builds the matching
/// provenance; clean reports stay silent.
fn salvage_provenance(path: &str, report: &lagalyzer_trace::SalvageReport) -> Provenance {
    if report.is_clean() {
        return Provenance::Clean;
    }
    eprintln!(
        "salvage: {path}: recovered {} episode(s), lost {}, {} skip(s)",
        report.episodes_recovered,
        report.episodes_lost,
        report.skips.len(),
    );
    Provenance::Salvaged {
        skips: report.skips.len() as u64,
        episodes_lost: report.episodes_lost,
    }
}

fn session_from(args: &[String], path: &str) -> Result<AnalysisSession, Failure> {
    let threshold = parse_u64(args, "--threshold-ms", 100)?;
    let config = AnalysisConfig {
        perceptible_threshold: DurationNs::from_millis(threshold),
    };
    let filter = parse_filter(args)?;
    let jobs = parse_jobs(args)?;
    let salvage = opt_flag(args, "--salvage");

    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if salvage => {
            return Err(Failure::unrecoverable(format!(
                "cannot salvage {path}: {e}"
            )))
        }
        Err(e) => return Err(format!("cannot load {path}: {e}").into()),
    };

    if corpus::is_corpus(&bytes) {
        // Corpus file: --session K selects one member session; the filter
        // rides the corpus extent index exactly as it does for a single
        // indexed trace.
        let reader = CorpusReader::open(bytes)
            .map_err(|e| Failure::unrecoverable(format!("cannot load {path}: {e}")))?;
        let k = match opt_value(args, "--session") {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("--session expects a session index, got {v:?}"))?,
            None => {
                return Err(format!(
                    "{path} is a corpus of {} sessions; select one with --session K",
                    reader.len()
                )
                .into())
            }
        };
        if k >= reader.len() {
            return Err(format!("{path} has {} sessions, no index {k}", reader.len()).into());
        }
        let view = reader.session(k);
        let excluded = view.excluded_by(&filter) as u64;
        let provenance = if view.is_damaged() {
            eprintln!(
                "salvage: {path} session {k}: {} skip(s), {} episode(s) lost at pack time",
                view.skips(),
                view.episodes_lost()
            );
            Provenance::Salvaged {
                skips: view.skips(),
                episodes_lost: view.episodes_lost(),
            }
        } else {
            Provenance::Clean
        };
        let trace = view
            .decode_filtered(jobs, &filter)
            .map_err(|e| format!("cannot load {path}: {e}"))?;
        return Ok(AnalysisSession::with_exclusions(
            trace, config, provenance, excluded,
        ));
    }

    if bytes.starts_with(b"LGLZTRC") {
        // Binary trace: open through the episode extent index. The filter
        // prunes episodes against index entries before any record is
        // decoded, and decoding fans the surviving extents over --jobs
        // worker threads.
        let indexed = if salvage {
            IndexedTrace::open_salvage(bytes)
                .map_err(|e| Failure::unrecoverable(format!("cannot salvage {path}: {e}")))?
        } else {
            IndexedTrace::open(bytes).map_err(|e| format!("cannot load {path}: {e}"))?
        };
        let admitted = indexed
            .extents()
            .iter()
            .filter(|e| filter.admits_extent(e))
            .count();
        let excluded = (indexed.len() - admitted) as u64;
        let provenance = match indexed.salvage_report() {
            Some(report) => salvage_provenance(path, report),
            None => Provenance::Clean,
        };
        let trace = indexed
            .par_decode_filtered(jobs, &filter)
            .map_err(|e| format!("cannot load {path}: {e}"))?;
        return Ok(AnalysisSession::with_exclusions(
            trace, config, provenance, excluded,
        ));
    }

    // Text trace (or unrecognized bytes): serial decode, then drop the
    // episodes the filter rejects.
    let (trace, provenance) = if salvage {
        let salvaged = lagalyzer_trace::read_bytes_salvage(&bytes)
            .map_err(|e| Failure::unrecoverable(format!("cannot salvage {path}: {e}")))?;
        let provenance = salvage_provenance(path, &salvaged.report);
        (salvaged.trace, provenance)
    } else {
        let trace =
            lagalyzer_trace::read_bytes(&bytes).map_err(|e| format!("cannot load {path}: {e}"))?;
        (trace, Provenance::Clean)
    };
    let before = trace.episodes().len();
    let trace = filter.retain(trace);
    let excluded = (before - trace.episodes().len()) as u64;
    Ok(AnalysisSession::with_exclusions(
        trace, config, provenance, excluded,
    ))
}

/// The exit code for a command that analyzed `session` successfully:
/// clean traces exit `0`; salvaged traces exit [`EXIT_SALVAGED`] so
/// scripts can tell the results may rest on an incomplete trace.
fn exit_for(session: &AnalysisSession) -> ExitCode {
    if session.is_salvaged() {
        ExitCode::from(EXIT_SALVAGED)
    } else {
        ExitCode::SUCCESS
    }
}

/// `true` when `path` starts with the `.lgzc` corpus signature.
fn sniff_corpus(path: &str) -> bool {
    use std::io::Read as _;
    let mut magic = [0u8; 8];
    fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .is_ok_and(|()| corpus::is_corpus(&magic))
}

/// Minimal JSON string escaping for the corpus `--format json` output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, Failure> {
    let path = args.first().ok_or("analyze requires a trace file")?;
    let jobs = parse_jobs(args)?;
    if sniff_corpus(path) && opt_value(args, "--session").is_none() {
        return cmd_analyze_corpus(args, path, jobs);
    }
    if let Some(format) = opt_value(args, "--format") {
        if format != "text" {
            return Err(
                format!("--format {format} is only supported for corpus-wide analyze").into(),
            );
        }
    }
    if let Some(code) = try_warm_analyze(args, path, jobs)? {
        return Ok(code);
    }
    // --check gates analysis on a semantically sound trace: errors refuse
    // analysis outright (exit 2); warnings and notes are recorded on the
    // session so the report carries them.
    let checked = if opt_flag(args, "--check") {
        let bytes = fs::read(path.as_str()).map_err(|e| format!("cannot read {path}: {e}"))?;
        let report = check_bytes(&bytes, &mut RuleSet::standard())
            .map_err(|e| Failure::unrecoverable(format!("cannot check {path}: {e}")))?;
        if report.errors() > 0 {
            eprint!("{}", report.render_text(path));
            return Err(Failure {
                msg: format!(
                    "check found {} error(s) in {path}; refusing analysis",
                    report.errors()
                ),
                code: EXIT_SALVAGED,
            });
        }
        if !report.is_clean() {
            eprintln!(
                "check: {path}: {} warning(s), {} note(s); analyzing anyway",
                report.warnings(),
                report.notes()
            );
        }
        Some(CheckOutcome {
            errors: report.errors() as u64,
            warnings: report.warnings() as u64,
            notes: report.notes() as u64,
        })
    } else {
        None
    };
    let mut session = session_from(args, path)?;
    if let Some(outcome) = checked {
        session.record_check(outcome);
    }
    let stats = SessionStats::compute_with_jobs(&session, jobs);
    let meta = session.trace().meta();
    println!("application       {}", meta.application);
    println!("session           {}", meta.session);
    println!("E2E               {:.0} s", stats.end_to_end.as_secs_f64());
    println!(
        "in-episode        {:.0} %",
        stats.in_episode_fraction * 100.0
    );
    println!("episodes < 3ms    {}", stats.short_count);
    println!("episodes >= 3ms   {}", stats.traced_count);
    println!("episodes >= 100ms {}", stats.perceptible_count);
    if session.excluded_episodes() > 0 {
        println!("filtered out      {}", session.excluded_episodes());
    }
    println!("long per minute   {:.0}", stats.long_per_minute);
    println!("distinct patterns {}", stats.distinct_patterns);
    println!("episodes in pats  {}", stats.episodes_in_patterns);
    println!(
        "singleton pats    {:.0} %",
        stats.singleton_fraction * 100.0
    );
    println!("mean tree size    {:.1}", stats.mean_tree_size);
    println!("mean tree depth   {:.1}", stats.mean_tree_depth);
    {
        // Per-pattern outlier scan with the default config; the dedicated
        // `outliers` subcommand exposes the knobs and the full report.
        let patterns = session.mine_patterns_with_jobs(jobs);
        let outliers =
            OutlierReport::analyze_with_jobs(&session, &patterns, &OutlierConfig::default(), jobs);
        println!("outliers          {}", outliers.summary());
    }
    if let Some(check) = session.check_outcome() {
        println!(
            "semantic check    {} error(s), {} warning(s), {} note(s)",
            check.errors, check.warnings, check.notes
        );
    }
    if opt_flag(args, "--histogram") {
        let histogram = lagalyzer_core::DurationHistogram::of(&session);
        println!("\nepisode duration distribution:");
        print!("{}", histogram.to_ascii(50));
        println!(
            "fraction handled under 128ms: {:.1} %",
            histogram.fraction_under(DurationNs::from_millis(128)) * 100.0
        );
    }
    Ok(exit_for(&session))
}

/// `analyze` over a persisted rollup: Table III statistics, the outlier
/// summary and the optional histogram, all reconstructed from summaries
/// without decoding any episode payload. `Ok(None)` falls back to the
/// cold decode path; everything is computed before the first byte is
/// printed so the fallback never emits a partial report.
fn try_warm_analyze(args: &[String], path: &str, jobs: usize) -> Result<Option<ExitCode>, Failure> {
    let Some(indexed) = warm_trace(args, path) else {
        return Ok(None);
    };
    let (config, filter) = warm_config(args)?;
    let Some(warm) = WarmSession::of_indexed(&indexed, config, &filter) else {
        return Ok(None);
    };
    let patterns = warm.mine_patterns_with_jobs(jobs);
    let stats = warm.session_stats_from(&patterns, jobs);
    let decode = |positions: &[usize]| indexed.par_decode_subset(jobs, positions).ok();
    let Some(outliers) = warm.outliers(&patterns, &OutlierConfig::default(), &decode) else {
        return Ok(None);
    };
    let histogram = opt_flag(args, "--histogram").then(|| warm.histogram());
    eprintln!(
        "rollup: cache hit ({} episode summaries, zero decode)",
        warm.rollup().summaries.len()
    );
    let meta = warm.meta();
    println!("application       {}", meta.application);
    println!("session           {}", meta.session);
    println!("E2E               {:.0} s", stats.end_to_end.as_secs_f64());
    println!(
        "in-episode        {:.0} %",
        stats.in_episode_fraction * 100.0
    );
    println!("episodes < 3ms    {}", stats.short_count);
    println!("episodes >= 3ms   {}", stats.traced_count);
    println!("episodes >= 100ms {}", stats.perceptible_count);
    if warm.excluded() > 0 {
        println!("filtered out      {}", warm.excluded());
    }
    println!("long per minute   {:.0}", stats.long_per_minute);
    println!("distinct patterns {}", stats.distinct_patterns);
    println!("episodes in pats  {}", stats.episodes_in_patterns);
    println!(
        "singleton pats    {:.0} %",
        stats.singleton_fraction * 100.0
    );
    println!("mean tree size    {:.1}", stats.mean_tree_size);
    println!("mean tree depth   {:.1}", stats.mean_tree_depth);
    println!("outliers          {}", outliers.summary());
    if let Some(histogram) = histogram {
        println!("\nepisode duration distribution:");
        print!("{}", histogram.to_ascii(50));
        println!(
            "fraction handled under 128ms: {:.1} %",
            histogram.fraction_under(DurationNs::from_millis(128)) * 100.0
        );
    }
    Ok(Some(ExitCode::SUCCESS))
}

/// Opens a corpus for the corpus-wide commands.
fn open_corpus(path: &str) -> Result<CorpusReader, Failure> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    CorpusReader::open(bytes)
        .map_err(|e| Failure::unrecoverable(format!("cannot load {path}: {e}")))
}

/// Decodes every corpus session through the extent index (the cold
/// path), honouring the ingest filter.
fn decode_corpus_sessions(
    reader: &CorpusReader,
    filter: &EpisodeFilter,
    jobs: usize,
) -> Result<Vec<lagalyzer_model::SessionTrace>, lagalyzer_trace::TraceError> {
    if filter.is_unrestricted() {
        reader.par_decode(jobs)
    } else {
        reader
            .sessions()
            .map(|v| v.decode_filtered(jobs, filter))
            .collect()
    }
}

/// Opens `path` as a clean v2 binary trace carrying a validated rollup —
/// the precondition for the zero-decode warm analysis path. `None`
/// routes the caller down the cold decode path (text traces, corpora,
/// `--salvage`, `--check`, `--no-cache`, missing or stale rollups).
fn warm_trace(args: &[String], path: &str) -> Option<IndexedTrace> {
    if opt_flag(args, "--no-cache") || opt_flag(args, "--salvage") || opt_flag(args, "--check") {
        return None;
    }
    let bytes = fs::read(path).ok()?;
    if !bytes.starts_with(b"LGLZTRC") {
        return None;
    }
    let trace = IndexedTrace::open(bytes).ok()?;
    trace.rollup()?;
    Some(trace)
}

/// The analysis config and ingest filter shared by the warm entry points.
fn warm_config(args: &[String]) -> Result<(AnalysisConfig, EpisodeFilter), Failure> {
    let threshold = parse_u64(args, "--threshold-ms", 100)?;
    Ok((
        AnalysisConfig {
            perceptible_threshold: DurationNs::from_millis(threshold),
        },
        parse_filter(args)?,
    ))
}

/// Warm-corpus precondition: every session clean with a validated rollup
/// (and the cache not disabled). Returns the per-session warm sessions
/// in corpus order, or `None` to decode cold.
fn warm_corpus_sessions<'a>(
    args: &[String],
    reader: &'a CorpusReader,
    config: AnalysisConfig,
    filter: &EpisodeFilter,
) -> Option<Vec<WarmSession<'a>>> {
    if opt_flag(args, "--no-cache") {
        return None;
    }
    reader
        .sessions()
        .map(|view| WarmSession::of_corpus_session(&view, config, filter))
        .collect()
}

/// Corpus-wide `analyze`: every session decoded through the corpus
/// extent index, patterns mined across all of them through the mergeable
/// multi-session path (byte-identical to mining the N files separately).
fn cmd_analyze_corpus(args: &[String], path: &str, jobs: usize) -> Result<ExitCode, Failure> {
    let format = opt_value(args, "--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("unknown format {format:?}; expected text or json").into());
    }
    if opt_flag(args, "--check") {
        return Err("--check is not supported on corpus files".into());
    }
    let threshold = DurationNs::from_millis(parse_u64(args, "--threshold-ms", 100)?);
    let config = AnalysisConfig {
        perceptible_threshold: threshold,
    };
    let filter = parse_filter(args)?;

    struct Row {
        application: String,
        session: String,
        episodes: usize,
        perceptible: usize,
        salvaged: bool,
        damaged: bool,
        compressed: bool,
        health: String,
    }
    let reader = open_corpus(path)?;
    let (rows, multi, excluded): (Vec<Row>, lagalyzer_core::MultiPatternSet, u64) =
        match warm_corpus_sessions(args, &reader, config, &filter) {
            Some(warms) => {
                let rows = warms
                    .iter()
                    .zip(reader.sessions())
                    .map(|(warm, view)| Row {
                        application: warm.meta().application.clone(),
                        session: warm.meta().session.to_string(),
                        episodes: warm.len(),
                        perceptible: (0..warm.len())
                            .filter(|&i| warm.duration(i) >= threshold)
                            .count(),
                        salvaged: view.is_salvaged(),
                        damaged: view.is_damaged(),
                        compressed: view.is_compressed(),
                        health: view.health().to_string(),
                    })
                    .collect();
                let excluded = warms.iter().map(WarmSession::excluded).sum();
                // Per-session warm mining is byte-identical to the cold
                // per-session miner, so the merged set is too.
                let sets: Vec<PatternSet> = warms
                    .iter()
                    .map(|w| w.mine_patterns_with_jobs(jobs))
                    .collect();
                eprintln!("rollup: cache hit ({} sessions, zero decode)", reader.len());
                (
                    rows,
                    lagalyzer_core::MultiPatternSet::merge(&sets),
                    excluded,
                )
            }
            None => {
                let excluded: u64 = reader
                    .sessions()
                    .map(|v| v.excluded_by(&filter) as u64)
                    .sum();
                let traces = decode_corpus_sessions(&reader, &filter, jobs)
                    .map_err(|e| format!("cannot load {path}: {e}"))?;
                let rows = traces
                    .iter()
                    .zip(reader.sessions())
                    .map(|(trace, view)| Row {
                        application: trace.meta().application.clone(),
                        session: trace.meta().session.to_string(),
                        episodes: trace.episodes().len(),
                        perceptible: trace.perceptible_episodes(threshold).count(),
                        salvaged: view.is_salvaged(),
                        damaged: view.is_damaged(),
                        compressed: view.is_compressed(),
                        health: view.health().to_string(),
                    })
                    .collect();
                let multi =
                    lagalyzer_core::MultiPatternSet::mine_traces_with_jobs(traces, config, jobs);
                (rows, multi, excluded)
            }
        };
    let episodes: usize = rows.iter().map(|r| r.episodes).sum();
    let perceptible: usize = rows.iter().map(|r| r.perceptible).sum();
    let damaged = rows.iter().filter(|r| r.damaged).count();

    if format == "json" {
        let sessions_json: Vec<String> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                format!(
                    "{{\"index\":{i},\"application\":{},\"session\":{},\"episodes\":{},\
                     \"perceptible\":{},\"salvaged\":{},\"damaged\":{},\"compressed\":{},\
                     \"health\":{}}}",
                    json_str(&r.application),
                    json_str(&r.session),
                    r.episodes,
                    r.perceptible,
                    r.salvaged,
                    r.damaged,
                    r.compressed,
                    json_str(&r.health),
                )
            })
            .collect();
        println!(
            "{{\"corpus\":{{\"sessions\":{},\"episodes\":{episodes},\"perceptible\":{perceptible},\
             \"filtered_out\":{excluded},\"global_symbols\":{},\"damaged_sessions\":{damaged}}},\
             \"sessions\":[{}],\
             \"patterns\":{{\"merged\":{},\"recurring\":{},\"stable_problems\":{}}}}}",
            reader.len(),
            reader.global_symbols().len(),
            sessions_json.join(","),
            multi.len(),
            multi.recurring().count(),
            multi.stable_problems().len(),
        );
    } else {
        println!("corpus            {path}");
        println!("sessions          {}", reader.len());
        println!("episodes          {episodes}");
        println!("episodes >= 100ms {perceptible}");
        if excluded > 0 {
            println!("filtered out      {excluded}");
        }
        println!("global symbols    {}", reader.global_symbols().len());
        println!("damaged sessions  {damaged}");
        for (i, r) in rows.iter().enumerate() {
            let mut notes = Vec::new();
            if r.damaged {
                notes.push("damaged");
            } else if r.salvaged {
                notes.push("salvaged");
            }
            if r.compressed {
                notes.push("compressed");
            }
            println!(
                "  session {i:<3} {} {}  {:>6} episodes {:>5} perceptible  [{}]{}",
                r.application,
                r.session,
                r.episodes,
                r.perceptible,
                r.health,
                if notes.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", notes.join(", "))
                },
            );
        }
        println!(
            "merged patterns   {} ({} recurring in every session)",
            multi.len(),
            multi.recurring().count()
        );
        println!("stable problems   {}", multi.stable_problems().len());
    }
    Ok(ExitCode::from(reader.damage_verdict().exit_code()))
}

/// Corpus-wide `patterns`: the merged cross-session table.
fn cmd_patterns_corpus(args: &[String], path: &str, jobs: usize) -> Result<ExitCode, Failure> {
    let threshold = DurationNs::from_millis(parse_u64(args, "--threshold-ms", 100)?);
    let config = AnalysisConfig {
        perceptible_threshold: threshold,
    };
    let filter = parse_filter(args)?;
    let reader = open_corpus(path)?;
    let multi = match warm_corpus_sessions(args, &reader, config, &filter) {
        Some(warms) => {
            let sets: Vec<PatternSet> = warms
                .iter()
                .map(|w| w.mine_patterns_with_jobs(jobs))
                .collect();
            eprintln!("rollup: cache hit ({} sessions, zero decode)", reader.len());
            lagalyzer_core::MultiPatternSet::merge(&sets)
        }
        None => {
            let traces = decode_corpus_sessions(&reader, &filter, jobs)
                .map_err(|e| format!("cannot load {path}: {e}"))?;
            lagalyzer_core::MultiPatternSet::mine_traces_with_jobs(traces, config, jobs)
        }
    };
    println!(
        "{} sessions, {} merged patterns ({} recurring in every session)",
        multi.sessions(),
        multi.len(),
        multi.recurring().count()
    );
    let perceptible_only = opt_flag(args, "--perceptible-only");
    println!(
        "{:>5} {:>5} {:>8} {:>12}  signature",
        "eps", "perc", "sessions", "total lag"
    );
    for p in multi.patterns() {
        if perceptible_only && p.total_perceptible() == 0 {
            continue;
        }
        let sig: String = p.signature().as_str().chars().take(60).collect();
        println!(
            "{:>5} {:>5} {:>8} {:>12}  {sig}",
            p.total_episodes(),
            p.total_perceptible(),
            p.session_coverage(),
            p.total_lag().to_string(),
        );
    }
    Ok(ExitCode::from(reader.damage_verdict().exit_code()))
}

fn cmd_patterns(args: &[String]) -> Result<ExitCode, Failure> {
    let path = args.first().ok_or("patterns requires a trace file")?;
    let jobs = parse_jobs(args)?;
    if sniff_corpus(path) && opt_value(args, "--session").is_none() {
        return cmd_patterns_corpus(args, path, jobs);
    }
    if let Some(code) = try_warm_patterns(args, path, jobs)? {
        return Ok(code);
    }
    let session = session_from(args, path)?;
    let patterns = session.mine_patterns_with_jobs(jobs);
    let mut browser = PatternBrowser::new(&session, &patterns);
    if opt_flag(args, "--perceptible-only") {
        browser.perceptible_only(true);
    }
    if let Some(sort) = opt_value(args, "--sort") {
        browser.sort_by(match sort {
            "count" => SortBy::Count,
            "total" => SortBy::TotalLag,
            "max" => SortBy::MaxLag,
            "perceptible" => SortBy::PerceptibleCount,
            other => return Err(format!("unknown sort order {other:?}").into()),
        });
    }
    print!("{}", browser.to_table());
    Ok(exit_for(&session))
}

/// `patterns` over a persisted rollup: the browser table mined from
/// summaries alone. `Ok(None)` falls back to the cold decode path.
fn try_warm_patterns(
    args: &[String],
    path: &str,
    jobs: usize,
) -> Result<Option<ExitCode>, Failure> {
    let Some(indexed) = warm_trace(args, path) else {
        return Ok(None);
    };
    let (config, filter) = warm_config(args)?;
    let Some(warm) = WarmSession::of_indexed(&indexed, config, &filter) else {
        return Ok(None);
    };
    let patterns = warm.mine_patterns_with_jobs(jobs);
    let mut browser = PatternBrowser::of_patterns(&patterns);
    if opt_flag(args, "--perceptible-only") {
        browser.perceptible_only(true);
    }
    if let Some(sort) = opt_value(args, "--sort") {
        browser.sort_by(match sort {
            "count" => SortBy::Count,
            "total" => SortBy::TotalLag,
            "max" => SortBy::MaxLag,
            "perceptible" => SortBy::PerceptibleCount,
            other => return Err(format!("unknown sort order {other:?}").into()),
        });
    }
    eprintln!(
        "rollup: cache hit ({} episode summaries, zero decode)",
        warm.rollup().summaries.len()
    );
    print!("{}", browser.to_table());
    Ok(Some(ExitCode::SUCCESS))
}

fn cmd_lint(args: &[String]) -> Result<ExitCode, Failure> {
    let path = args.first().ok_or("lint requires a trace file")?;
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if corpus::is_corpus(&bytes) {
        // Corpus: one index-health line per member session, then the
        // aggregate verdict. Exit codes follow the same 0/2/3 contract
        // as single traces (1 is reserved for usage/I-O errors).
        return match CorpusReader::open(bytes) {
            Err(e) => {
                println!("unrecoverable: {e}");
                Ok(ExitCode::from(DamageVerdict::Unrecoverable.exit_code()))
            }
            Ok(reader) => {
                println!(
                    "corpus              {} session(s), {} episode(s), {} symbol(s)",
                    reader.len(),
                    reader.total_episodes(),
                    reader.global_symbols().len()
                );
                for view in reader.sessions() {
                    let status = if view.is_damaged() {
                        format!(
                            "damaged ({} skip(s), {} episode(s) lost)",
                            view.skips(),
                            view.episodes_lost()
                        )
                    } else if view.is_salvaged() {
                        "salvaged clean".to_string()
                    } else {
                        "clean".to_string()
                    };
                    println!(
                        "session {:<11} index {}; rollup {}; {status}",
                        view.index(),
                        view.health(),
                        view.rollup_health(),
                    );
                }
                let verdict = reader.damage_verdict();
                println!(
                    "aggregate           {}",
                    if matches!(verdict, DamageVerdict::Clean) {
                        "clean"
                    } else {
                        "damaged corpus"
                    }
                );
                Ok(ExitCode::from(verdict.exit_code()))
            }
        };
    }
    // The exit code comes from the shared damage classification so `lint`
    // and `check` can never disagree on what counts as salvaged.
    match lagalyzer_trace::read_bytes_salvage(&bytes) {
        Err(e) => {
            println!("unrecoverable: {e}");
            Ok(ExitCode::from(DamageVerdict::Unrecoverable.exit_code()))
        }
        Ok(salvaged) => {
            print!("{}", salvaged.report.render());
            // Index health is diagnostic only; it never changes the exit
            // code (a footerless or footer-damaged trace still decodes).
            match lagalyzer_trace::index::probe_health(&bytes) {
                Some(health) => println!("index               {health}"),
                None => println!("index               not applicable (text trace)"),
            }
            // Rollup health is diagnostic too: a stale cache only costs
            // the warm path, never correctness.
            match lagalyzer_trace::probe_rollup(&bytes) {
                Some(health) => println!("rollup              {health}"),
                None => println!("rollup              not applicable (no v2 section region)"),
            }
            Ok(ExitCode::from(
                DamageVerdict::of_report(&salvaged.report).exit_code(),
            ))
        }
    }
}

/// Value-taking flags of the `check` subcommand.
const CHECK_VALUE_FLAGS: &[&str] = &["--format", "--allow", "--deny", "--level", "--fix-report"];

/// Builds the rule set for `check`, applying every `--allow CODE`,
/// `--deny CODE` and `--level CODE=SEVERITY` override in turn. Rules may
/// be named by code (`LA007`) or by name (`sub-floor-episode`).
fn check_ruleset(args: &[String]) -> Result<RuleSet, Failure> {
    let mut rules = RuleSet::standard();
    for code in opt_values(args, "--allow") {
        rules.allow(code).map_err(|e| e.to_string())?;
    }
    for code in opt_values(args, "--deny") {
        rules.deny(code).map_err(|e| e.to_string())?;
    }
    for spec in opt_values(args, "--level") {
        let (code, sev) = spec
            .split_once('=')
            .ok_or_else(|| format!("--level expects CODE=SEVERITY, got {spec:?}"))?;
        let severity = Severity::parse(sev)
            .ok_or_else(|| format!("unknown severity {sev:?}; expected note, warning or error"))?;
        rules.level(code, severity).map_err(|e| e.to_string())?;
    }
    Ok(rules)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, Failure> {
    if opt_flag(args, "--list-rules") {
        println!("{:<7} {:<25} {:<8} summary", "code", "name", "level");
        for (code, name, severity, summary) in RuleSet::standard().descriptions() {
            println!("{code:<7} {name:<25} {:<8} {summary}", severity.name());
        }
        return Ok(ExitCode::SUCCESS);
    }
    let positionals = positional_args(args, CHECK_VALUE_FLAGS);
    let path = positionals.first().ok_or("check requires a trace file")?;
    let format = opt_value(args, "--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("unknown format {format:?}; expected text or json").into());
    }
    let mut rules = check_ruleset(args)?;
    let bytes = fs::read(path.as_str()).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = check_bytes(&bytes, &mut rules)
        .map_err(|e| Failure::unrecoverable(format!("cannot check {path}: {e}")))?;
    if format == "json" {
        println!("{}", report.render_json(path));
    } else {
        print!("{}", report.render_text(path));
    }
    if let Some(out) = opt_value(args, "--fix-report") {
        let mut json = report.render_json(path);
        json.push('\n');
        fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    Ok(ExitCode::from(report.exit_code()))
}

/// Value-taking flags of the `hazards` subcommand.
const HAZARD_VALUE_FLAGS: &[&str] = &[
    "--format",
    "--jobs",
    "--explain",
    "--min-samples",
    "--starvation-streak",
];

/// Builds the hazard detection config from `--min-samples` and
/// `--starvation-streak`.
fn parse_hazard_config(args: &[String]) -> Result<HazardConfig, Failure> {
    let mut config = HazardConfig::default();
    if let Some(v) = opt_value(args, "--min-samples") {
        let n: u64 = v
            .parse()
            .map_err(|_| format!("--min-samples expects a number, got {v:?}"))?;
        config.min_wait_samples = n.max(1);
        config.min_edge_samples = n.max(1);
    }
    if let Some(v) = opt_value(args, "--starvation-streak") {
        let n: u64 = v
            .parse()
            .map_err(|_| format!("--starvation-streak expects a number, got {v:?}"))?;
        config.starvation_streak = n.max(2);
    }
    Ok(config)
}

fn cmd_hazards(args: &[String]) -> Result<ExitCode, Failure> {
    let positionals = positional_args(args, HAZARD_VALUE_FLAGS);
    let path = positionals.first().ok_or("hazards requires a trace file")?;
    let format = opt_value(args, "--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("unknown format {format:?}; expected text or json").into());
    }
    let jobs = parse_jobs(args)?;
    let config = parse_hazard_config(args)?;
    let salvage = opt_flag(args, "--salvage");
    let bytes = fs::read(path.as_str()).map_err(|e| format!("cannot read {path}: {e}"))?;

    if corpus::is_corpus(&bytes) {
        // Corpus: per-session lock graphs re-interned through the
        // corpus-wide symbol table, then the cross-session merge (LA025).
        let reader = CorpusReader::open(bytes)
            .map_err(|e| Failure::unrecoverable(format!("cannot load {path}: {e}")))?;
        let mut traces = Vec::with_capacity(reader.len());
        let mut damaged = false;
        for k in 0..reader.len() {
            let view = reader.session(k);
            damaged |= view.is_damaged();
            traces.push(
                view.decode(jobs)
                    .map_err(|e| format!("cannot load {path} session {k}: {e}"))?,
            );
        }
        if opt_value(args, "--explain").is_some() {
            return Err("--explain works on single traces, not corpora".into());
        }
        let mut symbols = reader.global_symbols().clone();
        let report = HazardReport::analyze_corpus(&traces, &mut symbols, jobs, &config);
        if format == "json" {
            println!("{}", report.render_json(path));
        } else {
            print!("{}", report.render_text(path));
        }
        return Ok(if damaged {
            ExitCode::from(EXIT_SALVAGED)
        } else {
            ExitCode::SUCCESS
        });
    }

    // Single trace: binary traces go through the extent index (byte-span
    // provenance, subset re-decode for --explain); text traces decode
    // serially without spans.
    let indexed: Option<IndexedTrace> = if bytes.starts_with(b"LGLZTRC") {
        Some(if salvage {
            IndexedTrace::open_salvage(bytes.clone())
                .map_err(|e| Failure::unrecoverable(format!("cannot salvage {path}: {e}")))?
        } else {
            IndexedTrace::open(bytes.clone()).map_err(|e| format!("cannot load {path}: {e}"))?
        })
    } else {
        None
    };
    let (trace, salvaged) = match &indexed {
        Some(ix) => (
            ix.par_decode(jobs)
                .map_err(|e| format!("cannot load {path}: {e}"))?,
            ix.salvage_report().is_some(),
        ),
        None if salvage => {
            let out = lagalyzer_trace::read_bytes_salvage(&bytes)
                .map_err(|e| Failure::unrecoverable(format!("cannot salvage {path}: {e}")))?;
            let salvaged = !out.report.skips.is_empty() || out.report.episodes_lost > 0;
            (out.trace, salvaged)
        }
        None => (
            lagalyzer_trace::read_bytes(&bytes).map_err(|e| format!("cannot load {path}: {e}"))?,
            false,
        ),
    };
    let report = HazardReport::analyze(
        &trace,
        indexed.as_ref().map(IndexedTrace::extents),
        jobs,
        &config,
    );
    if format == "json" {
        println!("{}", report.render_json(path));
    } else {
        print!("{}", report.render_text(path));
    }
    if let Some(v) = opt_value(args, "--explain") {
        let index: usize = v
            .parse()
            .map_err(|_| format!("--explain expects a finding index, got {v:?}"))?;
        let finding = report.findings.get(index).ok_or_else(|| {
            format!(
                "report has {} finding(s), no index {index}",
                report.findings.len()
            )
        })?;
        explain_hazard(&trace, indexed.as_ref(), finding, jobs)?;
    }
    Ok(if salvaged {
        ExitCode::from(EXIT_SALVAGED)
    } else {
        ExitCode::SUCCESS
    })
}

/// Deep-dive for one hazard finding: the episode's contended waits and an
/// ASCII sketch. On an indexed binary trace the flagged episode is
/// re-decoded alone through [`IndexedTrace::par_decode_subset`] — the
/// skip-decode path the finding's byte span points at.
fn explain_hazard(
    trace: &lagalyzer_model::SessionTrace,
    indexed: Option<&IndexedTrace>,
    finding: &lagalyzer_check::Diagnostic,
    jobs: usize,
) -> Result<(), Failure> {
    let id = finding
        .episode_id
        .ok_or("this finding is graph-wide, not tied to one episode")?;
    let subset_decoded: Option<Episode> = indexed.and_then(|ix| {
        let pos = ix.extents().iter().position(|e| e.id == id)?;
        ix.par_decode_subset(jobs, &[pos]).ok()?.pop()
    });
    let episode = match &subset_decoded {
        Some(e) => e,
        None => trace
            .episodes()
            .iter()
            .find(|e| e.id() == id)
            .ok_or("finding points outside the decoded session")?,
    };
    let symbols = trace.symbols();
    println!(
        "\nepisode {} — {}: {}",
        id.as_raw(),
        finding.code,
        finding.message
    );
    let waits = lagalyzer_model::lockgraph::extract_waits(episode);
    if waits.is_empty() {
        println!("contended waits: none");
    } else {
        println!("contended waits:");
        for wait in &waits {
            println!(
                "  t{:<4} {:>4} sample(s)  {:<9} on {}",
                wait.thread.as_raw(),
                wait.samples,
                wait.kind.name(),
                symbols.render(wait.lock),
            );
        }
    }
    print!("{}", ascii_sketch(episode, symbols, 100));
    Ok(())
}

/// Value-taking flags of the `outliers` subcommand (on top of the shared
/// trace-loading ones).
const OUTLIER_VALUE_FLAGS: &[&str] = &[
    "--threshold-ms",
    "--jobs",
    "--min-lag",
    "--since-ms",
    "--until-ms",
    "--session",
    "--format",
    "--mad-k",
    "--min-excess-ms",
    "--min-count",
    "--explain",
];

/// Builds the outlier detection config from `--mad-k`, `--min-excess-ms`
/// and `--min-count`.
fn parse_outlier_config(args: &[String]) -> Result<OutlierConfig, Failure> {
    let mut config = OutlierConfig::default();
    if let Some(v) = opt_value(args, "--mad-k") {
        let k: f64 = v
            .parse()
            .map_err(|_| format!("--mad-k expects a number, got {v:?}"))?;
        if !k.is_finite() || k <= 0.0 {
            return Err(format!("--mad-k must be a positive number, got {v:?}").into());
        }
        config.mad_k = k;
    }
    if let Some(v) = opt_value(args, "--min-excess-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| format!("--min-excess-ms expects milliseconds, got {v:?}"))?;
        config.min_excess = DurationNs::from_millis(ms);
    }
    if let Some(v) = opt_value(args, "--min-count") {
        let n: usize = v
            .parse()
            .map_err(|_| format!("--min-count expects a number, got {v:?}"))?;
        config.min_count = n.max(2);
    }
    Ok(config)
}

fn cmd_outliers(args: &[String]) -> Result<ExitCode, Failure> {
    let positionals = positional_args(args, OUTLIER_VALUE_FLAGS);
    let path = positionals
        .first()
        .ok_or("outliers requires a trace file")?;
    let format = opt_value(args, "--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("unknown format {format:?}; expected text or json").into());
    }
    let jobs = parse_jobs(args)?;
    let config = parse_outlier_config(args)?;
    if let Some(code) = try_warm_outliers(args, path, jobs, &config, format)? {
        return Ok(code);
    }
    let session = session_from(args, path)?;
    let patterns = session.mine_patterns_with_jobs(jobs);
    let mut report = OutlierReport::analyze_with_jobs(&session, &patterns, &config, jobs);

    // On indexed binary traces, stamp each finding with the byte span of
    // its episode's records (same provenance `check` diagnostics carry),
    // and keep the index around so `--explain` can re-decode a flagged
    // episode without touching any other extent.
    let indexed: Option<IndexedTrace> = match fs::read(path.as_str()) {
        Ok(bytes) if bytes.starts_with(b"LGLZTRC") => {
            if opt_flag(args, "--salvage") {
                IndexedTrace::open_salvage(bytes).ok()
            } else {
                IndexedTrace::open(bytes).ok()
            }
        }
        _ => None,
    };
    if let Some(indexed) = &indexed {
        report.attach_spans(|id| {
            indexed
                .extents()
                .iter()
                .find(|e| e.id == id)
                .map(|e| (e.offset, e.offset + e.len))
        });
    }

    if format == "json" {
        println!("{}", report.render_json(session.trace().symbols()));
    } else {
        print!("{}", report.render_text(session.trace().symbols()));
    }

    if let Some(v) = opt_value(args, "--explain") {
        let index: usize = v
            .parse()
            .map_err(|_| format!("--explain expects a finding index, got {v:?}"))?;
        let finding = report
            .findings()
            .get(index)
            .ok_or_else(|| format!("report has {} finding(s), no index {index}", report.len()))?;
        explain_finding(&session, indexed.as_ref(), finding, jobs)?;
    }
    Ok(exit_for(&session))
}

/// `outliers` over a persisted rollup: detection, medians, baselines and
/// cause attribution all come from summaries; only flagged lock/wait
/// episodes are re-decoded (through the subset decoder) for their wait
/// graphs. `Ok(None)` falls back to the cold decode path.
fn try_warm_outliers(
    args: &[String],
    path: &str,
    jobs: usize,
    config: &OutlierConfig,
    format: &str,
) -> Result<Option<ExitCode>, Failure> {
    let Some(indexed) = warm_trace(args, path) else {
        return Ok(None);
    };
    let (analysis_config, filter) = warm_config(args)?;
    let Some(warm) = WarmSession::of_indexed(&indexed, analysis_config, &filter) else {
        return Ok(None);
    };
    let patterns = warm.mine_patterns_with_jobs(jobs);
    let decode = |positions: &[usize]| indexed.par_decode_subset(jobs, positions).ok();
    let Some(mut report) = warm.outliers(&patterns, config, &decode) else {
        return Ok(None);
    };
    report.attach_spans(|id| {
        indexed
            .extents()
            .iter()
            .find(|e| e.id == id)
            .map(|e| (e.offset, e.offset + e.len))
    });
    eprintln!(
        "rollup: cache hit ({} episode summaries, decoded only flagged lock/wait)",
        warm.rollup().summaries.len()
    );
    if format == "json" {
        println!("{}", report.render_json(warm.symbols()));
    } else {
        print!("{}", report.render_text(warm.symbols()));
    }
    if let Some(v) = opt_value(args, "--explain") {
        let index: usize = v
            .parse()
            .map_err(|_| format!("--explain expects a finding index, got {v:?}"))?;
        let finding = report
            .findings()
            .get(index)
            .ok_or_else(|| format!("report has {} finding(s), no index {index}", report.len()))?;
        let pos = indexed
            .extents()
            .iter()
            .position(|e| e.id == finding.episode_id)
            .ok_or("finding points outside the extent index")?;
        let episode = indexed
            .par_decode_subset(jobs, &[pos])
            .map_err(|e| e.to_string())?
            .pop()
            .ok_or("flagged episode missing from the subset decode")?;
        print_explanation(&episode, warm.symbols(), finding);
    }
    Ok(Some(ExitCode::SUCCESS))
}

/// Prints the deep-dive for one finding: the wait-edge evidence and an
/// ASCII sketch. On an indexed binary trace the episode is re-decoded
/// through [`IndexedTrace::par_decode_subset`] — only the flagged extent's
/// bytes are touched, demonstrating the skip-decode path the report's byte
/// spans point at.
fn explain_finding(
    session: &AnalysisSession,
    indexed: Option<&IndexedTrace>,
    finding: &lagalyzer_core::OutlierFinding,
    jobs: usize,
) -> Result<ExitCode, Failure> {
    let subset_decoded: Option<Episode> = indexed.and_then(|ix| {
        let pos = ix
            .extents()
            .iter()
            .position(|e| e.id == finding.episode_id)?;
        ix.par_decode_subset(jobs, &[pos]).ok()?.pop()
    });
    let episode = match &subset_decoded {
        Some(e) => e,
        None => session
            .episodes()
            .get(finding.episode_index)
            .ok_or("finding points outside the decoded session")?,
    };
    print_explanation(episode, session.trace().symbols(), finding);
    Ok(ExitCode::SUCCESS)
}

/// The deep-dive body shared by the warm and cold `--explain` paths.
fn print_explanation(
    episode: &Episode,
    symbols: &SymbolTable,
    finding: &lagalyzer_core::OutlierFinding,
) {
    println!(
        "\nepisode {} — {} ({}), excess +{}ms over the pattern median",
        finding.episode_id.as_raw(),
        finding.cause.code(),
        finding.cause.label(),
        finding.excess.as_nanos() / 1_000_000,
    );
    let graph = lagalyzer_model::WaitGraph::extract(episode);
    if graph.wait_samples() > 0 {
        println!(
            "wait edges: {} blocked + {} waiting sample(s)",
            graph.blocked_samples, graph.waiting_samples
        );
        for holder in graph.holders().iter().take(5) {
            println!(
                "  t{:<4} {:>4} sample(s)  {}",
                holder.thread.as_raw(),
                holder.samples,
                holder
                    .top_frame
                    .map_or_else(|| "<vm>".to_string(), |(m, _)| symbols.render(m)),
            );
        }
    } else {
        println!("wait edges: none (dispatch thread never sampled blocked/waiting)");
    }
    print!("{}", ascii_sketch(episode, symbols, 100));
}

fn cmd_sketch(args: &[String]) -> Result<ExitCode, Failure> {
    let path = args.first().ok_or("sketch requires a trace file")?;
    // Random access: a plain `--episode N` on an unfiltered binary trace
    // decodes just that episode through the extent index instead of the
    // whole file.
    if opt_value(args, "--pattern").is_none() && !opt_flag(args, "--salvage") {
        let filter = parse_filter(args)?;
        let bytes = fs::read(path).map_err(|e| format!("cannot load {path}: {e}"))?;
        if bytes.starts_with(b"LGLZTRC") && filter.is_unrestricted() {
            let indexed =
                IndexedTrace::open(bytes).map_err(|e| format!("cannot load {path}: {e}"))?;
            let index = parse_u64(args, "--episode", 0)? as usize;
            if index >= indexed.len() {
                return Err(
                    format!("trace has {} episodes, no index {index}", indexed.len()).into(),
                );
            }
            let episode = indexed
                .decode_episode(index)
                .map_err(|e| format!("cannot load {path}: {e}"))?;
            return render_episode_sketch(args, &episode, indexed.symbols(), index);
        }
    }
    let session = session_from(args, path)?;
    // --pattern N selects the first episode of the N-th pattern (what the
    // paper's pattern browser shows on selection); --episode N selects by
    // dispatch order.
    let index = if let Some(p) = opt_value(args, "--pattern") {
        let rank: usize = p
            .parse()
            .map_err(|_| format!("--pattern expects a number, got {p:?}"))?;
        let patterns = session.mine_patterns();
        let pattern = patterns
            .patterns()
            .get(rank)
            .ok_or_else(|| format!("trace has {} patterns, no rank {rank}", patterns.len()))?;
        if opt_flag(args, "--gallery") {
            // Render all of the pattern's episodes as mini-sketches on a
            // common scale (paper §II-E browsing flow).
            let episodes: Vec<_> = pattern
                .episode_indices()
                .iter()
                .map(|&i| &session.episodes()[i])
                .collect();
            let svg = render_pattern_gallery(
                &episodes,
                session.trace().symbols(),
                &SketchOptions::default(),
            );
            return match opt_value(args, "--out") {
                Some(out) => {
                    fs::write(out, svg).map_err(|e| format!("cannot write {out}: {e}"))?;
                    println!("wrote gallery of {} episodes to {out}", episodes.len());
                    Ok(ExitCode::SUCCESS)
                }
                None => {
                    println!("{svg}");
                    Ok(ExitCode::SUCCESS)
                }
            };
        }
        pattern.episode_indices()[0]
    } else {
        parse_u64(args, "--episode", 0)? as usize
    };
    let episode = session.episodes().get(index).ok_or_else(|| {
        format!(
            "trace has {} episodes, no index {index}",
            session.episodes().len()
        )
    })?;
    render_episode_sketch(args, episode, session.trace().symbols(), index)
}

fn render_episode_sketch(
    args: &[String],
    episode: &Episode,
    symbols: &SymbolTable,
    index: usize,
) -> Result<ExitCode, Failure> {
    if opt_flag(args, "--ascii") {
        print!("{}", ascii_sketch(episode, symbols, 100));
        return Ok(ExitCode::SUCCESS);
    }
    let svg = render_sketch(episode, symbols, &SketchOptions::default());
    match opt_value(args, "--out") {
        Some(out) => {
            fs::write(out, svg).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote sketch of episode {index} to {out}");
        }
        None => println!("{svg}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_timeline(args: &[String]) -> Result<ExitCode, Failure> {
    let path = args.first().ok_or("timeline requires a trace file")?;
    let session = session_from(args, path)?;
    let svg = render_timeline(&session, &TimelineOptions::default());
    match opt_value(args, "--out") {
        Some(out) => {
            fs::write(out, svg).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote timeline to {out}");
        }
        None => println!("{svg}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_stable(args: &[String]) -> Result<ExitCode, Failure> {
    let paths = positional_args(args, VALUE_FLAGS);
    if paths.is_empty() {
        return Err("stable requires at least one trace file".into());
    }
    let jobs = parse_jobs(args)?;
    let sessions: Vec<AnalysisSession> = paths
        .iter()
        .map(|p| session_from(args, p))
        .collect::<Result<_, _>>()?;
    let multi = lagalyzer_core::MultiPatternSet::mine_with_jobs(&sessions, jobs);
    println!(
        "{} traces, {} merged patterns ({} recurring in every trace)",
        sessions.len(),
        multi.len(),
        multi.recurring().count()
    );
    let problems = multi.stable_problems();
    println!("stable slow patterns (perceptible wherever they occur):");
    for (i, p) in problems.iter().take(15).enumerate() {
        let sig: String = p.signature().as_str().chars().take(70).collect();
        println!(
            "  {i:>2}. {:>4} episodes / {:>3} perceptible, total {} — {sig}",
            p.total_episodes(),
            p.total_perceptible(),
            p.total_lag(),
        );
    }
    if problems.is_empty() {
        println!("  (none)");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, Failure> {
    let paths = positional_args(args, VALUE_FLAGS);
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err("diff requires exactly two trace files: BASELINE CANDIDATE".into());
    };
    let baseline = session_from(args, baseline_path)?;
    let candidate = session_from(args, candidate_path)?;
    let diff = lagalyzer_core::SessionDiff::between(&baseline, &candidate);
    const TOLERANCE: f64 = 0.20;
    println!("{}", diff.summary(TOLERANCE));
    let trim = |sig: &lagalyzer_core::ShapeSignature| -> String {
        sig.as_str().chars().take(64).collect()
    };
    let regressions = diff.regressions(TOLERANCE);
    if !regressions.is_empty() {
        println!("\nregressions (mean lag, perceptible count):");
        for d in regressions.iter().take(10) {
            println!(
                "  {} -> {}  ({} -> {} perceptible)  {}",
                d.baseline_mean,
                d.candidate_mean,
                d.baseline_perceptible,
                d.candidate_perceptible,
                trim(&d.signature)
            );
        }
    }
    let improvements = diff.improvements(TOLERANCE);
    if !improvements.is_empty() {
        println!("\nimprovements:");
        for d in improvements.iter().take(10) {
            println!(
                "  {} -> {}  ({} -> {} perceptible)  {}",
                d.baseline_mean,
                d.candidate_mean,
                d.baseline_perceptible,
                d.candidate_perceptible,
                trim(&d.signature)
            );
        }
    }
    if !diff.appeared.is_empty() {
        println!("\nnew patterns (episodes, perceptible):");
        for (sig, eps, perc) in diff.appeared.iter().take(10) {
            println!("  {eps:>5} {perc:>4}  {}", trim(sig));
        }
    }
    if !diff.disappeared.is_empty() {
        println!("\ndisappeared patterns (episodes, perceptible):");
        for (sig, eps, perc) in diff.disappeared.iter().take(10) {
            println!("  {eps:>5} {perc:>4}  {}", trim(sig));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_experiments(args: &[String]) -> Result<ExitCode, Failure> {
    let out_dir = PathBuf::from(opt_value(args, "--out-dir").unwrap_or("target/experiments"));
    let sessions = parse_u64(args, "--sessions", 4)? as u32;
    let seed = parse_u64(args, "--seed", 42)?;
    let jobs = parse_jobs(args)?;
    fs::create_dir_all(&out_dir).map_err(|e| format!("cannot create {out_dir:?}: {e}"))?;

    eprintln!(
        "simulating {} apps x {sessions} sessions on {jobs} worker(s) ...",
        apps::standard_suite().len()
    );
    let study = Study::run_with_jobs(&apps::standard_suite(), sessions, seed, jobs);

    let table = table3::render(&study);
    write_out(&out_dir, "table3.txt", &table)?;
    println!("{table}");

    let mut figs = vec![
        figures::fig3(&study),
        figures::fig4(&study),
        figures::fig5(&study, false),
        figures::fig5(&study, true),
        figures::fig7(&study, false),
        figures::fig7(&study, true),
        figures::fig8(&study, false),
        figures::fig8(&study, true),
    ];
    for scope in [false, true] {
        let (a, b) = figures::fig6(&study, scope);
        figs.push(a);
        figs.push(b);
    }
    for fig in &figs {
        write_out(&out_dir, &format!("{}.svg", fig.id), &fig.svg)?;
        write_out(&out_dir, &format!("{}.txt", fig.id), &fig.text)?;
    }
    let html = lagalyzer_report::html::render(&study);
    write_out(&out_dir, "report.html", &html)?;
    println!(
        "wrote {} figures and report.html to {}",
        figs.len(),
        out_dir.display()
    );
    Ok(ExitCode::SUCCESS)
}

fn write_out(dir: &Path, name: &str, content: &str) -> Result<(), String> {
    let path = dir.join(name);
    fs::write(&path, content).map_err(|e| format!("cannot write {path:?}: {e}"))
}
