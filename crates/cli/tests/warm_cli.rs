//! Warm-path (persisted rollup) vs cold-path equivalence, through the
//! real binary.
//!
//! The contract under test: a trace that carries a valid rollup section
//! answers `analyze`/`patterns`/`outliers` without decoding episodes,
//! with stdout byte-identical to the cold decode at any `--jobs`; a
//! stale or corrupt section silently falls back to the cold path with
//! identical output and never panics; legacy v1 inputs never engage the
//! warm path at all. The cache-hit note is a stderr side channel and is
//! snapshot-locked here so its wording cannot drift silently.

use std::path::PathBuf;
use std::process::{Command, Output};

use lagalyzer_sim::scenarios::ground_truths;
use lagalyzer_sim::{apps, runner};
use lagalyzer_trace::binary;
use lagalyzer_trace::faults::Fault;
use proptest::prelude::*;

/// Temp scratch dir keyed by pid so parallel test binaries never collide.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lagalyzer-warm-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn lagalyzer(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lagalyzer"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_scratch(name: &str, bytes: &[u8]) -> PathBuf {
    let path = scratch_dir().join(name);
    std::fs::write(&path, bytes).unwrap();
    path
}

/// The trailer hash: FNV-1a over everything between the 8-byte magic
/// and the 8-byte trailer. Re-implemented here so tests can corrupt the
/// checksummed region and re-seal the file, isolating the rollup
/// section's own validation from the trailer's.
fn reseal_trailer(bytes: &mut [u8]) {
    let end = bytes.len() - 8;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes[8..end] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[end..].copy_from_slice(&h.to_le_bytes());
}

fn with_rollup(trace: &lagalyzer_model::SessionTrace) -> Vec<u8> {
    let mut bytes = Vec::new();
    let rollup = lagalyzer_core::rollup::build(trace);
    binary::write_with_rollup(trace, &mut bytes, rollup).unwrap();
    bytes
}

fn without_rollup(trace: &lagalyzer_model::SessionTrace) -> Vec<u8> {
    let mut bytes = Vec::new();
    binary::write(trace, &mut bytes).unwrap();
    bytes
}

/// Runs one subcommand against a path, returning (exit, stdout, stderr).
fn run(sub: &[&str], path: &std::path::Path, extra: &[&str]) -> (i32, Vec<u8>, String) {
    let mut args: Vec<&str> = sub.to_vec();
    let p = path.to_str().unwrap();
    args.push(p);
    args.extend_from_slice(extra);
    let out = lagalyzer(&args);
    (
        out.status.code().expect("no signal/panic"),
        out.stdout,
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Every (subcommand, extra-args) pair whose warm path must be
/// byte-identical to cold. Filters and formats ride along so the
/// skip-decode answers are exercised, not just the unrestricted view.
fn warm_surfaces() -> Vec<(&'static [&'static str], Vec<&'static str>)> {
    vec![
        (&["analyze"], vec![]),
        (&["analyze"], vec!["--histogram"]),
        (&["analyze"], vec!["--min-lag", "50"]),
        (&["analyze"], vec!["--perceptible", "--threshold-ms", "60"]),
        (&["patterns"], vec![]),
        (&["patterns"], vec!["--sort", "total", "--perceptible-only"]),
        (&["outliers"], vec![]),
        (&["outliers"], vec!["--format", "json"]),
    ]
}

#[test]
fn warm_matches_cold_on_every_surface_and_fixture() {
    for (i, gt) in ground_truths().iter().enumerate() {
        let warm = write_scratch(&format!("warm-{i}.lgz"), &with_rollup(&gt.trace));
        let cold = write_scratch(&format!("cold-{i}.lgz"), &without_rollup(&gt.trace));
        for (sub, extra) in warm_surfaces() {
            for jobs in ["1", "2", "5"] {
                let mut extra_jobs = extra.clone();
                extra_jobs.extend_from_slice(&["--jobs", jobs]);
                let (wc, wout, werr) = run(sub, &warm, &extra_jobs);
                let mut nocache = extra_jobs.clone();
                nocache.push("--no-cache");
                let (nc, nout, nerr) = run(sub, &warm, &nocache);
                let (cc, cout, cerr) = run(sub, &cold, &extra_jobs);
                let ctx = format!("{} {sub:?} {extra:?} --jobs {jobs}", gt.title);
                assert_eq!(wc, nc, "{ctx}: warm exit != --no-cache exit");
                assert_eq!(wc, cc, "{ctx}: warm exit != rollup-less exit");
                assert_eq!(wout, nout, "{ctx}: warm stdout != --no-cache stdout");
                assert_eq!(wout, cout, "{ctx}: warm stdout != rollup-less stdout");
                assert!(
                    werr.contains("rollup: cache hit"),
                    "{ctx}: warm run must announce the cache hit, got: {werr}"
                );
                assert!(
                    !nerr.contains("rollup: cache hit") && !cerr.contains("rollup: cache hit"),
                    "{ctx}: cold runs must not claim a cache hit"
                );
            }
        }
    }
}

/// The stderr note's exact wording, locked per subcommand (the
/// ground-truth scenarios all carry 36 episodes).
#[test]
fn cache_hit_lines_are_snapshot_locked() {
    let gt = &ground_truths()[0];
    let path = write_scratch("snap.lgz", &with_rollup(&gt.trace));
    let n = gt.trace.episodes().len();

    let (_, _, err) = run(&["analyze"], &path, &[]);
    assert!(
        err.contains(&format!(
            "rollup: cache hit ({n} episode summaries, zero decode)"
        )),
        "analyze: {err}"
    );
    let (_, _, err) = run(&["patterns"], &path, &[]);
    assert!(
        err.contains(&format!(
            "rollup: cache hit ({n} episode summaries, zero decode)"
        )),
        "patterns: {err}"
    );
    let (_, _, err) = run(&["outliers"], &path, &[]);
    assert!(
        err.contains(&format!(
            "rollup: cache hit ({n} episode summaries, decoded only flagged lock/wait)"
        )),
        "outliers: {err}"
    );
}

#[test]
fn legacy_v1_never_engages_the_warm_path() {
    let gt = &ground_truths()[0];
    let mut legacy = Vec::new();
    binary::write_legacy(&gt.trace, &mut legacy).unwrap();
    let v1 = write_scratch("legacy.lgz", &legacy);
    let v2 = write_scratch("legacy-v2.lgz", &with_rollup(&gt.trace));

    for (sub, extra) in warm_surfaces() {
        let (c1, out1, err1) = run(sub, &v1, &extra);
        let (c2, out2, _) = run(sub, &v2, &extra);
        assert_eq!(c1, c2, "{sub:?} {extra:?}: v1 exit differs");
        assert_eq!(
            out1, out2,
            "{sub:?} {extra:?}: v1 stdout differs from warm v2"
        );
        assert!(
            !err1.contains("rollup: cache hit"),
            "{sub:?} {extra:?}: v1 input cannot be a cache hit"
        );
    }
}

#[test]
fn salvage_mode_forces_the_cold_path() {
    let gt = ground_truths()
        .into_iter()
        .find(|g| g.title == "lock-contention")
        .unwrap();
    let damaged = Fault::DeleteRecord { index: 30 }.apply(&with_rollup(&gt.trace));
    let path = write_scratch("salvaged.lgz", &damaged);
    for sub in [&["analyze"][..], &["patterns"][..], &["outliers"][..]] {
        let (code, out, err) = run(sub, &path, &["--salvage"]);
        let (code2, out2, _) = run(sub, &path, &["--salvage", "--no-cache"]);
        assert_eq!(code, 2, "{sub:?}: salvaged trace must exit 2: {err}");
        assert_eq!(code, code2);
        assert_eq!(
            out, out2,
            "{sub:?}: --salvage output must not depend on the cache flag"
        );
        assert!(!err.contains("rollup: cache hit"), "{sub:?}: {err}");
    }
}

fn fuzz_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Simulated sessions (richer and more varied than the ground-truth
    /// scenarios) agree warm-vs-cold on analyze and outliers at a
    /// seed-picked job count.
    #[test]
    fn simulated_sessions_agree_warm_vs_cold(seed in any::<u64>()) {
        let profiles = [apps::jedit(), apps::arabeske(), apps::crossword_sage()];
        let trace = runner::simulate_session(&profiles[(seed % 3) as usize], 0, seed);
        let path = write_scratch(&format!("sim-{seed:016x}.lgz"), &with_rollup(&trace));
        let jobs = ["1", "2", "5"][(seed / 3 % 3) as usize];
        for sub in [&["analyze"][..], &["outliers"][..]] {
            let (wc, wout, werr) = run(sub, &path, &["--jobs", jobs]);
            let (nc, nout, _) = run(sub, &path, &["--jobs", jobs, "--no-cache"]);
            prop_assert!(wc == nc, "{:?}: exit differs ({} vs {})", sub, wc, nc);
            prop_assert!(wout == nout, "{:?}: stdout differs", sub);
            prop_assert!(werr.contains("rollup: cache hit"), "{:?}: {}", sub, werr);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A corrupt byte anywhere in the rollup section must never panic
    /// and must not change a byte of the answer: the reader classifies
    /// the section as stale and the commands fall back to the cold
    /// decode. The trailer is re-sealed after the flip so only the
    /// section's own validation stands between the corruption and the
    /// warm path.
    #[test]
    fn corrupt_rollup_section_falls_back_cold(seed in any::<u64>()) {
        let gt = &ground_truths()[(seed % 3) as usize];
        let mut bytes = with_rollup(&gt.trace);
        let section = match lagalyzer_trace::probe_rollup(&bytes) {
            Some(lagalyzer_trace::RollupHealth::Valid { section_bytes }) => section_bytes,
            other => panic!("fresh rollup must be valid, got {other:?}"),
        };
        // Positions count back from the trailer: the section occupies
        // [len - 8 - section, len - 8).
        let pos = bytes.len() - 8 - 1 - (seed / 3 % section) as usize;
        bytes[pos] ^= 1u8 << ((seed % 8) as u32);
        reseal_trailer(&mut bytes);

        let path = write_scratch(&format!("corrupt-{seed:016x}.lgz"), &bytes);
        let cold = write_scratch(
            &format!("corrupt-cold-{seed:016x}.lgz"),
            &without_rollup(&gt.trace),
        );
        for sub in [&["analyze"][..], &["patterns"][..], &["outliers"][..]] {
            let (code, out, err) = run(sub, &path, &[]);
            let (ccode, cout, _) = run(sub, &cold, &[]);
            prop_assert!(code == ccode, "{:?}: exit differs ({} vs {}), stderr: {}", sub, code, ccode, err);
            prop_assert!(out == cout, "{:?}: stdout differs from cold", sub);
            prop_assert!(!err.contains("rollup: cache hit"), "{:?}: {}", sub, err);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&cold);
    }
}
