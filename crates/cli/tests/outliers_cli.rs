//! Golden corpus and end-to-end tests for the `outliers` subcommand.
//!
//! Every fixture under `tests/corpus/` is a binary encoding of one of
//! the sim's ground-truth scenarios (plus a fault-injected, salvageable
//! variant); the exact `outliers --format json` stdout and exit code for
//! each is locked in `tests/corpus/EXPECTED.txt`. To regenerate after an
//! intentional format or report change:
//!
//! ```text
//! LAGALYZER_REGEN_CORPUS=1 cargo test -p lagalyzer-cli --test outliers_cli
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output};

use lagalyzer_sim::scenarios::ground_truths;
use lagalyzer_trace::binary;
use lagalyzer_trace::faults::{Fault, FaultInjector};
use proptest::prelude::*;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

/// Temp scratch dir keyed by pid so parallel test binaries never collide.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lagalyzer-outliers-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn lagalyzer(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lagalyzer"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// The corpus: `(file name, fixture bytes, extra outliers args)`. The
/// first three are the injected ground-truth scenarios verbatim; the
/// last is the lock-contention trace with one episode record deleted —
/// damaged but salvageable, so `--salvage` analyzes it and exits 2.
fn fixtures() -> Vec<(String, Vec<u8>, Vec<&'static str>)> {
    let mut out = Vec::new();
    let mut lock_bytes = None;
    for gt in ground_truths() {
        let mut bytes = Vec::new();
        // Fixtures carry rollup sections like the simulator's output does;
        // the fault-injected variant below silently invalidates its copy
        // (checksum mismatch), locking in the stale-cache fallback.
        let rollup = lagalyzer_core::rollup::build(&gt.trace);
        binary::write_with_rollup(&gt.trace, &mut bytes, rollup).unwrap();
        if gt.title == "lock-contention" {
            lock_bytes = Some(bytes.clone());
        }
        out.push((format!("{}.lgz", gt.title), bytes, vec![]));
    }
    let clean = lock_bytes.expect("ground truths include lock-contention");
    out.push((
        "salvaged-lock-contention.lgz".into(),
        Fault::DeleteRecord { index: 30 }.apply(&clean),
        vec!["--salvage"],
    ));
    out
}

/// One snapshot entry: the exit code and full JSON stdout of
/// `outliers FIXTURE --format json [extra args]`.
fn snapshot_line(name: &str, path: &std::path::Path, extra: &[&str]) -> String {
    let mut args = vec!["outliers", path.to_str().unwrap(), "--format", "json"];
    args.extend_from_slice(extra);
    let output = lagalyzer(&args);
    let code = output.status.code().expect("no signal/panic");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    format!("{name}: exit={code}\n{name}: {}", stdout.trim_end())
}

#[test]
fn corpus_outcomes_match_snapshot() {
    let dir = corpus_dir();
    let regen = std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some();
    if regen {
        std::fs::create_dir_all(&dir).unwrap();
        let mut expected = String::new();
        for (name, bytes, extra) in fixtures() {
            let path = dir.join(&name);
            std::fs::write(&path, &bytes).unwrap();
            writeln!(expected, "{}", snapshot_line(&name, &path, &extra)).unwrap();
        }
        std::fs::write(dir.join("EXPECTED.txt"), expected).unwrap();
        return;
    }

    let expected = std::fs::read_to_string(dir.join("EXPECTED.txt"))
        .expect("tests/corpus/EXPECTED.txt missing — run with LAGALYZER_REGEN_CORPUS=1");
    let mut actual = String::new();
    for (name, _, extra) in fixtures() {
        let path = dir.join(&name);
        assert!(path.exists(), "corpus fixture {name} missing");
        writeln!(actual, "{}", snapshot_line(&name, &path, &extra)).unwrap();
    }
    assert_eq!(
        actual, expected,
        "outliers corpus output changed; if intentional, regenerate with \
         LAGALYZER_REGEN_CORPUS=1 and commit the diff"
    );
}

/// The committed fixture bytes are locked to their generator so an
/// encoder change cannot drift past review unnoticed.
#[test]
fn corpus_fixtures_match_generator() {
    let dir = corpus_dir();
    if std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some() {
        return; // the snapshot test just rewrote them
    }
    for (name, bytes, _) in fixtures() {
        let on_disk = std::fs::read(dir.join(&name))
            .unwrap_or_else(|e| panic!("corpus fixture {name} unreadable: {e}"));
        assert_eq!(
            on_disk, bytes,
            "fixture {name} no longer matches its generator; if the format \
             change is intentional, regenerate with LAGALYZER_REGEN_CORPUS=1"
        );
    }
}

/// `--jobs` must never change a byte of the report, through the real
/// binary and not just the library API.
#[test]
fn outliers_json_identical_across_jobs_through_the_binary() {
    let path = corpus_dir().join("lock-contention.lgz");
    let path = path.to_str().unwrap();
    let baseline = lagalyzer(&["outliers", path, "--format", "json", "--jobs", "1"]);
    assert_eq!(baseline.status.code(), Some(0));
    for jobs in ["2", "3", "8"] {
        let run = lagalyzer(&["outliers", path, "--format", "json", "--jobs", jobs]);
        assert_eq!(run.status.code(), Some(0));
        assert_eq!(
            run.stdout, baseline.stdout,
            "--jobs {jobs} changed the report bytes"
        );
    }
}

#[test]
fn explain_renders_wait_edges_and_sketch() {
    let path = corpus_dir().join("lock-contention.lgz");
    let output = lagalyzer(&["outliers", path.to_str().unwrap(), "--explain", "0"]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("OC-LOCK"), "{stdout}");
    assert!(stdout.contains("com.app.CacheLock.rebuild"), "{stdout}");
}

#[test]
fn exit_codes_distinguish_clean_salvaged_and_errors() {
    let dir = corpus_dir();
    let clean = dir.join("gc-storm.lgz");
    let damaged = dir.join("salvaged-lock-contention.lgz");

    let output = lagalyzer(&["outliers", clean.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0), "clean trace must exit 0");

    let output = lagalyzer(&["outliers", damaged.to_str().unwrap(), "--salvage"]);
    assert_eq!(output.status.code(), Some(2), "salvaged trace must exit 2");

    let output = lagalyzer(&["outliers", damaged.to_str().unwrap()]);
    let code = output.status.code().expect("no panic");
    assert!(
        code != 0 && code != 2,
        "strict decode of damage: got {code}"
    );

    let output = lagalyzer(&["outliers", "/nonexistent/trace.lgz"]);
    assert_eq!(output.status.code(), Some(1), "missing file exits 1");

    for bad in [
        &["outliers"][..],
        &["outliers", clean.to_str().unwrap(), "--format", "xml"],
        &["outliers", clean.to_str().unwrap(), "--mad-k", "nope"],
        &["outliers", clean.to_str().unwrap(), "--mad-k", "-1"],
        &["outliers", clean.to_str().unwrap(), "--explain", "9999"],
    ] {
        let output = lagalyzer(bad);
        assert_eq!(output.status.code(), Some(1), "{bad:?} must exit 1");
    }
}

fn fuzz_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Seeded fault injection crossed with outlier attribution: whatever
    /// the corruption, the `outliers --salvage` pipeline must terminate
    /// with a contract exit code (0 clean, 2 salvaged, 3 unrecoverable)
    /// and never panic or hang.
    #[test]
    fn fault_injected_outliers_exit_codes_stay_in_contract(seed in any::<u64>()) {
        let gt = &ground_truths()[(seed % 3) as usize];
        let mut clean = Vec::new();
        binary::write(&gt.trace, &mut clean).unwrap();
        let (mutated, fault) = FaultInjector::new(seed).inject(&clean);

        let path = scratch_dir().join(format!("fuzz-{seed:016x}.lgz"));
        std::fs::write(&path, &mutated).unwrap();
        let output = lagalyzer(&[
            "outliers",
            path.to_str().unwrap(),
            "--format",
            "json",
            "--salvage",
        ]);
        let _ = std::fs::remove_file(&path);

        let code = output.status.code();
        prop_assert!(
            matches!(code, Some(0 | 2 | 3)),
            "fault {fault:?}: exit {code:?}, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        // Whenever the run produced a report at all, it must be the
        // stable JSON envelope, not partial output.
        if code == Some(0) || code == Some(2) {
            let stdout = String::from_utf8_lossy(&output.stdout);
            prop_assert!(
                stdout.starts_with("{\"tool\":\"lagalyzer-outliers\""),
                "fault {fault:?}: malformed report: {stdout}"
            );
        }
    }
}
