//! Golden snapshot and end-to-end tests for the `hazards` subcommand.
//!
//! The committed fixtures under `tests/corpus/` (shared with the
//! outliers suite — this suite never rewrites the trace bytes) get their
//! exact `hazards --format json` stdout and exit code locked in
//! `tests/corpus/EXPECTED_HAZARDS.txt`. To regenerate after an
//! intentional format or report change:
//!
//! ```text
//! LAGALYZER_REGEN_CORPUS=1 cargo test -p lagalyzer-cli --test hazards_cli
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output};

use lagalyzer_sim::scenarios::{abba_inversion, hazard_truths};
use lagalyzer_trace::binary;
use lagalyzer_trace::faults::FaultInjector;
use proptest::prelude::*;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn legacy_v1() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../trace/tests/corpus/legacy-v1.lgz")
}

/// Temp scratch dir keyed by pid so parallel test binaries never collide.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lagalyzer-hazards-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn lagalyzer(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lagalyzer"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// The snapshot set: `(committed fixture name, extra hazards args)`.
/// Covers the three ground-truth traces, the fault-injected salvage
/// variant, and the multi-session corpus (which exercises the `LA025`
/// cross-session path).
const SNAPSHOT_FIXTURES: &[(&str, &[&str])] = &[
    ("gc-storm.lgz", &[]),
    ("lock-contention.lgz", &[]),
    ("slow-io.lgz", &[]),
    ("salvaged-lock-contention.lgz", &["--salvage"]),
    ("corpus.lgzc", &[]),
];

/// One snapshot entry: the exit code and full JSON stdout of
/// `hazards FIXTURE --format json [extra args]`.
fn snapshot_line(name: &str, path: &std::path::Path, extra: &[&str]) -> String {
    let mut args = vec!["hazards", path.to_str().unwrap(), "--format", "json"];
    args.extend_from_slice(extra);
    let output = lagalyzer(&args);
    let code = output.status.code().expect("no signal/panic");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    // The snapshot must not depend on the absolute checkout path.
    let stdout = stdout.replace(path.to_str().unwrap(), name);
    format!("{name}: exit={code}\n{name}: {}", stdout.trim_end())
}

#[test]
fn hazards_outcomes_match_snapshot() {
    let dir = corpus_dir();
    let mut actual = String::new();
    for (name, extra) in SNAPSHOT_FIXTURES {
        let path = dir.join(name);
        assert!(path.exists(), "corpus fixture {name} missing");
        writeln!(actual, "{}", snapshot_line(name, &path, extra)).unwrap();
    }
    if std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some() {
        std::fs::write(dir.join("EXPECTED_HAZARDS.txt"), actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(dir.join("EXPECTED_HAZARDS.txt"))
        .expect("tests/corpus/EXPECTED_HAZARDS.txt missing — run with LAGALYZER_REGEN_CORPUS=1");
    assert_eq!(
        actual, expected,
        "hazards corpus output changed; if intentional, regenerate with \
         LAGALYZER_REGEN_CORPUS=1 and commit the diff"
    );
}

/// `--jobs` must never change a byte of the report — through the real
/// binary, on a clean fixture, the legacy-v1 format fixture and a
/// salvaged one.
#[test]
fn hazards_json_identical_across_jobs_through_the_binary() {
    let dir = corpus_dir();
    let legacy = legacy_v1();
    let cases: [(&std::path::Path, &[&str]); 3] = [
        (&dir.join("lock-contention.lgz"), &[]),
        (&legacy, &[]),
        (&dir.join("salvaged-lock-contention.lgz"), &["--salvage"]),
    ];
    for (path, extra) in cases {
        let path = path.to_str().unwrap();
        let mut args = vec!["hazards", path, "--format", "json", "--jobs", "1"];
        args.extend_from_slice(extra);
        let baseline = lagalyzer(&args);
        let code = baseline.status.code().expect("no panic");
        assert!(matches!(code, 0 | 2), "{path}: exit {code}");
        for jobs in ["2", "5"] {
            let mut args = vec!["hazards", path, "--format", "json", "--jobs", jobs];
            args.extend_from_slice(extra);
            let run = lagalyzer(&args);
            assert_eq!(run.status.code(), Some(code), "{path}: --jobs {jobs}");
            assert_eq!(
                run.stdout, baseline.stdout,
                "{path}: --jobs {jobs} changed the report bytes"
            );
        }
    }
}

/// The injected ABBA inversion travels the whole distance: sim scenario
/// → binary codec → real binary → `LA020` with both lock identities.
#[test]
fn abba_scenario_reports_la020_through_the_binary() {
    let truth = abba_inversion();
    let mut bytes = Vec::new();
    binary::write(&truth.trace, &mut bytes).unwrap();
    let path = scratch_dir().join("abba.lgz");
    std::fs::write(&path, &bytes).unwrap();

    let output = lagalyzer(&["hazards", path.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0), "findings don't change exit");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("LA020"), "{stdout}");
    for lock in &truth.locks {
        assert!(stdout.contains(lock), "missing lock {lock}: {stdout}");
    }
    assert!(
        stdout.contains("verdict: errors") || stdout.contains("errors —"),
        "{stdout}"
    );

    // --explain re-decodes just the flagged episode and prints its
    // contended waits plus the ASCII sketch.
    let output = lagalyzer(&["hazards", path.to_str().unwrap(), "--explain", "0"]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("contended waits:"), "{stdout}");
    assert!(stdout.contains("monitor"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

/// The control scenario stays clean through the binary too — the rules
/// discriminate hazards from ordinary consistent-order contention.
#[test]
fn control_scenario_stays_clean_through_the_binary() {
    let truth = hazard_truths()
        .into_iter()
        .find(|t| t.expected_code.is_none())
        .expect("hazard truths include a control");
    let mut bytes = Vec::new();
    binary::write(&truth.trace, &mut bytes).unwrap();
    let path = scratch_dir().join("hazard-control.lgz");
    std::fs::write(&path, &bytes).unwrap();
    let output = lagalyzer(&["hazards", path.to_str().unwrap(), "--format", "json"]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("\"verdict\":\"clean\""), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exit_codes_distinguish_clean_salvaged_and_errors() {
    let dir = corpus_dir();
    let clean = dir.join("gc-storm.lgz");
    let damaged = dir.join("salvaged-lock-contention.lgz");
    let corpus = dir.join("corpus.lgzc");

    let output = lagalyzer(&["hazards", clean.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0), "clean trace must exit 0");

    let output = lagalyzer(&["hazards", damaged.to_str().unwrap(), "--salvage"]);
    assert_eq!(output.status.code(), Some(2), "salvaged trace must exit 2");

    let output = lagalyzer(&["hazards", damaged.to_str().unwrap()]);
    let code = output.status.code().expect("no panic");
    assert!(
        code != 0 && code != 2,
        "strict decode of damage: got {code}"
    );

    let output = lagalyzer(&["hazards", "/nonexistent/trace.lgz"]);
    assert_eq!(output.status.code(), Some(1), "missing file exits 1");

    for bad in [
        &["hazards"][..],
        &["hazards", clean.to_str().unwrap(), "--format", "xml"],
        &["hazards", clean.to_str().unwrap(), "--min-samples", "nope"],
        &["hazards", clean.to_str().unwrap(), "--explain", "9999"],
        &["hazards", corpus.to_str().unwrap(), "--explain", "0"],
    ] {
        let output = lagalyzer(bad);
        assert_eq!(output.status.code(), Some(1), "{bad:?} must exit 1");
    }
}

fn fuzz_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Seeded fault injection crossed with hazard analysis: whatever the
    /// corruption, the `hazards --salvage` pipeline must terminate with
    /// a contract exit code (0 clean, 2 salvaged, 3 unrecoverable) and
    /// never panic or hang.
    #[test]
    fn fault_injected_hazards_exit_codes_stay_in_contract(seed in any::<u64>()) {
        let truths = hazard_truths();
        let truth = &truths[(seed % truths.len() as u64) as usize];
        let mut clean = Vec::new();
        binary::write(&truth.trace, &mut clean).unwrap();
        let (mutated, fault) = FaultInjector::new(seed).inject(&clean);

        let path = scratch_dir().join(format!("fuzz-{seed:016x}.lgz"));
        std::fs::write(&path, &mutated).unwrap();
        let output = lagalyzer(&[
            "hazards",
            path.to_str().unwrap(),
            "--format",
            "json",
            "--salvage",
        ]);
        let _ = std::fs::remove_file(&path);

        let code = output.status.code();
        prop_assert!(
            matches!(code, Some(0 | 2 | 3)),
            "fault {fault:?}: exit {code:?}, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        // Whenever the run produced a report at all, it must be the
        // stable JSON envelope, not partial output.
        if code == Some(0) || code == Some(2) {
            let stdout = String::from_utf8_lossy(&output.stdout);
            prop_assert!(
                stdout.starts_with("{\"tool\":\"lagalyzer-hazards\""),
                "fault {fault:?}: malformed report: {stdout}"
            );
        }
    }
}
