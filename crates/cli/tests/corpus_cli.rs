//! Golden corpus-container fixture and end-to-end tests for the corpus
//! subcommands (`pack`, `compact`, corpus-aware `analyze`/`lint`).
//!
//! `tests/corpus/corpus.lgzc` is a four-session `.lgzc` built from the
//! committed single-trace fixtures (three clean ground-truth scenarios
//! plus the fault-injected salvaged variant); the exact corpus-wide
//! `analyze --format json` stdout, the `lint` stdout, and both exit
//! codes are locked in `tests/corpus/EXPECTED_CORPUS.txt`. To
//! regenerate after an intentional format change:
//!
//! ```text
//! LAGALYZER_REGEN_CORPUS=1 cargo test -p lagalyzer-cli --test corpus_cli
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output};

use lagalyzer_trace::corpus::{self, PackOptions};
use lagalyzer_trace::IndexedTrace;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lagalyzer-corpus-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn lagalyzer(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lagalyzer"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// The single-trace fixtures the corpus is packed from: three clean
/// scenarios opened strictly, the damaged one through the salvage path.
const CLEAN_MEMBERS: [&str; 3] = ["gc-storm.lgz", "lock-contention.lgz", "slow-io.lgz"];
const SALVAGED_MEMBER: &str = "salvaged-lock-contention.lgz";

/// Rebuilds the committed `corpus.lgzc` from the committed `.lgz`
/// fixtures — `pack` is deterministic, so the corpus is reproducible
/// byte-for-byte.
fn build_fixture_corpus() -> Vec<u8> {
    let dir = corpus_dir();
    let mut opened: Vec<IndexedTrace> = CLEAN_MEMBERS
        .iter()
        .map(|name| {
            let bytes = std::fs::read(dir.join(name))
                .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
            IndexedTrace::open(bytes).unwrap()
        })
        .collect();
    let damaged = std::fs::read(dir.join(SALVAGED_MEMBER)).unwrap();
    opened.push(IndexedTrace::open_salvage(damaged).unwrap());
    corpus::pack(&opened, PackOptions::default()).unwrap()
}

/// The snapshot: exit code and stdout of corpus-wide
/// `analyze --format json` and of `lint`, both on the fixture corpus.
fn snapshot(path: &std::path::Path) -> String {
    let mut out = String::new();
    for (label, args) in [
        (
            "analyze",
            vec![
                "analyze",
                path.to_str().unwrap(),
                "--format",
                "json",
                "--jobs",
                "2",
            ],
        ),
        ("lint", vec!["lint", path.to_str().unwrap()]),
    ] {
        let output = lagalyzer(&args);
        let code = output.status.code().expect("no signal/panic");
        let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
        writeln!(out, "{label}: exit={code}").unwrap();
        for line in stdout.trim_end().lines() {
            writeln!(out, "{label}: {line}").unwrap();
        }
    }
    out
}

#[test]
fn corpus_fixture_matches_snapshot() {
    let dir = corpus_dir();
    let regen = std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some();
    let path = dir.join("corpus.lgzc");
    if regen {
        std::fs::write(&path, build_fixture_corpus()).unwrap();
        let expected = snapshot(&path);
        std::fs::write(dir.join("EXPECTED_CORPUS.txt"), expected).unwrap();
        return;
    }
    assert!(
        path.exists(),
        "corpus.lgzc missing — run with LAGALYZER_REGEN_CORPUS=1"
    );
    let expected = std::fs::read_to_string(dir.join("EXPECTED_CORPUS.txt"))
        .expect("tests/corpus/EXPECTED_CORPUS.txt missing — run with LAGALYZER_REGEN_CORPUS=1");
    assert_eq!(
        snapshot(&path),
        expected,
        "corpus analyze/lint output changed; if intentional, regenerate with \
         LAGALYZER_REGEN_CORPUS=1 and commit the diff"
    );
}

/// The committed corpus bytes are locked to their generator (`pack` over
/// the committed `.lgz` fixtures), so a format change cannot drift past
/// review unnoticed.
#[test]
fn corpus_fixture_matches_generator() {
    if std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some() {
        return; // the snapshot test just rewrote it
    }
    let on_disk = std::fs::read(corpus_dir().join("corpus.lgzc"))
        .expect("corpus.lgzc unreadable — run with LAGALYZER_REGEN_CORPUS=1");
    assert_eq!(
        on_disk,
        build_fixture_corpus(),
        "corpus.lgzc no longer matches `pack` over the .lgz fixtures; if the \
         format change is intentional, regenerate with LAGALYZER_REGEN_CORPUS=1"
    );
}

/// `lint` on a corpus prints one index-health line per session plus the
/// aggregate verdict, and keeps the 0/1/2/3 exit contract: the fixture
/// corpus has one damaged member, so it exits 2.
#[test]
fn lint_reports_per_session_health_and_aggregate_verdict() {
    if std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some() {
        return; // the fixture is being rewritten concurrently
    }
    let path = corpus_dir().join("corpus.lgzc");
    let output = lagalyzer(&["lint", path.to_str().unwrap()]);
    assert_eq!(
        output.status.code(),
        Some(2),
        "damaged member corpus exits 2"
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(
        stdout.contains("corpus"),
        "missing corpus summary: {stdout}"
    );
    for i in 0..4 {
        assert!(
            stdout.contains(&format!("session {i}")),
            "missing session {i} line: {stdout}"
        );
    }
    assert!(
        stdout.contains("footer valid"),
        "missing index health: {stdout}"
    );
    assert!(
        stdout.contains("aggregate           damaged corpus"),
        "missing aggregate verdict: {stdout}"
    );
}

/// A corpus of only clean members lints clean and exits 0; garbage with
/// a corpus magic exits 3; a missing file exits 1.
#[test]
fn lint_exit_contract_on_corpora() {
    let dir = scratch_dir();
    let clean_path = dir.join("clean.lgzc");
    let opened: Vec<IndexedTrace> = CLEAN_MEMBERS
        .iter()
        .map(|name| IndexedTrace::open(std::fs::read(corpus_dir().join(name)).unwrap()).unwrap())
        .collect();
    std::fs::write(
        &clean_path,
        corpus::pack(&opened, PackOptions::default()).unwrap(),
    )
    .unwrap();
    let output = lagalyzer(&["lint", clean_path.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("aggregate           clean"), "{stdout}");

    let garbage_path = dir.join("garbage.lgzc");
    let mut garbage = b"LGLZCRP\x01".to_vec();
    garbage.extend_from_slice(&[0u8; 64]);
    std::fs::write(&garbage_path, garbage).unwrap();
    let output = lagalyzer(&["lint", garbage_path.to_str().unwrap()]);
    assert_eq!(
        output.status.code(),
        Some(3),
        "unrecoverable corpus exits 3"
    );
    assert!(String::from_utf8(output.stdout)
        .unwrap()
        .contains("unrecoverable"));

    let output = lagalyzer(&["lint", dir.join("no-such.lgzc").to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1), "I/O error exits 1");
}

/// `--session K` selects one member for the single-session commands; the
/// result matches analyzing the original `.lgz` file, and the salvaged
/// member carries its exit-2 provenance through the corpus.
#[test]
fn session_selector_matches_single_file_analysis() {
    if std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some() {
        return; // the fixture is being rewritten concurrently
    }
    let corpus_path = corpus_dir().join("corpus.lgzc");
    let corpus_path = corpus_path.to_str().unwrap();
    for (i, name) in CLEAN_MEMBERS.iter().enumerate() {
        let single_path = corpus_dir().join(name);
        let single = lagalyzer(&["analyze", single_path.to_str().unwrap(), "--jobs", "2"]);
        let via_corpus = lagalyzer(&[
            "analyze",
            corpus_path,
            "--session",
            &i.to_string(),
            "--jobs",
            "2",
        ]);
        assert_eq!(single.status.code(), Some(0));
        assert_eq!(via_corpus.status.code(), Some(0));
        assert_eq!(
            String::from_utf8(single.stdout).unwrap(),
            String::from_utf8(via_corpus.stdout).unwrap(),
            "corpus --session {i} must match analyzing {name} directly"
        );
    }
    let salvaged = lagalyzer(&["analyze", corpus_path, "--session", "3"]);
    assert_eq!(
        salvaged.status.code(),
        Some(2),
        "the salvaged member keeps its damaged provenance through the corpus"
    );
    let out_of_range = lagalyzer(&["analyze", corpus_path, "--session", "9"]);
    assert_eq!(out_of_range.status.code(), Some(1));
    let no_selector = lagalyzer(&["outliers", corpus_path]);
    assert_eq!(no_selector.status.code(), Some(1));
    assert!(
        String::from_utf8(no_selector.stderr)
            .unwrap()
            .contains("--session"),
        "the error must point at --session"
    );
}

/// `pack` through the binary, then corpus-wide `analyze` at several job
/// counts: byte-identical stdout, and the pack summary reports the
/// symbol dedup.
#[test]
fn pack_and_corpus_analyze_through_the_binary() {
    let dir = scratch_dir();
    let out = dir.join("packed.lgzc");
    let mut args = vec!["pack"];
    let paths: Vec<String> = CLEAN_MEMBERS
        .iter()
        .map(|n| corpus_dir().join(n).to_str().unwrap().to_owned())
        .collect();
    args.extend(paths.iter().map(String::as_str));
    args.extend(["--out", out.to_str().unwrap()]);
    let output = lagalyzer(&args);
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("deduplicated"), "{stdout}");

    let baseline = lagalyzer(&[
        "analyze",
        out.to_str().unwrap(),
        "--format",
        "json",
        "--jobs",
        "1",
    ]);
    assert_eq!(baseline.status.code(), Some(0));
    for jobs in ["2", "3", "8"] {
        let run = lagalyzer(&[
            "analyze",
            out.to_str().unwrap(),
            "--format",
            "json",
            "--jobs",
            jobs,
        ]);
        assert_eq!(run.status.code(), Some(0));
        assert_eq!(
            baseline.stdout, run.stdout,
            "corpus analyze differs between --jobs 1 and --jobs {jobs}"
        );
    }
}

/// `compact` through the binary is idempotent and drops the salvaged
/// member's skipped bytes (the compacted corpus lints clean-history but
/// keeps the damaged provenance).
#[test]
fn compact_through_the_binary_is_idempotent() {
    if std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some() {
        return; // the fixture is being rewritten concurrently
    }
    let dir = scratch_dir();
    let src = corpus_dir().join("corpus.lgzc");
    let once = dir.join("once.lgzc");
    let twice = dir.join("twice.lgzc");
    let output = lagalyzer(&[
        "compact",
        src.to_str().unwrap(),
        "--out",
        once.to_str().unwrap(),
        "--jobs",
        "2",
    ]);
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let output = lagalyzer(&[
        "compact",
        once.to_str().unwrap(),
        "--out",
        twice.to_str().unwrap(),
        "--jobs",
        "2",
    ]);
    assert_eq!(output.status.code(), Some(0));
    assert_eq!(
        std::fs::read(&once).unwrap(),
        std::fs::read(&twice).unwrap(),
        "compact must be idempotent"
    );
    // Provenance survives: the salvaged member still exits 2.
    let salvaged = lagalyzer(&["analyze", once.to_str().unwrap(), "--session", "3"]);
    assert_eq!(salvaged.status.code(), Some(2));
}

/// `simulate --sessions N` writes a corpus the other commands accept.
#[test]
fn simulate_writes_a_corpus() {
    let dir = scratch_dir();
    let out = dir.join("simulated.lgzc");
    let output = lagalyzer(&[
        "simulate",
        "--app",
        "CrosswordSage",
        "--seed",
        "11",
        "--sessions",
        "2",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let lint = lagalyzer(&["lint", out.to_str().unwrap()]);
    assert_eq!(lint.status.code(), Some(0));
    let stdout = String::from_utf8(lint.stdout).unwrap();
    assert!(stdout.contains("2 session(s)"), "{stdout}");
}
