//! End-to-end tests of the `lagalyzer` binary.

use std::process::Command;

fn lagalyzer() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lagalyzer"))
}

fn run_ok(args: &[&str]) -> String {
    let output = lagalyzer().args(args).output().expect("binary runs");
    assert!(
        output.status.success(),
        "lagalyzer {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

#[test]
fn help_lists_commands() {
    let out = run_ok(&["help"]);
    for cmd in [
        "apps",
        "simulate",
        "analyze",
        "patterns",
        "sketch",
        "experiments",
    ] {
        assert!(out.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn no_args_prints_usage() {
    let out = run_ok(&[]);
    assert!(out.contains("usage:"));
}

#[test]
fn apps_lists_the_suite() {
    let out = run_ok(&["apps"]);
    for app in ["Arabeske", "NetBeans", "SwingSet"] {
        assert!(out.contains(app));
    }
    assert_eq!(out.lines().count(), 15, "header + 14 apps");
}

#[test]
fn unknown_command_fails() {
    let output = lagalyzer().arg("frobnicate").output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown command"));
}

#[test]
fn simulate_analyze_patterns_sketch_roundtrip() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.lgz");
    let trace_str = trace.to_str().unwrap();

    let out = run_ok(&[
        "simulate",
        "--app",
        "CrosswordSage",
        "--seed",
        "9",
        "--out",
        trace_str,
    ]);
    assert!(out.contains("CrosswordSage"));
    assert!(trace.exists());

    let out = run_ok(&["analyze", trace_str]);
    assert!(out.contains("episodes >= 100ms"));
    assert!(out.contains("distinct patterns"));

    let out = run_ok(&[
        "patterns",
        trace_str,
        "--perceptible-only",
        "--sort",
        "total",
    ]);
    assert!(out.contains("rank"));
    assert!(out.lines().count() > 2);

    let out = run_ok(&["sketch", trace_str, "--episode", "0", "--ascii"]);
    assert!(out.contains("depth 0"));

    let svg_path = dir.join("sketch.svg");
    run_ok(&[
        "sketch",
        trace_str,
        "--episode",
        "1",
        "--out",
        svg_path.to_str().unwrap(),
    ]);
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn text_format_traces_also_load() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-text-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.lgzt");
    let trace_str = trace.to_str().unwrap();
    run_ok(&["simulate", "--app", "JEdit", "--text", "--out", trace_str]);
    let content = std::fs::read_to_string(&trace).unwrap();
    assert!(content.starts_with("lagalyzer-trace v1"));
    let out = run_ok(&["analyze", trace_str]);
    assert!(out.contains("JEdit"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_garbage() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.lgz");
    std::fs::write(&bad, b"this is not a trace").unwrap();
    let output = lagalyzer()
        .args(["analyze", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!output.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_filters_prune_before_decode() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-filter-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.lgz");
    let trace_str = trace.to_str().unwrap();
    run_ok(&[
        "simulate", "--app", "JEdit", "--seed", "7", "--out", trace_str,
    ]);

    let grab = |out: &str, label: &str| -> u64 {
        out.lines()
            .find(|l| l.starts_with(label))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let full = run_ok(&["analyze", trace_str]);
    assert!(
        !full.contains("filtered out"),
        "unfiltered run must not note exclusions"
    );
    let filtered = run_ok(&["analyze", trace_str, "--perceptible", "--jobs", "3"]);
    // Everything below the perceptibility threshold was skipped at ingest;
    // the perceptible population itself is untouched.
    assert_eq!(
        grab(&filtered, "episodes >= 100ms"),
        grab(&full, "episodes >= 100ms")
    );
    assert_eq!(
        grab(&filtered, "episodes >= 3ms"),
        grab(&full, "episodes >= 100ms")
    );
    assert_eq!(
        grab(&filtered, "filtered out"),
        grab(&full, "episodes >= 3ms") - grab(&full, "episodes >= 100ms")
    );

    // --min-lag with the same threshold agrees with --perceptible, and a
    // time window excludes everything outside the session.
    let min_lag = run_ok(&["analyze", trace_str, "--min-lag", "100"]);
    assert_eq!(
        grab(&min_lag, "episodes >= 3ms"),
        grab(&filtered, "episodes >= 3ms")
    );
    let windowed = run_ok(&["analyze", trace_str, "--until-ms", "0"]);
    assert_eq!(grab(&windowed, "episodes >= 3ms"), 0);

    // The text codec honors the same filter (decode-then-drop).
    let text = dir.join("t.txt");
    let text_str = text.to_str().unwrap();
    run_ok(&[
        "simulate", "--app", "JEdit", "--seed", "7", "--text", "--out", text_str,
    ]);
    let text_filtered = run_ok(&["analyze", text_str, "--perceptible"]);
    assert_eq!(
        grab(&text_filtered, "episodes >= 3ms"),
        grab(&filtered, "episodes >= 3ms")
    );
    assert_eq!(
        grab(&text_filtered, "filtered out"),
        grab(&filtered, "filtered out")
    );

    // lint reports index health without changing its exit code.
    let lint_bin = run_ok(&["lint", trace_str]);
    assert!(
        lint_bin.contains("index               footer valid"),
        "{lint_bin}"
    );
    let lint_text = run_ok(&["lint", text_str]);
    assert!(lint_text.contains("not applicable"), "{lint_text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn custom_threshold_flag() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-thr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.lgz");
    run_ok(&[
        "simulate",
        "--app",
        "JMol",
        "--out",
        trace.to_str().unwrap(),
    ]);
    let strict = run_ok(&["analyze", trace.to_str().unwrap(), "--threshold-ms", "50"]);
    let lax = run_ok(&["analyze", trace.to_str().unwrap(), "--threshold-ms", "500"]);
    let count = |s: &str| -> u64 {
        s.lines()
            .find(|l| l.starts_with("episodes >= 100ms"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    assert!(count(&strict) > count(&lax));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timeline_renders_svg() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-tl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.lgz");
    run_ok(&[
        "simulate",
        "--app",
        "CrosswordSage",
        "--out",
        trace.to_str().unwrap(),
    ]);
    let svg_path = dir.join("timeline.svg");
    run_ok(&[
        "timeline",
        trace.to_str().unwrap(),
        "--out",
        svg_path.to_str().unwrap(),
    ]);
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("CrosswordSage"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stable_merges_multiple_traces() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-st-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let t0 = dir.join("s0.lgz");
    let t1 = dir.join("s1.lgz");
    run_ok(&[
        "simulate",
        "--app",
        "JEdit",
        "--session",
        "0",
        "--out",
        t0.to_str().unwrap(),
    ]);
    run_ok(&[
        "simulate",
        "--app",
        "JEdit",
        "--session",
        "1",
        "--out",
        t1.to_str().unwrap(),
    ]);
    let out = run_ok(&["stable", t0.to_str().unwrap(), t1.to_str().unwrap()]);
    assert!(out.contains("2 traces"));
    assert!(out.contains("merged patterns"));
    assert!(out.contains("stable slow patterns"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sketch_by_pattern_rank() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-pr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.lgz");
    run_ok(&[
        "simulate",
        "--app",
        "JFreeChart",
        "--out",
        trace.to_str().unwrap(),
    ]);
    let out = run_ok(&[
        "sketch",
        trace.to_str().unwrap(),
        "--pattern",
        "0",
        "--ascii",
    ]);
    assert!(out.contains("depth 0"));
    // An out-of-range pattern rank fails cleanly.
    let output = lagalyzer()
        .args(["sketch", trace.to_str().unwrap(), "--pattern", "999999"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

/// Full experiments run — slow, so opt in with `cargo test -- --ignored`.
#[test]
#[ignore = "runs the full 14-app study; invoke with --ignored"]
fn experiments_regenerate_all_figures() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-exp-{}", std::process::id()));
    let out = run_ok(&[
        "experiments",
        "--out-dir",
        dir.to_str().unwrap(),
        "--sessions",
        "1",
        "--seed",
        "3",
    ]);
    assert!(out.contains("Mean"));
    for file in [
        "table3.txt",
        "fig3.svg",
        "fig4.svg",
        "fig5_perceptible.svg",
        "fig6_perceptible_samples.svg",
        "fig7_perceptible.svg",
        "fig8_perceptible.svg",
        "report.html",
    ] {
        assert!(dir.join(file).exists(), "missing {file}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Simulates a trace and returns `(clean path, truncated copy path)`.
fn clean_and_damaged(dir: &std::path::Path) -> (std::path::PathBuf, std::path::PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let clean = dir.join("clean.lgz");
    run_ok(&[
        "simulate",
        "--app",
        "CrosswordSage",
        "--seed",
        "17",
        "--out",
        clean.to_str().unwrap(),
    ]);
    let bytes = std::fs::read(&clean).unwrap();
    let damaged = dir.join("damaged.lgz");
    std::fs::write(&damaged, &bytes[..bytes.len() * 3 / 5]).unwrap();
    (clean, damaged)
}

#[test]
fn lint_exit_codes_separate_clean_salvaged_unrecoverable() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-lint-{}", std::process::id()));
    let (clean, damaged) = clean_and_damaged(&dir);

    let output = lagalyzer()
        .args(["lint", clean.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0), "clean trace must lint clean");
    assert!(String::from_utf8_lossy(&output.stdout).contains("clean"));

    let output = lagalyzer()
        .args(["lint", damaged.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "damaged trace must exit 2");
    let out = String::from_utf8_lossy(&output.stdout).to_string();
    assert!(out.contains("damaged trace"), "report missing: {out}");
    assert!(out.contains("episodes recovered"), "report missing: {out}");

    let garbage = dir.join("garbage.bin");
    std::fs::write(&garbage, b"definitely not a trace").unwrap();
    let output = lagalyzer()
        .args(["lint", garbage.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(3), "garbage must exit 3");
    assert!(String::from_utf8_lossy(&output.stdout).contains("unrecoverable"));

    // A missing file is a plain I/O error, exit 1.
    let output = lagalyzer()
        .args(["lint", dir.join("nope.lgz").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_and_patterns_salvage_damaged_traces() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-salv-{}", std::process::id()));
    let (clean, damaged) = clean_and_damaged(&dir);

    // Without --salvage the damaged trace is an error (exit 1).
    let output = lagalyzer()
        .args(["analyze", damaged.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));

    // With --salvage it analyzes what survived and exits 2.
    let output = lagalyzer()
        .args(["analyze", damaged.to_str().unwrap(), "--salvage"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "salvaged analyze exits 2");
    let stdout = String::from_utf8_lossy(&output.stdout).to_string();
    assert!(
        stdout.contains("distinct patterns"),
        "stats missing: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&output.stderr).to_string();
    assert!(stderr.contains("salvage:"), "summary missing: {stderr}");

    // The pattern table carries the provenance note and also exits 2.
    let output = lagalyzer()
        .args(["patterns", damaged.to_str().unwrap(), "--salvage"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&output.stdout).to_string();
    assert!(
        stdout.contains("note: trace salvaged"),
        "note missing: {stdout}"
    );

    // --salvage on a clean trace is byte-identical to strict: exit 0, no note.
    let strict = run_ok(&["patterns", clean.to_str().unwrap()]);
    let output = lagalyzer()
        .args(["patterns", clean.to_str().unwrap(), "--salvage"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&output.stdout), strict);

    // Unrecoverable input under --salvage exits 3.
    let garbage = dir.join("garbage.bin");
    std::fs::write(&garbage, b"definitely not a trace").unwrap();
    let output = lagalyzer()
        .args(["analyze", garbage.to_str().unwrap(), "--salvage"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(3));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_compares_two_traces() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.lgz");
    let b = dir.join("b.lgz");
    run_ok(&[
        "simulate",
        "--app",
        "FreeMind",
        "--session",
        "0",
        "--out",
        a.to_str().unwrap(),
    ]);
    run_ok(&[
        "simulate",
        "--app",
        "FreeMind",
        "--session",
        "1",
        "--out",
        b.to_str().unwrap(),
    ]);
    let out = run_ok(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.contains("common patterns"));
    // Same app, same library: nothing should appear or disappear.
    assert!(out.contains("0 appeared, 0 disappeared"));
    // One file is an error.
    let output = lagalyzer()
        .args(["diff", a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!output.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_exit_codes_separate_clean_warnings_errors_unrecoverable() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-check-{}", std::process::id()));
    let (clean, damaged) = clean_and_damaged(&dir);

    let output = lagalyzer()
        .args(["check", clean.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(0),
        "clean trace must check clean"
    );
    let out = String::from_utf8_lossy(&output.stdout).to_string();
    assert!(out.contains("clean — 0 error(s)"), "report missing: {out}");

    // Truncation surfaces as salvage-skip warnings (LA011) plus a
    // trailer-checksum error (LA012): exit 2.
    let output = lagalyzer()
        .args(["check", damaged.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "damaged trace must exit 2");
    let out = String::from_utf8_lossy(&output.stdout).to_string();
    assert!(
        out.contains("error[LA012]"),
        "missing checksum error: {out}"
    );
    assert!(
        out.contains("warning[LA011]"),
        "missing skip warning: {out}"
    );

    let garbage = dir.join("garbage.bin");
    std::fs::write(&garbage, b"definitely not a trace").unwrap();
    let output = lagalyzer()
        .args(["check", garbage.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(3), "garbage must exit 3");

    let output = lagalyzer()
        .args(["check", dir.join("nope.lgz").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(1),
        "missing file is an I/O error"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_rule_overrides_and_unknown_rules() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-check-ov-{}", std::process::id()));
    let (_clean, damaged) = clean_and_damaged(&dir);
    let damaged = damaged.to_str().unwrap();

    // Allowing every rule the damage trips turns the report clean; rules
    // may be addressed by code or by name.
    for allow in [
        ["--allow", "LA011", "--allow", "LA012", "--allow", "LA013"],
        [
            "--allow",
            "salvage-skip",
            "--allow",
            "checksum-mismatch",
            "--allow",
            "index-degraded",
        ],
    ] {
        let mut args = vec!["check", damaged];
        args.extend(allow);
        let output = lagalyzer().args(&args).output().unwrap();
        assert_eq!(output.status.code(), Some(0), "allowed rules must exit 0");
    }

    // Demoting the checksum error to a note leaves only the LA011
    // warnings: exit 1.
    let output = lagalyzer()
        .args([
            "check",
            damaged,
            "--level",
            "LA012=note",
            "--allow",
            "LA013",
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "warnings alone must exit 1");

    // Unknown rules and malformed severities are usage errors.
    for bad in [
        ["--allow", "LA999"],
        ["--level", "LA012=frobnicate"],
        ["--level", "LA012"],
    ] {
        let mut args = vec!["check", damaged];
        args.extend(bad);
        let output = lagalyzer().args(&args).output().unwrap();
        assert_eq!(output.status.code(), Some(1), "{bad:?} must be rejected");
        assert!(!String::from_utf8_lossy(&output.stderr).is_empty());
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_json_format_and_fix_report() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-check-js-{}", std::process::id()));
    let (clean, damaged) = clean_and_damaged(&dir);

    let json = run_ok(&["check", clean.to_str().unwrap(), "--format", "json"]);
    assert!(json.starts_with("{\"file\":"), "not JSON: {json}");
    assert!(json.contains("\"verdict\":\"clean\""));

    let report_path = dir.join("fix-report.json");
    let output = lagalyzer()
        .args([
            "check",
            damaged.to_str().unwrap(),
            "--fix-report",
            report_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    let written = std::fs::read_to_string(&report_path).unwrap();
    assert!(written.ends_with('\n'));
    assert!(written.contains("\"verdict\":\"errors\""));
    assert!(written.contains("\"code\":\"LA012\""));

    // The stdout text report and the machine report coexist.
    assert!(String::from_utf8_lossy(&output.stdout).contains("error[LA012]"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_check_gates_on_semantic_errors() {
    let dir = std::env::temp_dir().join(format!("lagalyzer-cli-check-an-{}", std::process::id()));
    let (clean, damaged) = clean_and_damaged(&dir);

    let out = run_ok(&["analyze", clean.to_str().unwrap(), "--check"]);
    assert!(
        out.contains("semantic check    0 error(s), 0 warning(s), 0 note(s)"),
        "missing check line: {out}"
    );

    // Semantic errors refuse analysis even under --salvage: the checker
    // runs first and wins.
    for extra in [&[][..], &["--salvage"][..]] {
        let mut args = vec!["analyze", damaged.to_str().unwrap(), "--check"];
        args.extend_from_slice(extra);
        let output = lagalyzer().args(&args).output().unwrap();
        assert_eq!(output.status.code(), Some(2), "errors must refuse analysis");
        let err = String::from_utf8_lossy(&output.stderr).to_string();
        assert!(err.contains("refusing analysis"), "stderr: {err}");
        assert!(err.contains("error[LA012]"), "stderr: {err}");
        assert!(
            String::from_utf8_lossy(&output.stdout).is_empty(),
            "no analysis output on refusal"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_documents_check() {
    let out = run_ok(&["help"]);
    assert!(out.contains("check FILE"));
    assert!(out.contains("--fix-report"));
    assert!(out.contains("analyze --check"));
}
