//! Validates the hazard rule family against scripted scenarios with a
//! *known injected hazard*: the ABBA inversion must surface as `LA020`
//! with both lock identities and both culprit threads, the
//! held-lock-over-IO episodes as `LA021`, and the consistent-order
//! control must stay hazard-free. A precision/recall gate over the
//! whole injected corpus (like the outlier analyzer's) keeps the rules
//! honest in both directions.

use lagalyzer_check::hazards::{HazardConfig, HazardReport};
use lagalyzer_check::{CheckSubject, Diagnostic, RuleSet};
use lagalyzer_sim::scenarios::{abba_inversion, hazard_control, hazard_truths, held_lock_io};

fn analyze(trace: &lagalyzer_model::SessionTrace) -> HazardReport {
    HazardReport::analyze(trace, None, 1, &HazardConfig::default())
}

fn hazard_findings(report: &HazardReport) -> Vec<&Diagnostic> {
    report.findings.iter().collect()
}

#[test]
fn abba_inversion_reported_with_identities_and_culprits() {
    let truth = abba_inversion();
    let report = analyze(&truth.trace);
    let la020: Vec<_> = report
        .findings
        .iter()
        .filter(|d| d.code == "LA020")
        .collect();
    assert_eq!(la020.len(), 1, "exactly one inversion cycle: {report:?}");
    for lock in &truth.locks {
        assert!(
            la020[0].message.contains(lock),
            "message names lock {lock}: {}",
            la020[0].message
        );
    }
    let notes: String = la020[0]
        .related
        .iter()
        .map(|r| r.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for culprit in &truth.culprits {
        assert!(
            notes.contains(culprit),
            "edge notes name culprit {culprit}: {notes}"
        );
    }
    // Nothing else fires on this scenario.
    assert!(report.findings.iter().all(|d| d.code == "LA020"));

    // Through the ordinary check engine the inversion is an error: the
    // 0/1/2/3 contract reports exit 2.
    let check = RuleSet::standard().run(&CheckSubject::of_trace(&truth.trace));
    assert!(check.diagnostics().iter().any(|d| d.code == "LA020"));
    assert_eq!(check.exit_code(), 2);
}

#[test]
fn held_lock_over_io_reported_on_injected_episodes() {
    let truth = held_lock_io();
    let report = analyze(&truth.trace);
    let flagged: Vec<_> = report
        .findings
        .iter()
        .filter(|d| d.code == "LA021")
        .filter_map(|d| d.episode_id)
        .collect();
    assert_eq!(flagged, truth.injected, "LA021 flags exactly the injected");
    let first = report
        .findings
        .iter()
        .find(|d| d.code == "LA021")
        .expect("LA021 present");
    assert!(first.message.contains("com.app.sync.OrderA.enter"));
    assert!(first.message.contains("t9"));
    assert!(first.message.contains("java.io.RandomAccessFile.readBytes"));
    assert!(report.findings.iter().all(|d| d.code == "LA021"));

    let check = RuleSet::standard().run(&CheckSubject::of_trace(&truth.trace));
    assert!(check.diagnostics().iter().any(|d| d.code == "LA021"));
    assert_eq!(check.exit_code(), 1, "warnings exit 1 under check");
}

#[test]
fn control_scenario_stays_hazard_free() {
    let truth = hazard_control();
    let report = analyze(&truth.trace);
    assert_eq!(
        report.verdict(),
        "clean",
        "consistent-order contention is not a hazard: {:?}",
        report.findings
    );
    assert!(report.findings.is_empty());
    // The graph still has real structure — the rules are discriminating,
    // not blind.
    assert!(report.waits > 0, "control scenario is genuinely contended");
    assert!(report.held_edges > 0);
}

/// Precision/recall over the injected corpus. A hazard unit is one
/// injected inversion cycle (ABBA) or one injected held-over-IO
/// episode; any finding not attributable to an injection — including
/// anything on the control — counts against precision.
#[test]
fn precision_and_recall_gate() {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fnd = 0usize;
    for truth in hazard_truths() {
        let report = analyze(&truth.trace);
        match truth.expected_code {
            Some("LA020") => {
                let cycles = report.findings.iter().filter(|d| d.code == "LA020").count();
                if cycles >= 1 {
                    tp += 1;
                    fp += cycles - 1;
                } else {
                    fnd += 1;
                }
                fp += report.findings.iter().filter(|d| d.code != "LA020").count();
            }
            Some(code) => {
                for id in &truth.injected {
                    if report
                        .findings
                        .iter()
                        .any(|d| d.code == code && d.episode_id == Some(*id))
                    {
                        tp += 1;
                    } else {
                        fnd += 1;
                    }
                }
                fp += report
                    .findings
                    .iter()
                    .filter(|d| {
                        d.code != code
                            || !d.episode_id.is_some_and(|id| truth.injected.contains(&id))
                    })
                    .count();
            }
            None => fp += hazard_findings(&report).len(),
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fnd).max(1) as f64;
    assert!(
        precision >= 0.9,
        "precision {precision} (tp {tp}, fp {fp}) below the 0.9 gate"
    );
    assert!(
        recall >= 0.9,
        "recall {recall} (tp {tp}, fn {fnd}) below the 0.9 gate"
    );
    assert!(tp > 0, "the gate actually saw injected hazards");
}

/// The report must be byte-identical for any worker count, over every
/// scenario, in both output formats.
#[test]
fn reports_are_byte_identical_across_jobs() {
    let config = HazardConfig::default();
    for truth in hazard_truths() {
        let serial = HazardReport::analyze(&truth.trace, None, 1, &config);
        for jobs in [2, 5] {
            let sharded = HazardReport::analyze(&truth.trace, None, jobs, &config);
            assert_eq!(
                sharded.render_text(truth.title),
                serial.render_text(truth.title),
                "{}: text drifted at jobs={jobs}",
                truth.title
            );
            assert_eq!(
                sharded.render_json(truth.title),
                serial.render_json(truth.title),
                "{}: json drifted at jobs={jobs}",
                truth.title
            );
        }
    }
}

/// Round-trip through the binary codec: spans come from the extent
/// index, and findings survive serialization.
#[test]
fn binary_round_trip_keeps_findings_and_adds_spans() {
    let truth = abba_inversion();
    let mut bytes = Vec::new();
    lagalyzer_trace::binary::write(&truth.trace, &mut bytes).unwrap();
    let indexed = lagalyzer_trace::IndexedTrace::open(bytes).unwrap();
    let trace = indexed.par_decode(1).unwrap();
    let report =
        HazardReport::analyze(&trace, Some(indexed.extents()), 2, &HazardConfig::default());
    let la020 = report
        .findings
        .iter()
        .find(|d| d.code == "LA020")
        .expect("inversion survives the codec");
    assert!(
        la020.byte_span.is_some(),
        "extent index provides byte-span provenance"
    );
    assert_eq!(la020.episode_id, Some(truth.injected[0]));
}
