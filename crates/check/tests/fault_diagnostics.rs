//! Property: every seeded corruption the fault injector produces either
//! renders the trace unrecoverable (surfaced by the CLI as exit 3) or
//! yields at least one diagnostic — damage never passes the checker
//! silently.

use lagalyzer_check::{check_bytes, RuleSet, Severity};
use lagalyzer_model::prelude::*;
use lagalyzer_sim::{apps, runner};
use lagalyzer_trace::binary;
use lagalyzer_trace::faults::FaultInjector;
use proptest::prelude::*;

fn base_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let profiles = apps::standard_suite();
        let trace = runner::simulate_session(&profiles[0], 0, 7);
        let mut bytes = Vec::new();
        binary::write(&trace, &mut bytes).unwrap();
        bytes
    })
}

proptest! {
    #[test]
    fn seeded_faults_always_surface(seed in any::<u64>()) {
        let bytes = base_bytes();
        let mut injector = FaultInjector::new(seed);
        let (damaged, fault) = injector.inject(bytes);
        // A handful of faults are no-ops (e.g. truncation at full
        // length, a bit flip that lands where a flip already undid it
        // is impossible here, but truncate-at-len is real): an
        // unchanged input must stay clean, everything else must
        // surface.
        if damaged == bytes {
            return Ok(());
        }
        match check_bytes(&damaged, &mut RuleSet::standard()) {
            Err(_) => {} // unrecoverable: the CLI exits 3
            Ok(report) => prop_assert!(
                !report.is_clean(),
                "fault {fault:?} (seed {seed}) produced no diagnostics"
            ),
        }
    }
}

#[test]
fn bitflip_in_payload_yields_error_with_span_inside_file() {
    let bytes = base_bytes();
    let mut damaged = bytes.to_vec();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x10;
    let report = check_bytes(&damaged, &mut RuleSet::standard()).unwrap();
    let error = report
        .diagnostics()
        .iter()
        .find(|d| d.severity == Severity::Error)
        .expect("a flipped payload bit must produce an error diagnostic");
    let span = error.byte_span.expect("error must carry a byte span");
    assert!(span.start < span.end && span.end <= damaged.len() as u64);
}

#[test]
fn sub_floor_episode_written_as_full_record_is_diagnosed() {
    // Forge a tracer bug: a 1 ms episode recorded in full although the
    // metadata claims the 3 ms filter was active.
    let meta = SessionMeta {
        application: "Forged".into(),
        session: SessionId::from_raw(0),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(1),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
    let mut t = IntervalTreeBuilder::new();
    t.enter(IntervalKind::Dispatch, None, TimeNs::ZERO).unwrap();
    t.exit(TimeNs::from_millis(1)).unwrap();
    b.push_episode(
        EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut bytes = Vec::new();
    binary::write(&b.finish(), &mut bytes).unwrap();

    let report = check_bytes(&bytes, &mut RuleSet::standard()).unwrap();
    let hit = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "LA007")
        .expect("sub-floor episode must be diagnosed");
    // The span comes from the extent footer and points at the episode's
    // records inside the file.
    let span = hit.byte_span.expect("indexed trace gives episode spans");
    assert!(span.end <= bytes.len() as u64);
    assert_eq!(report.exit_code(), 1); // warning
}
