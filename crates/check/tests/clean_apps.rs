//! Acceptance: clean simulator-generated traces produce zero diagnostics.
//!
//! Every rule encodes an invariant the tracer (here: the simulator)
//! guarantees, so a false positive on any of the 14 Table II application
//! profiles is a rule bug, not an application quirk. Checked three ways:
//! the in-memory trace, the binary round-trip (exercising extents,
//! footer health, and the salvage report), and the text round-trip.

use lagalyzer_check::{check_bytes, check_trace, RuleSet};
use lagalyzer_sim::{apps, runner};
use lagalyzer_trace::{binary, text};

#[test]
fn all_table2_apps_are_clean() {
    for profile in apps::standard_suite() {
        let trace = runner::simulate_session(&profile, 0, 42);

        let in_memory = check_trace(&trace, &mut RuleSet::standard());
        assert!(
            in_memory.is_clean(),
            "{}: in-memory diagnostics: {}",
            profile.name,
            in_memory.render_text(&profile.name)
        );

        let mut bytes = Vec::new();
        binary::write(&trace, &mut bytes).unwrap();
        let report = check_bytes(&bytes, &mut RuleSet::standard()).unwrap();
        assert!(
            report.is_clean(),
            "{}: binary diagnostics: {}",
            profile.name,
            report.render_text(&profile.name)
        );
        assert_eq!(report.exit_code(), 0);
    }
}

#[test]
fn text_codec_round_trip_is_clean() {
    let profiles = apps::standard_suite();
    let trace = runner::simulate_session(&profiles[0], 0, 42);
    let mut bytes = Vec::new();
    text::write(&trace, &mut bytes).unwrap();
    let report = check_bytes(&bytes, &mut RuleSet::standard()).unwrap();
    assert!(report.is_clean(), "{}", report.render_text("text"));
}

#[test]
fn json_report_is_stable_across_runs() {
    let profiles = apps::standard_suite();
    let trace = runner::simulate_session(&profiles[1], 0, 42);
    let mut bytes = Vec::new();
    binary::write(&trace, &mut bytes).unwrap();
    let a = check_bytes(&bytes, &mut RuleSet::standard())
        .unwrap()
        .render_json("app.lgz");
    let b = check_bytes(&bytes, &mut RuleSet::standard())
        .unwrap()
        .render_json("app.lgz");
    assert_eq!(a, b);
}
