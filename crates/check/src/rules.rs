//! The shipped rules, `LA001`…`LA014`.
//!
//! Every rule checks one invariant the analyses otherwise assume, each
//! grounded in the paper or in the trace format:
//!
//! | code  | name                    | default  | invariant |
//! |-------|-------------------------|----------|-----------|
//! | LA001 | improper-nesting        | error    | intervals of a thread are properly nested (paper §II-A) |
//! | LA002 | overlapping-siblings    | error    | sibling intervals nest or do not overlap at all (§II-A) |
//! | LA003 | interval-out-of-bounds  | error    | every interval lies inside its episode's dispatch window (§II) |
//! | LA004 | non-monotonic-time      | error    | event timestamps never run backwards |
//! | LA005 | sample-during-gc        | warning  | sampling is suppressed during stop-the-world GC (§IV-B) |
//! | LA006 | dangling-symbol         | error    | every `SymbolId` resolves in the dense symbol table |
//! | LA007 | sub-floor-episode       | warning  | episodes under the 3 ms tracer floor are counted, not recorded (§IV-A) |
//! | LA008 | missing-dispatch-root   | error    | every episode tree is rooted at a dispatch interval (§II) |
//! | LA009 | extent-mismatch         | warning  | the extent footer agrees with the decoded payloads |
//! | LA010 | duplicate-episode-id    | error    | episode ids are unique within a session |
//! | LA011 | salvage-skip            | warning  | explains every region salvage decoding skipped |
//! | LA012 | checksum-mismatch       | error    | the FNV-1a trailer checksum verifies |
//! | LA013 | index-degraded          | note     | the episode index came from the footer, not a fallback scan |
//! | LA014 | stale-rollup            | note     | the persisted rollup section matches the episode payload it summarizes |
//! | LA020 | lock-order-inversion    | error    | no held-while-acquiring cycle in the session lock graph (hazards) |
//! | LA021 | lock-held-across-io     | warning  | no contended lock is held while its holder runs blocking IO (hazards) |
//! | LA022 | lock-held-across-pause  | warning  | no contended lock is held across Thread.sleep or a GC pause (hazards) |
//! | LA023 | lock-starvation         | warning  | no waiter starves on one lock while holders churn (hazards) |
//! | LA024 | self-wait               | warning  | no thread blocks entering a lock its own stack already holds (hazards) |
//! | LA025 | corpus-lock-inversion   | error    | no lock-order cycle closes only across corpus sessions (hazards) |
//!
//! `LA020`–`LA025` are the concurrency-hazard family over the
//! session-wide lock graph; see [`crate::hazards`].

use std::collections::HashSet;

use lagalyzer_model::{Interval, IntervalKind, MethodRef, SymbolTable, TimeNs};
use lagalyzer_trace::{IndexHealth, RollupHealth, SkipAt};

use crate::diag::{ByteSpan, Severity};
use crate::engine::{CheckSubject, EpisodeCtx, Finding, Rule, Sink};

/// All shipped rules, in code order.
pub fn standard_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ImproperNesting),
        Box::new(OverlappingSiblings),
        Box::new(IntervalOutOfBounds),
        Box::new(NonMonotonicTime),
        Box::new(SampleDuringGc),
        Box::new(DanglingSymbol),
        Box::new(SubFloorEpisode),
        Box::new(MissingDispatchRoot),
        Box::new(ExtentMismatch),
        Box::new(DuplicateEpisodeId::default()),
        Box::new(SalvageSkipRule),
        Box::new(ChecksumMismatch),
        Box::new(IndexDegraded),
        Box::new(StaleRollup),
        Box::new(crate::hazards::LockOrderInversion::default()),
        Box::new(crate::hazards::LockHeldAcrossIo::default()),
        Box::new(crate::hazards::LockHeldAcrossPause::default()),
        Box::new(crate::hazards::LockStarvation::default()),
        Box::new(crate::hazards::SelfWait::default()),
        Box::new(crate::hazards::CorpusLockInversion),
    ]
}

/// Renders a time instant as milliseconds with microsecond precision —
/// deterministic (pure integer math) and in the unit the paper uses.
fn fmt_time(t: TimeNs) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

fn fmt_window(i: &Interval) -> String {
    format!("[{}..{}]", fmt_time(i.start), fmt_time(i.end))
}

/// LA001: a child interval must lie within its parent.
struct ImproperNesting;

impl Rule for ImproperNesting {
    fn code(&self) -> &'static str {
        "LA001"
    }
    fn name(&self) -> &'static str {
        "improper-nesting"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "child interval escapes its parent (intervals must be properly nested)"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        let tree = ctx.episode.tree();
        for node in tree.nodes() {
            let Some(parent) = node.parent else { continue };
            let parent = tree.interval(parent);
            if !parent.encloses(&node.interval) {
                sink.emit(
                    Finding::new(format!(
                        "{} interval {} escapes its parent {} interval {}",
                        node.interval.kind,
                        fmt_window(&node.interval),
                        parent.kind,
                        fmt_window(parent)
                    ))
                    .episode(ctx.episode.id())
                    .span(ctx.byte_span()),
                );
            }
        }
    }
}

/// LA002: siblings either nest or are disjoint — they never overlap.
struct OverlappingSiblings;

impl Rule for OverlappingSiblings {
    fn code(&self) -> &'static str {
        "LA002"
    }
    fn name(&self) -> &'static str {
        "overlapping-siblings"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "sibling intervals overlap (method calls on one thread cannot interleave)"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        let tree = ctx.episode.tree();
        for (id, _) in tree.iter() {
            let children = tree.children(id);
            for (i, &a) in children.iter().enumerate() {
                for &b in &children[i + 1..] {
                    let (a, b) = (tree.interval(a), tree.interval(b));
                    if a.overlaps(b) {
                        sink.emit(
                            Finding::new(format!(
                                "sibling intervals overlap: {} {} and {} {}",
                                a.kind,
                                fmt_window(a),
                                b.kind,
                                fmt_window(b)
                            ))
                            .episode(ctx.episode.id())
                            .span(ctx.byte_span()),
                        );
                    }
                }
            }
        }
    }
}

/// LA003: no interval may extend past the episode's dispatch window.
struct IntervalOutOfBounds;

impl Rule for IntervalOutOfBounds {
    fn code(&self) -> &'static str {
        "LA003"
    }
    fn name(&self) -> &'static str {
        "interval-out-of-bounds"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "interval extends outside the episode's dispatch window"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        let tree = ctx.episode.tree();
        let root = tree.root_interval();
        for node in tree.nodes().iter().skip(1) {
            if !root.encloses(&node.interval) {
                sink.emit(
                    Finding::new(format!(
                        "{} interval {} extends outside the episode window {}",
                        node.interval.kind,
                        fmt_window(&node.interval),
                        fmt_window(root)
                    ))
                    .episode(ctx.episode.id())
                    .span(ctx.byte_span()),
                );
            }
        }
    }
}

/// LA004: timestamps are monotone — intervals do not end before they
/// start, preorder (enter-order) start times never regress, and samples
/// are in time order.
struct NonMonotonicTime;

impl Rule for NonMonotonicTime {
    fn code(&self) -> &'static str {
        "LA004"
    }
    fn name(&self) -> &'static str {
        "non-monotonic-time"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "timestamps run backwards (inverted interval, preorder regress, unsorted samples)"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        let tree = ctx.episode.tree();
        let nodes = tree.nodes();
        for node in nodes {
            if node.interval.end < node.interval.start {
                sink.emit(
                    Finding::new(format!(
                        "{} interval ends at {} before it starts at {}",
                        node.interval.kind,
                        fmt_time(node.interval.end),
                        fmt_time(node.interval.start)
                    ))
                    .episode(ctx.episode.id())
                    .span(ctx.byte_span()),
                );
            }
        }
        for pair in nodes.windows(2) {
            if pair[1].interval.start < pair[0].interval.start {
                sink.emit(
                    Finding::new(format!(
                        "enter-order timestamps regress: {} interval at {} follows {} interval at {}",
                        pair[1].interval.kind,
                        fmt_time(pair[1].interval.start),
                        pair[0].interval.kind,
                        fmt_time(pair[0].interval.start)
                    ))
                    .episode(ctx.episode.id())
                    .span(ctx.byte_span()),
                );
            }
        }
        for pair in ctx.episode.samples().windows(2) {
            if pair[1].time < pair[0].time {
                sink.emit(
                    Finding::new(format!(
                        "samples out of time order: {} follows {}",
                        fmt_time(pair[1].time),
                        fmt_time(pair[0].time)
                    ))
                    .episode(ctx.episode.id())
                    .span(ctx.byte_span()),
                );
            }
        }
    }
}

/// LA005: the sampler pauses during stop-the-world GC, so no sample may
/// fall inside a GC interval or a session-level GC event.
struct SampleDuringGc;

impl Rule for SampleDuringGc {
    fn code(&self) -> &'static str {
        "LA005"
    }
    fn name(&self) -> &'static str {
        "sample-during-gc"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "sample taken inside a stop-the-world GC pause (sampling should be suppressed)"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        let tree = ctx.episode.tree();
        let gc_windows: Vec<&Interval> = tree
            .nodes()
            .iter()
            .map(|n| &n.interval)
            .filter(|i| i.kind == IntervalKind::Gc)
            .collect();
        for sample in ctx.episode.samples() {
            let in_tree = gc_windows.iter().find(|gc| gc.contains(sample.time));
            let in_session = ctx
                .trace
                .gc_events()
                .iter()
                .find(|gc| gc.start <= sample.time && sample.time < gc.end);
            let window = in_tree
                .map(|gc| (gc.start, gc.end))
                .or(in_session.map(|gc| (gc.start, gc.end)));
            if let Some((start, end)) = window {
                sink.emit(
                    Finding::new(format!(
                        "sample at {} falls inside a stop-the-world GC pause [{}..{}]",
                        fmt_time(sample.time),
                        fmt_time(start),
                        fmt_time(end)
                    ))
                    .episode(ctx.episode.id())
                    .span(ctx.byte_span()),
                );
            }
        }
    }
}

/// LA006: every symbol reference resolves in the dense symbol table.
struct DanglingSymbol;

impl DanglingSymbol {
    fn dangling(symbols: &SymbolTable, m: MethodRef) -> Option<u32> {
        if m.class.index() >= symbols.len() {
            Some(m.class.as_raw())
        } else if m.method.index() >= symbols.len() {
            Some(m.method.as_raw())
        } else {
            None
        }
    }
}

impl Rule for DanglingSymbol {
    fn code(&self) -> &'static str {
        "LA006"
    }
    fn name(&self) -> &'static str {
        "dangling-symbol"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "SymbolId reference does not resolve in the symbol table"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        let symbols = ctx.trace.symbols();
        for node in ctx.episode.tree().nodes() {
            let Some(m) = node.interval.symbol else {
                continue;
            };
            if let Some(raw) = Self::dangling(symbols, m) {
                sink.emit(
                    Finding::new(format!(
                        "{} interval {} references symbol id {} outside the {}-entry symbol table",
                        node.interval.kind,
                        fmt_window(&node.interval),
                        raw,
                        symbols.len()
                    ))
                    .episode(ctx.episode.id())
                    .span(ctx.byte_span()),
                );
            }
        }
        for sample in ctx.episode.samples() {
            for thread in &sample.threads {
                for frame in &thread.stack {
                    if let Some(raw) = Self::dangling(symbols, frame.method) {
                        sink.emit(
                            Finding::new(format!(
                                "stack frame in sample at {} references symbol id {} outside the {}-entry symbol table",
                                fmt_time(sample.time),
                                raw,
                                symbols.len()
                            ))
                            .episode(ctx.episode.id())
                            .span(ctx.byte_span()),
                        );
                    }
                }
            }
        }
    }
}

/// LA007: the tracer drops episodes under the filter floor (3 ms by
/// default) and only counts them; one appearing as a full record means
/// the tracer-side filter misbehaved.
struct SubFloorEpisode;

impl Rule for SubFloorEpisode {
    fn code(&self) -> &'static str {
        "LA007"
    }
    fn name(&self) -> &'static str {
        "sub-floor-episode"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "episode below the tracer's filter floor recorded in full"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        let floor = ctx.trace.meta().filter_threshold;
        if floor.as_nanos() == 0 {
            return;
        }
        let duration = ctx.episode.duration();
        if duration < floor {
            sink.emit(
                Finding::new(format!(
                    "episode lasted {duration}, below the tracer's {floor} filter floor; it should only appear in the short-episode count"
                ))
                .episode(ctx.episode.id())
                .span(ctx.byte_span()),
            );
        }
    }
}

/// LA008: every episode tree is rooted at a dispatch interval.
struct MissingDispatchRoot;

impl Rule for MissingDispatchRoot {
    fn code(&self) -> &'static str {
        "LA008"
    }
    fn name(&self) -> &'static str {
        "missing-dispatch-root"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "episode tree not rooted at a dispatch interval"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        let root = ctx.episode.tree().root_interval();
        if root.kind != IntervalKind::Dispatch {
            sink.emit(
                Finding::new(format!(
                    "episode is rooted at a {} interval; every episode starts with a dispatch",
                    root.kind
                ))
                .episode(ctx.episode.id())
                .span(ctx.byte_span()),
            );
        }
    }
}

/// LA009: the extent footer's per-episode summary must agree with what
/// the payload actually decodes to.
struct ExtentMismatch;

impl Rule for ExtentMismatch {
    fn code(&self) -> &'static str {
        "LA009"
    }
    fn name(&self) -> &'static str {
        "extent-mismatch"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "extent-footer entry disagrees with the decoded episode"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        let Some(extent) = ctx.extent else { return };
        let sat = |n: usize| u32::try_from(n).unwrap_or(u32::MAX);
        let mut disagreements = Vec::new();
        if extent.id != ctx.episode.id() {
            disagreements.push(format!("id {} vs decoded {}", extent.id, ctx.episode.id()));
        }
        if extent.start != ctx.episode.start() || extent.end != ctx.episode.end() {
            disagreements.push(format!(
                "window [{}..{}] vs decoded [{}..{}]",
                fmt_time(extent.start),
                fmt_time(extent.end),
                fmt_time(ctx.episode.start()),
                fmt_time(ctx.episode.end())
            ));
        }
        if extent.intervals != sat(ctx.episode.tree().len()) {
            disagreements.push(format!(
                "{} intervals vs decoded {}",
                extent.intervals,
                ctx.episode.tree().len()
            ));
        }
        if extent.samples != sat(ctx.episode.samples().len()) {
            disagreements.push(format!(
                "{} samples vs decoded {}",
                extent.samples,
                ctx.episode.samples().len()
            ));
        }
        if !disagreements.is_empty() {
            sink.emit(
                Finding::new(format!(
                    "extent index disagrees with the decoded episode: {}",
                    disagreements.join("; ")
                ))
                .episode(ctx.episode.id())
                .span(ctx.byte_span()),
            );
        }
    }

    fn finish(&mut self, subject: &CheckSubject<'_>, sink: &mut Sink<'_>) {
        if let Some(extents) = subject.extents {
            let decoded = subject.trace.episodes().len();
            if extents.len() != decoded {
                sink.emit(Finding::new(format!(
                    "extent index lists {} episode(s) but {} decoded",
                    extents.len(),
                    decoded
                )));
            }
        }
    }
}

/// LA010: episode ids are unique within a session.
#[derive(Default)]
struct DuplicateEpisodeId {
    seen: HashSet<u32>,
}

impl Rule for DuplicateEpisodeId {
    fn code(&self) -> &'static str {
        "LA010"
    }
    fn name(&self) -> &'static str {
        "duplicate-episode-id"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "episode id already used by an earlier episode"
    }

    fn begin(&mut self, _subject: &CheckSubject<'_>, _sink: &mut Sink<'_>) {
        self.seen.clear();
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        if !self.seen.insert(ctx.episode.id().as_raw()) {
            sink.emit(
                Finding::new(format!(
                    "episode id {} already used by an earlier episode (records duplicated?)",
                    ctx.episode.id()
                ))
                .episode(ctx.episode.id())
                .span(ctx.byte_span()),
            );
        }
    }
}

/// LA011: surfaces every region the salvage decoder skipped, with the
/// byte offset where resynchronization happened — this is the rule that
/// explains *why* records are missing from a salvaged trace.
struct SalvageSkipRule;

impl Rule for SalvageSkipRule {
    fn code(&self) -> &'static str {
        "LA011"
    }
    fn name(&self) -> &'static str {
        "salvage-skip"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "salvage decoding skipped damaged input here"
    }

    fn begin(&mut self, subject: &CheckSubject<'_>, sink: &mut Sink<'_>) {
        let Some(report) = subject.salvage else {
            return;
        };
        for skip in &report.skips {
            let span = match skip.at {
                SkipAt::Byte(off) => Some(ByteSpan::new(off, off + 1)),
                SkipAt::Line(_) => None,
            };
            let mut finding = Finding::new(format!(
                "decoder skipped input at {}: {}: {}",
                skip.at, skip.context, skip.detail
            ))
            .span(span);
            if skip.episodes_lost > 0 {
                finding = finding.related(
                    format!("{} episode(s) lost to this skip", skip.episodes_lost),
                    None,
                );
            }
            sink.emit(finding);
        }
    }
}

/// LA012: the FNV-1a trailer checksum must verify.
struct ChecksumMismatch;

impl Rule for ChecksumMismatch {
    fn code(&self) -> &'static str {
        "LA012"
    }
    fn name(&self) -> &'static str {
        "checksum-mismatch"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "trailer checksum does not verify: bytes differ from what the tracer wrote"
    }

    fn begin(&mut self, subject: &CheckSubject<'_>, sink: &mut Sink<'_>) {
        let Some(report) = subject.salvage else {
            return;
        };
        if report.checksum_ok == Some(false) {
            let span = subject
                .file_len
                .filter(|&len| len >= 8)
                .map(|len| ByteSpan::new(len - 8, len));
            sink.emit(
                Finding::new(
                    "trailer checksum mismatch: the bytes differ from what the tracer wrote \
                     (damage may extend beyond the regions reported by other diagnostics)",
                )
                .span(span),
            );
        }
    }
}

/// LA013: notes when the episode index had to be reconstructed instead
/// of read from a valid extent footer.
struct IndexDegraded;

impl Rule for IndexDegraded {
    fn code(&self) -> &'static str {
        "LA013"
    }
    fn name(&self) -> &'static str {
        "index-degraded"
    }
    fn default_severity(&self) -> Severity {
        Severity::Note
    }
    fn summary(&self) -> &'static str {
        "episode index reconstructed by scan instead of read from the footer"
    }

    fn begin(&mut self, subject: &CheckSubject<'_>, sink: &mut Sink<'_>) {
        let Some(health) = subject.health else { return };
        let message = match health {
            IndexHealth::FooterValid => return,
            IndexHealth::FooterAbsent => {
                "no extent footer (legacy v1 trace): episode index reconstructed by a record scan"
                    .to_owned()
            }
            IndexHealth::FooterInvalid(reason) => format!(
                "extent footer unusable ({reason}): episode index reconstructed by a record scan"
            ),
            IndexHealth::SalvageScan => {
                "episode index rebuilt by a salvage scan of a damaged trace".to_owned()
            }
        };
        sink.emit(Finding::new(message));
    }
}

/// LA014: notes when a persisted rollup section no longer matches the
/// episode payload it summarizes, so warm analysis silently falls back
/// to the cold decode path.
struct StaleRollup;

impl Rule for StaleRollup {
    fn code(&self) -> &'static str {
        "LA014"
    }
    fn name(&self) -> &'static str {
        "stale-rollup"
    }
    fn default_severity(&self) -> Severity {
        Severity::Note
    }
    fn summary(&self) -> &'static str {
        "persisted rollup section matches the episode payload it summarizes"
    }

    fn begin(&mut self, subject: &CheckSubject<'_>, sink: &mut Sink<'_>) {
        let Some(RollupHealth::Stale {
            reason,
            section_bytes,
        }) = subject.rollup
        else {
            return;
        };
        sink.emit(Finding::new(format!(
            "rollup section is stale ({reason}): {section_bytes} byte(s) ignored; \
             warm analysis falls back to a cold episode decode"
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CheckSubject, RuleSet};
    use lagalyzer_model::prelude::*;
    use lagalyzer_model::tree::IntervalNode;
    use lagalyzer_trace::{EpisodeExtent, SalvageReport, SalvageSkip};

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn meta() -> SessionMeta {
        SessionMeta {
            application: "Check".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(10),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        }
    }

    /// A raw interval; struct literal so tests can express inverted ones.
    fn iv(kind: IntervalKind, start: TimeNs, end: TimeNs) -> Interval {
        Interval {
            kind,
            symbol: None,
            start,
            end,
        }
    }

    fn node(interval: Interval, parent: Option<u32>, depth: u32) -> IntervalNode {
        IntervalNode {
            interval,
            parent: parent.map(NodeId::from_raw),
            depth,
        }
    }

    fn episode_from_nodes(id: u32, nodes: Vec<IntervalNode>) -> Episode {
        Episode::from_parts_unchecked(
            EpisodeId::from_raw(id),
            ThreadId::from_raw(0),
            IntervalTree::from_nodes_unchecked(nodes),
            Vec::new(),
        )
    }

    fn trace_of(episodes: Vec<Episode>) -> SessionTrace {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        for e in episodes {
            b.push_episode(e).expect("episodes pushed in start order");
        }
        b.finish()
    }

    fn codes(trace: &SessionTrace) -> Vec<&'static str> {
        RuleSet::standard()
            .run(&CheckSubject::of_trace(trace))
            .diagnostics()
            .iter()
            .map(|d| d.code)
            .collect()
    }

    /// A fully valid builder-checked episode used as the negative case.
    fn valid_episode(id: u32, start_ms: u64) -> Episode {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(start_ms)).unwrap();
        t.leaf(
            IntervalKind::Listener,
            None,
            ms(start_ms + 2),
            ms(start_ms + 30),
        )
        .unwrap();
        t.leaf(
            IntervalKind::Paint,
            None,
            ms(start_ms + 30),
            ms(start_ms + 60),
        )
        .unwrap();
        t.exit(ms(start_ms + 80)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn valid_trace_is_clean() {
        let trace = trace_of(vec![valid_episode(0, 0), valid_episode(1, 100)]);
        assert_eq!(codes(&trace), Vec::<&str>::new());
    }

    #[test]
    fn la001_child_escaping_parent_fires() {
        let nodes = vec![
            node(iv(IntervalKind::Dispatch, ms(0), ms(100)), None, 0),
            node(iv(IntervalKind::Listener, ms(50), ms(150)), Some(0), 1),
        ];
        let trace = trace_of(vec![episode_from_nodes(0, nodes)]);
        assert!(codes(&trace).contains(&"LA001"));
    }

    #[test]
    fn la001_proper_nesting_is_silent() {
        let trace = trace_of(vec![valid_episode(0, 0)]);
        assert!(!codes(&trace).contains(&"LA001"));
    }

    #[test]
    fn la002_overlapping_siblings_fire() {
        let nodes = vec![
            node(iv(IntervalKind::Dispatch, ms(0), ms(100)), None, 0),
            node(iv(IntervalKind::Listener, ms(10), ms(60)), Some(0), 1),
            node(iv(IntervalKind::Paint, ms(50), ms(90)), Some(0), 1),
        ];
        let trace = trace_of(vec![episode_from_nodes(0, nodes)]);
        let codes = codes(&trace);
        assert!(codes.contains(&"LA002"));
        // Both children are properly enclosed, so nesting is not at fault.
        assert!(!codes.contains(&"LA001"));
    }

    #[test]
    fn la002_touching_siblings_are_silent() {
        // valid_episode has listener [2,30] touching paint [30,60].
        let trace = trace_of(vec![valid_episode(0, 0)]);
        assert!(!codes(&trace).contains(&"LA002"));
    }

    #[test]
    fn la003_interval_outside_episode_window_fires() {
        let nodes = vec![
            node(iv(IntervalKind::Dispatch, ms(0), ms(100)), None, 0),
            node(iv(IntervalKind::Native, ms(20), ms(110)), Some(0), 1),
        ];
        let trace = trace_of(vec![episode_from_nodes(0, nodes)]);
        assert!(codes(&trace).contains(&"LA003"));
    }

    #[test]
    fn la003_enclosed_intervals_are_silent() {
        let trace = trace_of(vec![valid_episode(0, 0)]);
        assert!(!codes(&trace).contains(&"LA003"));
    }

    #[test]
    fn la004_preorder_regress_fires() {
        let nodes = vec![
            node(iv(IntervalKind::Dispatch, ms(0), ms(100)), None, 0),
            node(iv(IntervalKind::Listener, ms(50), ms(60)), Some(0), 1),
            node(iv(IntervalKind::Paint, ms(10), ms(20)), Some(0), 1),
        ];
        let trace = trace_of(vec![episode_from_nodes(0, nodes)]);
        assert!(codes(&trace).contains(&"LA004"));
    }

    #[test]
    fn la004_inverted_interval_fires() {
        let nodes = vec![
            node(iv(IntervalKind::Dispatch, ms(0), ms(100)), None, 0),
            node(iv(IntervalKind::Listener, ms(50), ms(40)), Some(0), 1),
        ];
        let trace = trace_of(vec![episode_from_nodes(0, nodes)]);
        assert!(codes(&trace).contains(&"LA004"));
    }

    #[test]
    fn la004_monotone_times_are_silent() {
        let trace = trace_of(vec![valid_episode(0, 0)]);
        assert!(!codes(&trace).contains(&"LA004"));
    }

    fn snap(at: TimeNs) -> SampleSnapshot {
        SampleSnapshot::new(
            at,
            vec![ThreadSample::new(
                ThreadId::from_raw(0),
                ThreadState::Runnable,
                vec![],
            )],
        )
    }

    fn episode_with_gc_and_sample(sample_ms: u64) -> Episode {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.leaf(IntervalKind::Gc, None, ms(40), ms(60)).unwrap();
        t.exit(ms(100)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .sample(snap(ms(sample_ms)))
            .build()
            .unwrap()
    }

    #[test]
    fn la005_sample_inside_tree_gc_fires() {
        let trace = trace_of(vec![episode_with_gc_and_sample(50)]);
        assert!(codes(&trace).contains(&"LA005"));
    }

    #[test]
    fn la005_sample_inside_session_gc_event_fires() {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        let episode = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree({
                let mut t = IntervalTreeBuilder::new();
                t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
                t.exit(ms(100)).unwrap();
                t.finish().unwrap()
            })
            .sample(snap(ms(50)))
            .build()
            .unwrap();
        b.push_episode(episode).unwrap();
        b.push_gc(GcEvent {
            start: ms(45),
            end: ms(55),
            major: false,
        });
        let trace = b.finish();
        assert!(codes(&trace).contains(&"LA005"));
    }

    #[test]
    fn la005_sample_outside_gc_is_silent() {
        let trace = trace_of(vec![episode_with_gc_and_sample(70)]);
        assert!(!codes(&trace).contains(&"LA005"));
    }

    #[test]
    fn la006_dangling_interval_symbol_fires() {
        let dangling = MethodRef {
            class: SymbolId::from_raw(40),
            method: SymbolId::from_raw(41),
        };
        let nodes = vec![
            node(iv(IntervalKind::Dispatch, ms(0), ms(100)), None, 0),
            node(
                Interval {
                    kind: IntervalKind::Listener,
                    symbol: Some(dangling),
                    start: ms(10),
                    end: ms(20),
                },
                Some(0),
                1,
            ),
        ];
        let trace = trace_of(vec![episode_from_nodes(0, nodes)]);
        assert!(codes(&trace).contains(&"LA006"));
    }

    #[test]
    fn la006_dangling_frame_symbol_fires() {
        let mut symbols = SymbolTable::new();
        let good = symbols.method("app.Main", "run");
        let bad = MethodRef {
            class: good.class,
            method: SymbolId::from_raw(99),
        };
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.exit(ms(100)).unwrap();
        let episode = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .sample(SampleSnapshot::new(
                ms(50),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Runnable,
                    vec![StackFrame::java(bad)],
                )],
            ))
            .build()
            .unwrap();
        let mut b = SessionTraceBuilder::new(meta(), symbols);
        b.push_episode(episode).unwrap();
        let trace = b.finish();
        assert!(codes(&trace).contains(&"LA006"));
    }

    #[test]
    fn la006_resolving_symbols_are_silent() {
        let mut symbols = SymbolTable::new();
        let m = symbols.method("app.Main", "run");
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.leaf(IntervalKind::Listener, Some(m), ms(10), ms(20))
            .unwrap();
        t.exit(ms(100)).unwrap();
        let episode = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .build()
            .unwrap();
        let mut b = SessionTraceBuilder::new(meta(), symbols);
        b.push_episode(episode).unwrap();
        assert!(!codes(&b.finish()).contains(&"LA006"));
    }

    fn bare_episode(id: u32, start_ms: u64, end_ms: u64) -> Episode {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(start_ms)).unwrap();
        t.exit(ms(end_ms)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn la007_sub_floor_episode_fires() {
        // 2 ms < the 3 ms default floor carried in the metadata.
        let trace = trace_of(vec![bare_episode(0, 0, 2)]);
        assert!(codes(&trace).contains(&"LA007"));
    }

    #[test]
    fn la007_at_floor_is_silent() {
        let trace = trace_of(vec![bare_episode(0, 0, 3)]);
        assert!(!codes(&trace).contains(&"LA007"));
    }

    #[test]
    fn la008_non_dispatch_root_fires() {
        let nodes = vec![node(iv(IntervalKind::Listener, ms(0), ms(100)), None, 0)];
        let trace = trace_of(vec![episode_from_nodes(0, nodes)]);
        assert!(codes(&trace).contains(&"LA008"));
    }

    #[test]
    fn la008_dispatch_root_is_silent() {
        let trace = trace_of(vec![valid_episode(0, 0)]);
        assert!(!codes(&trace).contains(&"LA008"));
    }

    fn extent_for(e: &Episode, offset: u64, len: u64) -> EpisodeExtent {
        EpisodeExtent {
            offset,
            len,
            id: e.id(),
            start: e.start(),
            end: e.end(),
            intervals: u32::try_from(e.tree().len()).unwrap(),
            samples: u32::try_from(e.samples().len()).unwrap(),
            skips: 0,
        }
    }

    #[test]
    fn la009_extent_disagreement_fires_with_span() {
        let trace = trace_of(vec![valid_episode(0, 0)]);
        let mut extent = extent_for(&trace.episodes()[0], 16, 64);
        extent.intervals += 2;
        let extents = vec![extent];
        let subject = CheckSubject {
            trace: &trace,
            extents: Some(&extents),
            health: None,
            salvage: None,
            file_len: Some(128),
            rollup: None,
        };
        let report = RuleSet::standard().run(&subject);
        let la009: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "LA009")
            .collect();
        assert_eq!(la009.len(), 1);
        assert_eq!(la009[0].byte_span, Some(ByteSpan::new(16, 80)));
    }

    #[test]
    fn la009_extent_count_mismatch_fires() {
        let trace = trace_of(vec![valid_episode(0, 0)]);
        let e = extent_for(&trace.episodes()[0], 16, 64);
        let extents = vec![e, e];
        let subject = CheckSubject {
            trace: &trace,
            extents: Some(&extents),
            health: None,
            salvage: None,
            file_len: None,
            rollup: None,
        };
        let report = RuleSet::standard().run(&subject);
        assert!(report.diagnostics().iter().any(|d| d.code == "LA009"));
    }

    #[test]
    fn la009_agreeing_extents_are_silent() {
        let trace = trace_of(vec![valid_episode(0, 0)]);
        let extents = vec![extent_for(&trace.episodes()[0], 16, 64)];
        let subject = CheckSubject {
            trace: &trace,
            extents: Some(&extents),
            health: None,
            salvage: None,
            file_len: Some(128),
            rollup: None,
        };
        let report = RuleSet::standard().run(&subject);
        assert!(report.diagnostics().iter().all(|d| d.code != "LA009"));
    }

    #[test]
    fn la010_duplicate_episode_id_fires() {
        let trace = trace_of(vec![bare_episode(7, 0, 50), bare_episode(7, 100, 150)]);
        assert!(codes(&trace).contains(&"LA010"));
    }

    #[test]
    fn la010_unique_ids_are_silent_and_state_resets() {
        let trace = trace_of(vec![bare_episode(0, 0, 50), bare_episode(1, 100, 150)]);
        let mut rules = RuleSet::standard();
        // Two consecutive runs over the same trace must agree (per-run
        // state like the id seen-set resets in `begin`).
        let first = rules.run(&CheckSubject::of_trace(&trace));
        let second = rules.run(&CheckSubject::of_trace(&trace));
        assert_eq!(first, second);
        assert!(first.diagnostics().iter().all(|d| d.code != "LA010"));
    }

    #[test]
    fn la011_salvage_skip_fires_with_byte_span() {
        let trace = trace_of(vec![]);
        let report = SalvageReport {
            skips: vec![SalvageSkip {
                at: SkipAt::Byte(42),
                context: "enter record",
                detail: "bad kind tag".into(),
                episodes_lost: 1,
            }],
            episodes_lost: 1,
            checksum_ok: Some(true),
            ..SalvageReport::default()
        };
        let subject = CheckSubject {
            trace: &trace,
            extents: None,
            health: None,
            salvage: Some(&report),
            file_len: Some(100),
            rollup: None,
        };
        let out = RuleSet::standard().run(&subject);
        let skips: Vec<_> = out
            .diagnostics()
            .iter()
            .filter(|d| d.code == "LA011")
            .collect();
        assert_eq!(skips.len(), 1);
        assert_eq!(skips[0].byte_span, Some(ByteSpan::new(42, 43)));
        assert_eq!(skips[0].related.len(), 1);
    }

    #[test]
    fn la011_clean_report_is_silent() {
        let trace = trace_of(vec![]);
        let report = SalvageReport {
            checksum_ok: Some(true),
            ..SalvageReport::default()
        };
        let subject = CheckSubject {
            trace: &trace,
            extents: None,
            health: None,
            salvage: Some(&report),
            file_len: Some(100),
            rollup: None,
        };
        let out = RuleSet::standard().run(&subject);
        assert!(out.is_clean());
    }

    #[test]
    fn la012_checksum_mismatch_fires_with_trailer_span() {
        let trace = trace_of(vec![]);
        let report = SalvageReport {
            checksum_ok: Some(false),
            ..SalvageReport::default()
        };
        let subject = CheckSubject {
            trace: &trace,
            extents: None,
            health: None,
            salvage: Some(&report),
            file_len: Some(100),
            rollup: None,
        };
        let out = RuleSet::standard().run(&subject);
        let hits: Vec<_> = out
            .diagnostics()
            .iter()
            .filter(|d| d.code == "LA012")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert_eq!(hits[0].byte_span, Some(ByteSpan::new(92, 100)));
    }

    #[test]
    fn la012_verified_checksum_is_silent() {
        let trace = trace_of(vec![]);
        let report = SalvageReport {
            checksum_ok: Some(true),
            ..SalvageReport::default()
        };
        let subject = CheckSubject {
            trace: &trace,
            extents: None,
            health: None,
            salvage: Some(&report),
            file_len: Some(100),
            rollup: None,
        };
        assert!(RuleSet::standard().run(&subject).is_clean());
    }

    #[test]
    fn la013_degraded_index_notes() {
        let trace = trace_of(vec![]);
        for health in [
            IndexHealth::FooterAbsent,
            IndexHealth::FooterInvalid("extent checksum mismatch".into()),
            IndexHealth::SalvageScan,
        ] {
            let subject = CheckSubject {
                trace: &trace,
                extents: None,
                health: Some(&health),
                salvage: None,
                file_len: None,
                rollup: None,
            };
            let out = RuleSet::standard().run(&subject);
            let hits: Vec<_> = out
                .diagnostics()
                .iter()
                .filter(|d| d.code == "LA013")
                .collect();
            assert_eq!(hits.len(), 1, "{health:?}");
            assert_eq!(hits[0].severity, Severity::Note);
        }
    }

    #[test]
    fn la013_valid_footer_is_silent() {
        let trace = trace_of(vec![]);
        let health = IndexHealth::FooterValid;
        let subject = CheckSubject {
            trace: &trace,
            extents: None,
            health: Some(&health),
            salvage: None,
            file_len: None,
            rollup: None,
        };
        assert!(RuleSet::standard().run(&subject).is_clean());
    }

    #[test]
    fn la014_stale_rollup_notes() {
        let trace = trace_of(vec![]);
        let health = RollupHealth::Stale {
            reason: "content checksum mismatch".into(),
            section_bytes: 512,
        };
        let subject = CheckSubject {
            trace: &trace,
            extents: None,
            health: None,
            salvage: None,
            file_len: None,
            rollup: Some(&health),
        };
        let out = RuleSet::standard().run(&subject);
        let hits: Vec<_> = out
            .diagnostics()
            .iter()
            .filter(|d| d.code == "LA014")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Note);
        assert!(hits[0].message.contains("content checksum mismatch"));
        assert!(hits[0].message.contains("512"));
    }

    #[test]
    fn la014_valid_or_absent_rollup_is_silent() {
        let trace = trace_of(vec![]);
        for health in [None, Some(RollupHealth::Absent)] {
            let subject = CheckSubject {
                trace: &trace,
                extents: None,
                health: None,
                salvage: None,
                file_len: None,
                rollup: health.as_ref(),
            };
            assert!(RuleSet::standard().run(&subject).is_clean(), "{health:?}");
        }
        let valid = RollupHealth::Valid { section_bytes: 512 };
        let subject = CheckSubject {
            trace: &trace,
            extents: None,
            health: None,
            salvage: None,
            file_len: None,
            rollup: Some(&valid),
        };
        assert!(RuleSet::standard().run(&subject).is_clean());
    }

    #[test]
    fn la014_fires_through_check_bytes_on_a_mutated_payload() {
        // Serialize with a rollup, then flip one byte inside the episode
        // payload region: the rollup's content checksum no longer matches
        // so the section reads as stale. The trailer checksum breaks too,
        // so decode through the salvage path.
        let trace = trace_of(vec![bare_episode(0, 0, 50)]);
        let rollup = lagalyzer_core::rollup::build(&trace);
        let mut bytes = Vec::new();
        lagalyzer_trace::binary::write_with_rollup(&trace, &mut bytes, rollup).unwrap();

        let clean = crate::check_bytes(&bytes, &mut RuleSet::standard()).unwrap();
        assert!(
            !clean.diagnostics().iter().any(|d| d.code == "LA014"),
            "intact rollup must not trip LA014"
        );

        let indexed = lagalyzer_trace::IndexedTrace::open(bytes.clone()).unwrap();
        let extent = indexed.extents()[0];
        bytes[(extent.offset + extent.len / 2) as usize] ^= 0x01;
        let report = crate::check_bytes(&bytes, &mut RuleSet::standard()).unwrap();
        assert!(
            report.diagnostics().iter().any(|d| d.code == "LA014"),
            "mutated payload under a kept rollup section must trip LA014: {:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn overrides_allow_deny_level() {
        let trace = trace_of(vec![bare_episode(0, 0, 2)]); // fires LA007 warning
        let mut rules = RuleSet::standard();
        rules.allow("LA007").unwrap();
        assert!(rules.run(&CheckSubject::of_trace(&trace)).is_clean());

        let mut rules = RuleSet::standard();
        rules.deny("sub-floor-episode").unwrap();
        let report = rules.run(&CheckSubject::of_trace(&trace));
        assert_eq!(report.errors(), 1);
        assert_eq!(report.exit_code(), 2);

        let mut rules = RuleSet::standard();
        rules.level("LA007", Severity::Note).unwrap();
        let report = rules.run(&CheckSubject::of_trace(&trace));
        assert_eq!(report.notes(), 1);
        assert_eq!(report.exit_code(), 0);

        assert!(RuleSet::standard().allow("LA999").is_err());
    }

    #[test]
    fn doc_table_agrees_with_registered_rules() {
        // Parse the `//! | LA0xx | name | severity | ... |` rows of this
        // file's module doc and assert they match the implementation, so
        // the registry in the doc comment cannot drift.
        let rows: Vec<(String, String, String)> = include_str!("rules.rs")
            .lines()
            .filter_map(|line| {
                let row = line.strip_prefix("//! | LA")?;
                let mut cols = row.split('|').map(str::trim);
                let code = format!("LA{}", cols.next()?);
                Some((code, cols.next()?.to_owned(), cols.next()?.to_owned()))
            })
            .collect();
        let descriptions = RuleSet::standard().descriptions();
        assert_eq!(
            rows.len(),
            descriptions.len(),
            "doc table lists every registered rule exactly once"
        );
        for ((code, name, severity), (dcode, dname, dsev, _)) in
            rows.iter().zip(descriptions.iter())
        {
            assert_eq!(code, dcode, "doc table order matches registration order");
            assert_eq!(name, dname, "{code}: doc-table name drifted");
            assert_eq!(severity, dsev.name(), "{code}: doc-table severity drifted");
        }
    }

    #[test]
    fn standard_rules_have_unique_stable_codes() {
        let rules = RuleSet::standard();
        let descriptions = rules.descriptions();
        assert!(descriptions.len() >= 10, "at least ten shipped rules");
        let mut codes: Vec<_> = descriptions.iter().map(|d| d.0).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), descriptions.len(), "codes must be unique");
        for (code, _, _, _) in &descriptions {
            assert!(code.starts_with("LA") && code.len() == 5, "{code}");
        }
    }
}
