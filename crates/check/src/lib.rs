//! Rule-based semantic checker for decoded traces.
//!
//! LagAlyzer's analyses assume invariants the tracer is supposed to
//! guarantee: intervals of a thread are properly nested per episode
//! (paper §II-A), sampling is suppressed during stop-the-world GC
//! (§IV-B), sub-3 ms episodes are filtered with only a count surviving
//! (§IV-A). Salvage-mode decoding and index reconstruction deliberately
//! admit traces where those assumptions may be violated. This crate
//! turns that one-bit "salvaged" footnote into a compiler-style lint
//! pass: a configurable [`RuleSet`] of [`Rule`]s, each with a stable
//! code (`LA001`…) and default [`Severity`], visits the decoded
//! episodes once and emits [`Diagnostic`]s whose byte spans point back
//! into the raw `.lgz` file (threaded from the episode extent index and
//! from salvage skip offsets).
//!
//! # Example
//!
//! ```
//! use lagalyzer_check::{check_bytes, RuleSet};
//! use lagalyzer_model::prelude::*;
//! use lagalyzer_trace::binary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let meta = SessionMeta {
//!     application: "Demo".into(),
//!     session: SessionId::from_raw(0),
//!     gui_thread: ThreadId::from_raw(0),
//!     end_to_end: DurationNs::from_secs(1),
//!     filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
//! };
//! let trace = SessionTraceBuilder::new(meta, SymbolTable::new()).finish();
//! let mut bytes = Vec::new();
//! binary::write(&trace, &mut bytes)?;
//!
//! let report = check_bytes(&bytes, &mut RuleSet::standard())?;
//! assert!(report.is_clean());
//! assert_eq!(report.exit_code(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod hazards;
pub mod rules;

pub use diag::{ByteSpan, CheckReport, Diagnostic, Related, Severity};
pub use engine::{CheckSubject, EpisodeCtx, Finding, Rule, RuleSet, Sink, UnknownRule};
pub use hazards::{HazardConfig, HazardReport};
pub use rules::standard_rules;

use lagalyzer_model::SessionTrace;
use lagalyzer_trace::{read_bytes_salvage, IndexedTrace, TraceError};

/// Checks an already-decoded trace with no file provenance (no byte
/// spans, no salvage or index context).
pub fn check_trace(trace: &SessionTrace, rules: &mut RuleSet) -> CheckReport {
    rules.run(&CheckSubject::of_trace(trace))
}

/// Checks raw trace bytes, sniffing binary vs text like the readers do.
///
/// Binary traces go through the indexed salvage path so diagnostics get
/// episode byte spans from the extent table, plus salvage-skip and
/// checksum context; text traces are salvage-decoded line-wise (skips
/// carry line numbers in their messages instead of spans).
///
/// # Errors
///
/// Fails only when the input is unrecoverable — neither codec can
/// establish the session at all. Everything less severe is reported as
/// diagnostics, not as an error.
pub fn check_bytes(bytes: &[u8], rules: &mut RuleSet) -> Result<CheckReport, TraceError> {
    if bytes.starts_with(b"LGLZTRC") {
        let indexed = IndexedTrace::open_salvage(bytes.to_vec())?;
        let trace = indexed.par_decode(1)?;
        let rollup = lagalyzer_trace::probe_rollup(bytes);
        let subject = CheckSubject {
            trace: &trace,
            extents: Some(indexed.extents()),
            health: Some(indexed.health()),
            salvage: indexed.salvage_report(),
            file_len: Some(bytes.len() as u64),
            rollup: rollup.as_ref(),
        };
        Ok(rules.run(&subject))
    } else {
        let salvaged = read_bytes_salvage(bytes)?;
        let subject = CheckSubject {
            trace: &salvaged.trace,
            extents: None,
            health: None,
            salvage: Some(&salvaged.report),
            file_len: Some(bytes.len() as u64),
            rollup: None,
        };
        Ok(rules.run(&subject))
    }
}
