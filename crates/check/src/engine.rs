//! The checking engine: the [`Rule`] trait, the [`RuleSet`] that
//! configures which rules run at which severity, and the one-pass driver
//! that visits a trace and collects [`Diagnostic`]s.
//!
//! A rule is a trait object with a stable code and a default severity.
//! The engine calls `begin` once, `episode` once per decoded episode (in
//! order, with the episode's byte extent when the trace came from an
//! indexed `.lgz` file), and `finish` once. Rules report through a
//! [`Sink`] which stamps the code and the *effective* severity — the
//! default, unless the rule set carries an `--allow`/`--deny`/`--level`
//! override.

use std::collections::BTreeMap;
use std::fmt;

use lagalyzer_model::{Episode, SessionTrace};
use lagalyzer_trace::{EpisodeExtent, IndexHealth, RollupHealth, SalvageReport};

use crate::diag::{ByteSpan, CheckReport, Diagnostic, Related, Severity};

/// Everything the checker knows about the input being checked.
///
/// The trace itself is always present; the provenance fields are `None`
/// when the input did not come through the indexed binary path (e.g. a
/// text trace, or an in-memory trace that was never serialized).
pub struct CheckSubject<'a> {
    /// The decoded session.
    pub trace: &'a SessionTrace,
    /// Byte extents, index-aligned with `trace.episodes()` when present.
    pub extents: Option<&'a [EpisodeExtent]>,
    /// How the episode index was established.
    pub health: Option<&'a IndexHealth>,
    /// Damage report when the trace was decoded in salvage mode.
    pub salvage: Option<&'a SalvageReport>,
    /// Total length of the raw input file, for trailer spans.
    pub file_len: Option<u64>,
    /// Health of the persisted rollup section, when the input is a v2
    /// binary trace (`None` for text and legacy-v1 inputs).
    pub rollup: Option<&'a RollupHealth>,
}

impl<'a> CheckSubject<'a> {
    /// A subject with no file provenance: just a decoded trace.
    pub fn of_trace(trace: &'a SessionTrace) -> CheckSubject<'a> {
        CheckSubject {
            trace,
            extents: None,
            health: None,
            salvage: None,
            file_len: None,
            rollup: None,
        }
    }
}

/// Per-episode context handed to [`Rule::episode`].
pub struct EpisodeCtx<'a> {
    /// Position of the episode in `trace.episodes()`.
    pub index: usize,
    /// The episode under inspection.
    pub episode: &'a Episode,
    /// Its byte extent, when the subject's extent table aligns with the
    /// decoded episodes.
    pub extent: Option<&'a EpisodeExtent>,
    /// The surrounding session (symbol table, GC events, metadata).
    pub trace: &'a SessionTrace,
}

impl EpisodeCtx<'_> {
    /// The episode's byte range in the raw file, when known.
    pub fn byte_span(&self) -> Option<ByteSpan> {
        self.extent
            .map(|e| ByteSpan::new(e.offset, e.offset + e.len))
    }
}

/// One finding under construction; [`Sink::emit`] stamps code/severity.
#[derive(Debug, Default)]
pub struct Finding {
    message: String,
    episode_id: Option<lagalyzer_model::EpisodeId>,
    byte_span: Option<ByteSpan>,
    related: Vec<Related>,
}

impl Finding {
    /// Starts a finding with its message.
    pub fn new(message: impl Into<String>) -> Finding {
        Finding {
            message: message.into(),
            ..Finding::default()
        }
    }

    /// Attaches the episode the finding concerns.
    #[must_use]
    pub fn episode(mut self, id: lagalyzer_model::EpisodeId) -> Finding {
        self.episode_id = Some(id);
        self
    }

    /// Attaches a byte range in the raw file.
    #[must_use]
    pub fn span(mut self, span: Option<ByteSpan>) -> Finding {
        self.byte_span = span;
        self
    }

    /// Adds a secondary message (optionally with its own span).
    #[must_use]
    pub fn related(mut self, message: impl Into<String>, span: Option<ByteSpan>) -> Finding {
        self.related.push(Related {
            message: message.into(),
            byte_span: span,
        });
        self
    }
}

/// Where rules report findings. Created by the engine per rule with the
/// rule's code and effective severity already resolved.
pub struct Sink<'a> {
    code: &'static str,
    severity: Severity,
    out: &'a mut Vec<Diagnostic>,
}

impl Sink<'_> {
    /// Records one finding as a [`Diagnostic`].
    pub fn emit(&mut self, finding: Finding) {
        self.out.push(Diagnostic {
            code: self.code,
            severity: self.severity,
            message: finding.message,
            episode_id: finding.episode_id,
            byte_span: finding.byte_span,
            related: finding.related,
        });
    }
}

/// A semantic check over a decoded trace.
///
/// Rules hold per-run state in `&mut self`; `begin` must reset it so a
/// `RuleSet` can be reused across inputs.
pub trait Rule {
    /// Stable diagnostic code (`"LA001"`…). Never reused or renumbered.
    fn code(&self) -> &'static str;

    /// Short kebab-case name (`"improper-nesting"`), accepted wherever a
    /// code is.
    fn name(&self) -> &'static str;

    /// Severity when no override is configured.
    fn default_severity(&self) -> Severity;

    /// One-line description for `--help` and the README rule table.
    fn summary(&self) -> &'static str;

    /// Called once before any episode; reset per-run state here.
    fn begin(&mut self, _subject: &CheckSubject<'_>, _sink: &mut Sink<'_>) {}

    /// Called once per episode, in decode order.
    fn episode(&mut self, _ctx: &EpisodeCtx<'_>, _sink: &mut Sink<'_>) {}

    /// Called once after all episodes.
    fn finish(&mut self, _subject: &CheckSubject<'_>, _sink: &mut Sink<'_>) {}
}

/// How an override changes a rule: suppress it or force a severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LevelOverride {
    Allow,
    At(Severity),
}

/// A rule code that matched no registered rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownRule(pub String);

impl fmt::Display for UnknownRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown rule '{}' (expected a code like LA001)", self.0)
    }
}

impl std::error::Error for UnknownRule {}

/// An ordered collection of rules plus severity overrides.
pub struct RuleSet {
    rules: Vec<Box<dyn Rule>>,
    overrides: BTreeMap<&'static str, LevelOverride>,
}

impl RuleSet {
    /// All shipped rules (`LA001`…) at their default severities.
    pub fn standard() -> RuleSet {
        RuleSet::with_rules(crate::rules::standard_rules())
    }

    /// A rule set over an explicit list of rules.
    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> RuleSet {
        RuleSet {
            rules,
            overrides: BTreeMap::new(),
        }
    }

    /// Metadata of every registered rule: `(code, name, default severity,
    /// summary)` — drives `--help` and the README table.
    pub fn descriptions(&self) -> Vec<(&'static str, &'static str, Severity, &'static str)> {
        self.rules
            .iter()
            .map(|r| (r.code(), r.name(), r.default_severity(), r.summary()))
            .collect()
    }

    /// Resolves a user-supplied code or name to the canonical code.
    fn canon(&self, key: &str) -> Result<&'static str, UnknownRule> {
        self.rules
            .iter()
            .find(|r| r.code() == key || r.name() == key)
            .map(|r| r.code())
            .ok_or_else(|| UnknownRule(key.to_owned()))
    }

    /// Suppresses a rule entirely (`--allow`).
    ///
    /// # Errors
    ///
    /// Fails when `key` names no registered rule.
    pub fn allow(&mut self, key: &str) -> Result<(), UnknownRule> {
        let code = self.canon(key)?;
        self.overrides.insert(code, LevelOverride::Allow);
        Ok(())
    }

    /// Escalates a rule to error severity (`--deny`).
    ///
    /// # Errors
    ///
    /// Fails when `key` names no registered rule.
    pub fn deny(&mut self, key: &str) -> Result<(), UnknownRule> {
        self.level(key, Severity::Error)
    }

    /// Forces a rule to a specific severity (`--level CODE=SEV`).
    ///
    /// # Errors
    ///
    /// Fails when `key` names no registered rule.
    pub fn level(&mut self, key: &str, severity: Severity) -> Result<(), UnknownRule> {
        let code = self.canon(key)?;
        self.overrides.insert(code, LevelOverride::At(severity));
        Ok(())
    }

    /// Runs every enabled rule over `subject`, one pass over the
    /// episodes, and collects the diagnostics.
    pub fn run(&mut self, subject: &CheckSubject<'_>) -> CheckReport {
        let mut out = Vec::new();
        let episodes = subject.trace.episodes();
        // Extents are positionally aligned with decoded episodes on every
        // IndexedTrace open path; if something upstream broke that, hand
        // rules no extent rather than the wrong one (LA009 reports the
        // count disagreement from the subject itself).
        let aligned = subject.extents.filter(|e| e.len() == episodes.len());

        let active: Vec<(usize, Severity)> = self
            .rules
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match self.overrides.get(r.code()) {
                Some(LevelOverride::Allow) => None,
                Some(LevelOverride::At(sev)) => Some((i, *sev)),
                None => Some((i, r.default_severity())),
            })
            .collect();

        for &(i, severity) in &active {
            let rule = &mut self.rules[i];
            let mut sink = Sink {
                code: rule.code(),
                severity,
                out: &mut out,
            };
            rule.begin(subject, &mut sink);
        }
        for (index, episode) in episodes.iter().enumerate() {
            let ctx = EpisodeCtx {
                index,
                episode,
                extent: aligned.and_then(|e| e.get(index)),
                trace: subject.trace,
            };
            for &(i, severity) in &active {
                let rule = &mut self.rules[i];
                let mut sink = Sink {
                    code: rule.code(),
                    severity,
                    out: &mut out,
                };
                rule.episode(&ctx, &mut sink);
            }
        }
        for &(i, severity) in &active {
            let rule = &mut self.rules[i];
            let mut sink = Sink {
                code: rule.code(),
                severity,
                out: &mut out,
            };
            rule.finish(subject, &mut sink);
        }
        CheckReport::new(out)
    }
}

impl fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuleSet")
            .field(
                "rules",
                &self.rules.iter().map(|r| r.code()).collect::<Vec<_>>(),
            )
            .field("overrides", &self.overrides)
            .finish()
    }
}
