//! Diagnostics: what a rule reports and how a batch of them renders.
//!
//! A [`Diagnostic`] is deliberately shaped like a compiler lint: a stable
//! code (`LA001`…), a [`Severity`], a human message, and provenance — the
//! episode it concerns and, whenever the trace came from an indexed `.lgz`
//! file, a [`ByteSpan`] pointing into the raw bytes (threaded from the
//! `EpisodeExtent` table or from salvage skip offsets). A [`CheckReport`]
//! aggregates diagnostics and renders them as text or as deterministic
//! JSON for machine consumption.

use std::fmt;

use lagalyzer_model::EpisodeId;

/// How serious a diagnostic is. Ordered: `Note < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never affects the exit code.
    Note,
    /// The trace is usable but an analysis assumption is weakened.
    Warning,
    /// An invariant the analyses rely on is violated.
    Error,
}

impl Severity {
    /// Lowercase name as used in renderers and `--level` arguments.
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a `--level` argument value.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" | "warn" => Some(Severity::Warning),
            "error" | "deny" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A half-open `[start, end)` range of bytes in the checked file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteSpan {
    /// First byte of the span.
    pub start: u64,
    /// One past the last byte of the span.
    pub end: u64,
}

impl ByteSpan {
    /// Creates a span; callers keep `start <= end`.
    pub const fn new(start: u64, end: u64) -> ByteSpan {
        ByteSpan { start, end }
    }
}

impl fmt::Display for ByteSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}..{}", self.start, self.end)
    }
}

/// Secondary location or context attached to a [`Diagnostic`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Related {
    /// What this related entry adds.
    pub message: String,
    /// Optional byte range it points at.
    pub byte_span: Option<ByteSpan>,
}

/// One finding of the checker, in the style of a compiler lint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code, e.g. `"LA001"`.
    pub code: &'static str,
    /// Effective severity (after `--deny`/`--level` overrides).
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// The episode the finding concerns, when episode-scoped.
    pub episode_id: Option<EpisodeId>,
    /// Range of the raw trace file this points at, when known.
    pub byte_span: Option<ByteSpan>,
    /// Secondary locations and context.
    pub related: Vec<Related>,
}

/// The result of running a rule set over one trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// Wraps an ordered batch of diagnostics.
    pub fn new(diagnostics: Vec<Diagnostic>) -> CheckReport {
        CheckReport { diagnostics }
    }

    /// All diagnostics, in emission order (file-level damage first, then
    /// per-episode findings in episode order).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Note-severity diagnostics.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    /// `true` when nothing at all was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The `check` scripting contract: 0 clean (notes allowed), 1 at
    /// least one warning, 2 at least one error. (3 — unrecoverable input
    /// — is produced by the CLI before a report exists.)
    pub fn exit_code(&self) -> u8 {
        if self.errors() > 0 {
            2
        } else if self.warnings() > 0 {
            1
        } else {
            0
        }
    }

    /// One-word verdict matching [`CheckReport::exit_code`].
    pub fn verdict(&self) -> &'static str {
        if self.errors() > 0 {
            "errors"
        } else if self.warnings() > 0 {
            "warnings"
        } else {
            "clean"
        }
    }

    /// Renders the report as human-readable text. `source` names the
    /// checked input (a path, or a label in tests).
    pub fn render_text(&self, source: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            render_diagnostic_text(&mut out, d, source);
        }
        out.push_str(&format!(
            "check: {}: {} — {} error(s), {} warning(s), {} note(s)\n",
            source,
            self.verdict(),
            self.errors(),
            self.warnings(),
            self.notes()
        ));
        out
    }

    /// Renders the report as one line of deterministic JSON (keys in
    /// fixed order, no whitespace variance) for `--format json`,
    /// `--fix-report`, and the golden corpus snapshots.
    pub fn render_json(&self, source: &str) -> String {
        let mut out = String::with_capacity(128 + self.diagnostics.len() * 96);
        out.push_str("{\"file\":");
        json_string(&mut out, source);
        out.push_str(&format!(
            ",\"verdict\":\"{}\",\"summary\":{{\"errors\":{},\"warnings\":{},\"notes\":{}}}",
            self.verdict(),
            self.errors(),
            self.warnings(),
            self.notes()
        ));
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_diagnostic_json(&mut out, d);
        }
        out.push_str("]}");
        out
    }
}

/// Renders one diagnostic in the compiler-lint text shape shared by
/// `check` and `hazards` reports.
pub(crate) fn render_diagnostic_text(out: &mut String, d: &Diagnostic, source: &str) {
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    let mut arrow = format!("  --> {source}");
    if let Some(span) = d.byte_span {
        arrow.push_str(&format!(" {span}"));
    }
    if let Some(id) = d.episode_id {
        arrow.push_str(&format!(" (episode {id})"));
    }
    out.push_str(&arrow);
    out.push('\n');
    for rel in &d.related {
        out.push_str(&format!("  note: {}", rel.message));
        if let Some(span) = rel.byte_span {
            out.push_str(&format!(" ({span})"));
        }
        out.push('\n');
    }
}

pub(crate) fn render_diagnostic_json(out: &mut String, d: &Diagnostic) {
    out.push_str(&format!(
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":",
        d.code, d.severity
    ));
    json_string(out, &d.message);
    out.push_str(",\"episode\":");
    match d.episode_id {
        Some(id) => out.push_str(&id.as_raw().to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"span\":");
    json_span(out, d.byte_span);
    out.push_str(",\"related\":[");
    for (i, rel) in d.related.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"message\":");
        json_string(out, &rel.message);
        out.push_str(",\"span\":");
        json_span(out, rel.byte_span);
        out.push('}');
    }
    out.push_str("]}");
}

fn json_span(out: &mut String, span: Option<ByteSpan>) {
    match span {
        Some(s) => out.push_str(&format!("{{\"start\":{},\"end\":{}}}", s.start, s.end)),
        None => out.push_str("null"),
    }
}

/// Appends `s` as a JSON string literal with full escaping.
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(severity: Severity) -> Diagnostic {
        Diagnostic {
            code: "LA999",
            severity,
            message: "test \"quoted\"\nline".into(),
            episode_id: Some(EpisodeId::from_raw(4)),
            byte_span: Some(ByteSpan::new(10, 20)),
            related: vec![Related {
                message: "see also".into(),
                byte_span: None,
            }],
        }
    }

    #[test]
    fn exit_codes_follow_worst_severity() {
        assert_eq!(CheckReport::new(vec![]).exit_code(), 0);
        assert_eq!(CheckReport::new(vec![diag(Severity::Note)]).exit_code(), 0);
        assert_eq!(
            CheckReport::new(vec![diag(Severity::Warning)]).exit_code(),
            1
        );
        assert_eq!(
            CheckReport::new(vec![diag(Severity::Warning), diag(Severity::Error)]).exit_code(),
            2
        );
    }

    #[test]
    fn json_escapes_and_is_single_line() {
        let report = CheckReport::new(vec![diag(Severity::Error)]);
        let json = report.render_json("a\"b.lgz");
        assert!(!json.contains('\n'));
        assert!(json.contains("\\\"quoted\\\"\\nline"));
        assert!(json.contains("\"file\":\"a\\\"b.lgz\""));
        assert!(json.contains("\"span\":{\"start\":10,\"end\":20}"));
        assert!(json.contains("\"episode\":4"));
    }

    #[test]
    fn text_render_mentions_code_span_and_episode() {
        let report = CheckReport::new(vec![diag(Severity::Warning)]);
        let text = report.render_text("demo.lgz");
        assert!(text.contains("warning[LA999]"));
        assert!(text.contains("bytes 10..20"));
        assert!(text.contains("episode e4"));
        assert!(text.contains("1 warning(s)"));
    }
}
