//! Concurrency-hazard rules (`LA020`…`LA025`) over the session-wide
//! lock graph, plus the [`HazardReport`] behind the `hazards` CLI
//! subcommand.
//!
//! Where the rules in [`crate::rules`] check *format* invariants, this
//! family performs structural analysis of the waiting-dependency graph
//! itself (DepGraph-style): every episode's Blocked/Waiting samples are
//! lifted into a [`LockGraph`] whose nodes are heuristic lock
//! identities (the hottest monitor frame of a contended wait, selected
//! exactly like `HolderProfile`) and whose edges are
//! held-while-acquiring relations. Static passes over that graph find:
//!
//! - **LA020** lock-order inversions — elementary cycles of the
//!   held-while-acquiring relation (the classic ABBA deadlock recipe);
//! - **LA021** a lock held across IO — the inferred holder of a
//!   contended lock was sampled inside `java.io`/`java.nio`/network
//!   code for the majority of the wait;
//! - **LA022** a lock held across a pause — the holder sat in
//!   `Thread.sleep`, or a stop-the-world GC overlapped a long blocked
//!   streak;
//! - **LA023** starvation — one waiter blocked on the same lock across
//!   ≥K consecutive samples while the set of runnable peers churned;
//! - **LA024** self-waits — a thread blocked entering a lock whose
//!   frame already encloses it (reentrancy confusion or a recursive
//!   `synchronized` path the JIT did not elide);
//! - **LA025** corpus-wide inversions — cycles that only close when
//!   per-session graphs are merged through the interned corpus symbol
//!   table, i.e. session A acquires `A→B` and session B `B→A`.
//!
//! All identities are sampling heuristics — see the `lockgraph` module
//! docs and DESIGN.md for the limits — so every rule gates on sample
//! counts carried in [`HazardConfig`]. `LA020`…`LA024` run as ordinary
//! [`Rule`]s inside [`crate::RuleSet::standard`]; `LA025` needs more
//! than one session and therefore only fires through
//! [`HazardReport::analyze_corpus`] (its registered rule exists so the
//! code appears in `--list-rules`, but it never fires single-session).

use std::collections::BTreeSet;

use lagalyzer_model::lockgraph::{extract_waits, ContendedWait, LockGraph};
use lagalyzer_model::{EpisodeId, MethodRef, SessionTrace, SymbolTable, WaitKind};
use lagalyzer_trace::EpisodeExtent;

use crate::diag::{
    json_string, render_diagnostic_json, render_diagnostic_text, ByteSpan, Diagnostic, Related,
    Severity,
};
use crate::engine::{CheckSubject, EpisodeCtx, Finding, Rule, Sink};

/// Class-name prefixes treated as blocking IO for `LA021`.
const IO_PREFIXES: [&str; 5] = ["java.io.", "java.nio.", "java.net.", "sun.nio.", "sun.net."];

/// Evidence thresholds for the hazard rules. Lock identities are
/// inferred from samples, so each rule requires a minimum amount of
/// supporting evidence before it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HazardConfig {
    /// Minimum samples a contended wait needs before the per-wait rules
    /// (`LA021`/`LA022`) consider it.
    pub min_wait_samples: u64,
    /// Minimum samples on every edge of a cycle before `LA020`/`LA025`
    /// report it.
    pub min_edge_samples: u64,
    /// Consecutive blocked samples on one lock before `LA023` considers
    /// the waiter starved.
    pub starvation_streak: u64,
    /// Distinct runnable peers that must appear during that streak
    /// (holder churn) for `LA023`.
    pub starvation_holders: usize,
    /// Minimum blocked-streak length for the GC-overlap arm of `LA022`
    /// (a short wait spanning a collection is the collection's fault,
    /// not the lock's).
    pub pause_streak: u64,
}

impl Default for HazardConfig {
    fn default() -> HazardConfig {
        HazardConfig {
            min_wait_samples: 2,
            min_edge_samples: 2,
            starvation_streak: 8,
            starvation_holders: 2,
            pause_streak: 3,
        }
    }
}

/// Renders the thread list of an edge or streak as `t0, t7`.
fn thread_list(threads: &[lagalyzer_model::ThreadId]) -> String {
    threads
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// `LA021`: the inferred holder ran IO for the majority of the wait.
pub(crate) fn io_hazard(
    wait: &ContendedWait,
    symbols: &SymbolTable,
    config: &HazardConfig,
) -> Option<String> {
    pause_or_io_hazard(wait, symbols, config, |name| {
        IO_PREFIXES.iter().any(|p| name.starts_with(p))
    })
    .map(|(lock, holder, frame, seen)| {
        format!(
            "lock {lock} held across IO: inferred holder {holder} was sampled in {frame} \
             during {seen} of {} blocked sample(s)",
            wait.samples
        )
    })
}

/// `LA022`: the holder slept, or a stop-the-world collection overlapped
/// a long blocked streak.
pub(crate) fn pause_hazard(
    wait: &ContendedWait,
    symbols: &SymbolTable,
    config: &HazardConfig,
) -> Option<String> {
    let slept = pause_or_io_hazard(wait, symbols, config, |name| {
        name == "java.lang.Thread.sleep"
    });
    if let Some((lock, holder, _, seen)) = slept {
        return Some(format!(
            "lock {lock} held across sleep: inferred holder {holder} was sampled in \
             java.lang.Thread.sleep during {seen} of {} blocked sample(s)",
            wait.samples
        ));
    }
    if wait.kind == WaitKind::Monitor
        && wait.gc_overlaps > 0
        && wait.longest_streak >= config.pause_streak
    {
        return Some(format!(
            "lock {} held across GC: {} stop-the-world collection(s) overlap a \
             {}-sample blocked streak of {}",
            symbols.render(wait.lock),
            wait.gc_overlaps,
            wait.longest_streak,
            wait.thread
        ));
    }
    None
}

/// Shared gate for `LA021` and the sleep arm of `LA022`: a monitor wait
/// with enough samples whose strongest runnable peer was present for
/// the majority of the wait and whose hottest frame matches `accept`.
/// Returns `(lock, holder thread, frame, frame samples)` rendered.
fn pause_or_io_hazard(
    wait: &ContendedWait,
    symbols: &SymbolTable,
    config: &HazardConfig,
    accept: impl Fn(&str) -> bool,
) -> Option<(String, lagalyzer_model::ThreadId, String, u64)> {
    if wait.kind != WaitKind::Monitor || wait.samples < config.min_wait_samples {
        return None;
    }
    let holder = wait.holder.as_ref()?;
    if holder.samples * 2 < wait.samples {
        return None;
    }
    let (frame, seen) = holder.frame?;
    let name = symbols.render(frame);
    if !accept(&name) {
        return None;
    }
    Some((symbols.render(wait.lock), holder.thread, name, seen))
}

/// `LA023`: one waiter starved on one lock while holders churned.
pub(crate) fn starvation_hazard(
    wait: &ContendedWait,
    symbols: &SymbolTable,
    config: &HazardConfig,
) -> Option<String> {
    if wait.kind != WaitKind::Monitor
        || wait.longest_streak < config.starvation_streak
        || wait.streak_holders.len() < config.starvation_holders
    {
        return None;
    }
    Some(format!(
        "starvation: {} stayed blocked on lock {} for {} consecutive sample(s) while the \
         lock changed hands among {} runnable peer(s) ({})",
        wait.thread,
        symbols.render(wait.lock),
        wait.longest_streak,
        wait.streak_holders.len(),
        thread_list(&wait.streak_holders)
    ))
}

/// `LA024`: a thread blocked entering a lock it already appears inside.
pub(crate) fn self_wait_hazard(
    wait: &ContendedWait,
    symbols: &SymbolTable,
    config: &HazardConfig,
) -> Option<String> {
    let (held, held_samples) = wait.held?;
    if held != wait.lock || held_samples < config.min_edge_samples {
        return None;
    }
    Some(format!(
        "self-wait: {} blocked entering lock {} while its own stack already holds it \
         ({held_samples} sample(s); reentrancy confusion or a recursive synchronized path)",
        wait.thread,
        symbols.render(wait.lock)
    ))
}

/// One lock-order inversion: the canonical cycle plus a rendered
/// finding shared by the `LA020` rule and [`HazardReport`].
pub(crate) struct InversionFinding {
    /// The cycle, rotated so its smallest lock comes first.
    pub cycle: Vec<MethodRef>,
    /// The rendered primary message.
    pub message: String,
    /// The earliest episode contributing edge evidence.
    pub episode: Option<EpisodeId>,
    /// Per-edge evidence notes.
    pub related: Vec<String>,
}

/// `LA020`: enumerates the graph's inversion cycles whose every edge
/// carries at least `min_edge_samples` of evidence.
pub(crate) fn inversions(
    graph: &LockGraph,
    symbols: &SymbolTable,
    config: &HazardConfig,
) -> Vec<InversionFinding> {
    let mut out = Vec::new();
    'cycles: for cycle in graph.cycles() {
        let names: Vec<String> = cycle.iter().map(|&m| symbols.render(m)).collect();
        let mut related = Vec::new();
        let mut episode: Option<EpisodeId> = None;
        let mut samples = 0u64;
        for i in 0..cycle.len() {
            let (held, acquired) = (cycle[i], cycle[(i + 1) % cycle.len()]);
            let edge = graph
                .held_edge(held, acquired)
                .expect("cycle edges exist in the graph");
            if edge.samples < config.min_edge_samples {
                continue 'cycles;
            }
            samples += edge.samples;
            episode = match (episode, edge.episodes.first()) {
                (Some(a), Some(&b)) => Some(a.min(b)),
                (a, b) => a.or(b.copied()),
            };
            related.push(format!(
                "{} held while acquiring {}: {} sample(s), thread(s) {}",
                names[i],
                names[(i + 1) % cycle.len()],
                edge.samples,
                thread_list(&edge.threads)
            ));
        }
        let message = format!(
            "lock-order inversion: {} -> {} ({} held-while-acquiring sample(s); \
             threads can deadlock by acquiring these locks in opposite orders)",
            names.join(" -> "),
            names[0],
            samples
        );
        out.push(InversionFinding {
            cycle,
            message,
            episode,
            related,
        });
    }
    out
}

/// `LA025`: inversion cycles of the merged corpus graph that no single
/// session exhibits on its own.
pub(crate) fn corpus_inversions(
    merged: &LockGraph,
    per_session: &[LockGraph],
    symbols: &SymbolTable,
    config: &HazardConfig,
) -> Vec<InversionFinding> {
    let session_cycles: BTreeSet<Vec<MethodRef>> = per_session
        .iter()
        .flat_map(|g| g.cycles().into_iter())
        .collect();
    inversions(merged, symbols, config)
        .into_iter()
        .filter(|f| !session_cycles.contains(&f.cycle))
        .map(|f| {
            let names: Vec<String> = f.cycle.iter().map(|&m| symbols.render(m)).collect();
            let related: Vec<String> = (0..f.cycle.len())
                .map(|i| {
                    let (held, acquired) = (f.cycle[i], f.cycle[(i + 1) % f.cycle.len()]);
                    let sessions: Vec<String> = per_session
                        .iter()
                        .enumerate()
                        .filter(|(_, g)| g.held_edge(held, acquired).is_some())
                        .map(|(s, _)| format!("s{s}"))
                        .collect();
                    format!(
                        "{} held while acquiring {}: session(s) {}",
                        names[i],
                        names[(i + 1) % f.cycle.len()],
                        sessions.join(", ")
                    )
                })
                .collect();
            InversionFinding {
                message: format!(
                    "corpus-wide lock-order inversion: {} -> {} (no single session closes \
                     the cycle; sessions disagree on acquisition order)",
                    names.join(" -> "),
                    names[0]
                ),
                episode: None,
                related,
                cycle: f.cycle,
            }
        })
        .collect()
}

/// Byte span of the episode with id `id`, when the subject's extent
/// table aligns with the decoded episodes.
fn episode_span(subject: &CheckSubject<'_>, id: EpisodeId) -> Option<ByteSpan> {
    let episodes = subject.trace.episodes();
    let extents = subject.extents.filter(|e| e.len() == episodes.len())?;
    let index = episodes.iter().position(|e| e.id() == id)?;
    extents
        .get(index)
        .map(|e| ByteSpan::new(e.offset, e.offset + e.len))
}

/// `LA020`: accumulates the session lock graph across episodes and
/// reports inversion cycles in `finish`.
#[derive(Default)]
pub(crate) struct LockOrderInversion {
    graph: LockGraph,
    config: HazardConfig,
}

impl Rule for LockOrderInversion {
    fn code(&self) -> &'static str {
        "LA020"
    }
    fn name(&self) -> &'static str {
        "lock-order-inversion"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "held-while-acquiring cycle in the session lock graph (ABBA deadlock recipe)"
    }

    fn begin(&mut self, _subject: &CheckSubject<'_>, _sink: &mut Sink<'_>) {
        self.graph = LockGraph::new();
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, _sink: &mut Sink<'_>) {
        self.graph.add_episode(ctx.episode);
    }

    fn finish(&mut self, subject: &CheckSubject<'_>, sink: &mut Sink<'_>) {
        for inv in inversions(&self.graph, subject.trace.symbols(), &self.config) {
            let mut finding = Finding::new(inv.message);
            if let Some(id) = inv.episode {
                finding = finding.episode(id).span(episode_span(subject, id));
            }
            for note in inv.related {
                finding = finding.related(note, None);
            }
            sink.emit(finding);
        }
    }
}

/// Dispatches one of the per-wait detectors over every contended wait
/// of an episode — the shared shape of `LA021`…`LA024`.
fn emit_per_wait(
    ctx: &EpisodeCtx<'_>,
    sink: &mut Sink<'_>,
    config: &HazardConfig,
    detect: impl Fn(&ContendedWait, &SymbolTable, &HazardConfig) -> Option<String>,
) {
    for wait in extract_waits(ctx.episode) {
        if let Some(message) = detect(&wait, ctx.trace.symbols(), config) {
            sink.emit(
                Finding::new(message)
                    .episode(ctx.episode.id())
                    .span(ctx.byte_span()),
            );
        }
    }
}

/// `LA021`: lock held across IO.
#[derive(Default)]
pub(crate) struct LockHeldAcrossIo {
    config: HazardConfig,
}

impl Rule for LockHeldAcrossIo {
    fn code(&self) -> &'static str {
        "LA021"
    }
    fn name(&self) -> &'static str {
        "lock-held-across-io"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "contended lock's inferred holder spent the wait inside blocking IO"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        emit_per_wait(ctx, sink, &self.config, io_hazard);
    }
}

/// `LA022`: lock held across sleep or a GC pause.
#[derive(Default)]
pub(crate) struct LockHeldAcrossPause {
    config: HazardConfig,
}

impl Rule for LockHeldAcrossPause {
    fn code(&self) -> &'static str {
        "LA022"
    }
    fn name(&self) -> &'static str {
        "lock-held-across-pause"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "contended lock held across Thread.sleep or a stop-the-world GC pause"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        emit_per_wait(ctx, sink, &self.config, pause_hazard);
    }
}

/// `LA023`: starved waiter under holder churn.
#[derive(Default)]
pub(crate) struct LockStarvation {
    config: HazardConfig,
}

impl Rule for LockStarvation {
    fn code(&self) -> &'static str {
        "LA023"
    }
    fn name(&self) -> &'static str {
        "lock-starvation"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "waiter blocked on one lock across many consecutive samples while holders churn"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        emit_per_wait(ctx, sink, &self.config, starvation_hazard);
    }
}

/// `LA024`: self-wait anomaly.
#[derive(Default)]
pub(crate) struct SelfWait {
    config: HazardConfig,
}

impl Rule for SelfWait {
    fn code(&self) -> &'static str {
        "LA024"
    }
    fn name(&self) -> &'static str {
        "self-wait"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "thread blocked entering a lock its own stack already holds"
    }

    fn episode(&mut self, ctx: &EpisodeCtx<'_>, sink: &mut Sink<'_>) {
        emit_per_wait(ctx, sink, &self.config, self_wait_hazard);
    }
}

/// `LA025`: corpus-wide inversion. Needs multiple sessions, so the
/// single-session engine never fires it — it is registered so the code
/// appears in `--list-rules` and severity overrides resolve; the actual
/// detection runs in [`HazardReport::analyze_corpus`].
pub(crate) struct CorpusLockInversion;

impl Rule for CorpusLockInversion {
    fn code(&self) -> &'static str {
        "LA025"
    }
    fn name(&self) -> &'static str {
        "corpus-lock-inversion"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "lock-order cycle closed only across sessions of a corpus (hazards subcommand)"
    }
}

/// The `hazards` subcommand's analysis result: lock-graph shape metrics
/// plus the hazard findings, rendered deterministically as text or
/// JSON (byte-identical for any `--jobs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HazardReport {
    /// Episodes analyzed (summed over sessions in corpus mode).
    pub episodes: usize,
    /// Contended waits folded into the graph.
    pub waits: usize,
    /// Total wait samples across all inferred locks.
    pub wait_samples: u64,
    /// Distinct inferred locks.
    pub locks: usize,
    /// Held-while-acquiring edges.
    pub held_edges: usize,
    /// Number of sessions in corpus mode, `None` single-session.
    pub sessions: Option<usize>,
    /// Hazard findings in deterministic order: per-wait findings in
    /// wait (episode) order, then inversion cycles.
    pub findings: Vec<Diagnostic>,
}

impl HazardReport {
    /// Analyzes one session: builds the lock graph sharded over `jobs`
    /// workers and runs every hazard pass. `extents`, when aligned with
    /// the decoded episodes, provides byte-span provenance.
    pub fn analyze(
        trace: &SessionTrace,
        extents: Option<&[EpisodeExtent]>,
        jobs: usize,
        config: &HazardConfig,
    ) -> HazardReport {
        let graph = LockGraph::build_with_jobs(trace.episodes(), jobs);
        let symbols = trace.symbols();
        let aligned = extents.filter(|e| e.len() == trace.episodes().len());
        let span_of = |id: EpisodeId| -> Option<ByteSpan> {
            let index = trace.episodes().iter().position(|e| e.id() == id)?;
            aligned
                .and_then(|e| e.get(index))
                .map(|e| ByteSpan::new(e.offset, e.offset + e.len))
        };
        let mut findings = Vec::new();
        for wait in graph.waits() {
            for (code, message) in wait_findings(wait, symbols, config) {
                findings.push(Diagnostic {
                    code,
                    severity: severity_of(code),
                    message,
                    episode_id: Some(wait.episode),
                    byte_span: span_of(wait.episode),
                    related: Vec::new(),
                });
            }
        }
        for inv in inversions(&graph, symbols, config) {
            findings.push(Diagnostic {
                code: "LA020",
                severity: Severity::Error,
                message: inv.message,
                episode_id: inv.episode,
                byte_span: inv.episode.and_then(span_of),
                related: inv
                    .related
                    .into_iter()
                    .map(|message| Related {
                        message,
                        byte_span: None,
                    })
                    .collect(),
            });
        }
        HazardReport {
            episodes: trace.episodes().len(),
            waits: graph.waits().len(),
            wait_samples: graph.total_wait_samples(),
            locks: graph.lock_count(),
            held_edges: graph.edge_count(),
            sessions: None,
            findings,
        }
    }

    /// Analyzes a corpus: per-session graphs are built (sharded), their
    /// lock identities re-interned through `symbols` (seed it with the
    /// corpus-wide table), per-session findings are emitted with an
    /// `s{i}: ` prefix, and `LA025` reports cycles only the merged
    /// graph closes.
    pub fn analyze_corpus(
        traces: &[SessionTrace],
        symbols: &mut SymbolTable,
        jobs: usize,
        config: &HazardConfig,
    ) -> HazardReport {
        let mut merged = LockGraph::new();
        let mut graphs = Vec::with_capacity(traces.len());
        let mut findings = Vec::new();
        let mut episodes = 0usize;
        for (i, trace) in traces.iter().enumerate() {
            episodes += trace.episodes().len();
            let local = trace.symbols();
            let graph = LockGraph::build_with_jobs(trace.episodes(), jobs).remap(|m| MethodRef {
                class: symbols.intern(local.resolve(m.class).unwrap_or("?")),
                method: symbols.intern(local.resolve(m.method).unwrap_or("?")),
            });
            for wait in graph.waits() {
                for (code, message) in wait_findings(wait, symbols, config) {
                    findings.push(Diagnostic {
                        code,
                        severity: severity_of(code),
                        message: format!("s{i}: {message}"),
                        episode_id: Some(wait.episode),
                        byte_span: None,
                        related: Vec::new(),
                    });
                }
            }
            for inv in inversions(&graph, symbols, config) {
                findings.push(Diagnostic {
                    code: "LA020",
                    severity: Severity::Error,
                    message: format!("s{i}: {}", inv.message),
                    episode_id: inv.episode,
                    byte_span: None,
                    related: inv
                        .related
                        .into_iter()
                        .map(|message| Related {
                            message,
                            byte_span: None,
                        })
                        .collect(),
                });
            }
            merged.merge(graph.clone());
            graphs.push(graph);
        }
        for inv in corpus_inversions(&merged, &graphs, symbols, config) {
            findings.push(Diagnostic {
                code: "LA025",
                severity: Severity::Error,
                message: inv.message,
                episode_id: None,
                byte_span: None,
                related: inv
                    .related
                    .into_iter()
                    .map(|message| Related {
                        message,
                        byte_span: None,
                    })
                    .collect(),
            });
        }
        HazardReport {
            episodes,
            waits: merged.waits().len(),
            wait_samples: merged.total_wait_samples(),
            locks: merged.lock_count(),
            held_edges: merged.edge_count(),
            sessions: Some(traces.len()),
            findings,
        }
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// One-word verdict: `errors`, `warnings`, or `clean`.
    pub fn verdict(&self) -> &'static str {
        if self.count(Severity::Error) > 0 {
            "errors"
        } else if self.count(Severity::Warning) > 0 {
            "warnings"
        } else {
            "clean"
        }
    }

    /// Renders the report as human-readable text.
    pub fn render_text(&self, source: &str) -> String {
        let mut out = String::new();
        let scope = match self.sessions {
            Some(n) => format!("corpus of {n} session(s), {} episode(s)", self.episodes),
            None => format!("{} episode(s)", self.episodes),
        };
        out.push_str(&format!(
            "hazards: {scope}: {} contended wait(s), {} wait sample(s), {} inferred lock(s), \
             {} held-while-acquiring edge(s)\n",
            self.waits, self.wait_samples, self.locks, self.held_edges
        ));
        for d in &self.findings {
            render_diagnostic_text(&mut out, d, source);
        }
        out.push_str(&format!(
            "hazards: {}: {} — {} error(s), {} warning(s), {} note(s)\n",
            source,
            self.verdict(),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note)
        ));
        out
    }

    /// Renders the report as one line of deterministic JSON.
    pub fn render_json(&self, source: &str) -> String {
        let mut out = String::with_capacity(192 + self.findings.len() * 96);
        out.push_str("{\"tool\":\"lagalyzer-hazards\",\"version\":1,\"file\":");
        json_string(&mut out, source);
        out.push_str(",\"verdict\":\"");
        out.push_str(self.verdict());
        out.push_str("\",\"sessions\":");
        match self.sessions {
            Some(n) => out.push_str(&n.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"summary\":{{\"episodes\":{},\"waits\":{},\"waitSamples\":{},\"locks\":{},\
             \"heldEdges\":{},\"errors\":{},\"warnings\":{},\"notes\":{}}}",
            self.episodes,
            self.waits,
            self.wait_samples,
            self.locks,
            self.held_edges,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note)
        ));
        out.push_str(",\"findings\":[");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_diagnostic_json(&mut out, d);
        }
        out.push_str("]}");
        out
    }
}

/// Runs every per-wait detector over one wait, in code order.
fn wait_findings(
    wait: &ContendedWait,
    symbols: &SymbolTable,
    config: &HazardConfig,
) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    if let Some(m) = io_hazard(wait, symbols, config) {
        out.push(("LA021", m));
    }
    if let Some(m) = pause_hazard(wait, symbols, config) {
        out.push(("LA022", m));
    }
    if let Some(m) = starvation_hazard(wait, symbols, config) {
        out.push(("LA023", m));
    }
    if let Some(m) = self_wait_hazard(wait, symbols, config) {
        out.push(("LA024", m));
    }
    out
}

/// Default severity of a hazard code, for report construction outside
/// the rule engine.
fn severity_of(code: &str) -> Severity {
    match code {
        "LA020" | "LA025" => Severity::Error,
        _ => Severity::Warning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RuleSet;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn tid(v: u32) -> ThreadId {
        ThreadId::from_raw(v)
    }

    fn meta() -> SessionMeta {
        SessionMeta {
            application: "Hazards".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(10),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        }
    }

    fn episode_with(id: u32, start_ms: u64, samples: Vec<SampleSnapshot>) -> Episode {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(start_ms)).unwrap();
        t.exit(ms(start_ms + 500)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(id), tid(0))
            .tree(t.finish().unwrap())
            .samples(samples)
            .build()
            .unwrap()
    }

    fn trace_of(symbols: SymbolTable, episodes: Vec<Episode>) -> SessionTrace {
        let mut b = SessionTraceBuilder::new(meta(), symbols);
        for e in episodes {
            b.push_episode(e).unwrap();
        }
        b.finish()
    }

    /// ABBA: t0 holds A acquiring B, t7 holds B acquiring A, 4 samples.
    fn abba_trace() -> SessionTrace {
        let mut symbols = SymbolTable::new();
        let a = symbols.method("com.app.sync.OrderA", "enter");
        let b = symbols.method("com.app.sync.OrderB", "enter");
        let samples = (0..4u64)
            .map(|i| {
                SampleSnapshot::new(
                    ms(10 + 10 * i),
                    vec![
                        ThreadSample::new(
                            tid(0),
                            ThreadState::Blocked,
                            vec![StackFrame::java(b), StackFrame::java(a)],
                        ),
                        ThreadSample::new(
                            tid(7),
                            ThreadState::Blocked,
                            vec![StackFrame::java(a), StackFrame::java(b)],
                        ),
                    ],
                )
            })
            .collect();
        trace_of(symbols, vec![episode_with(0, 0, samples)])
    }

    #[test]
    fn la020_reports_abba_with_identities_and_threads() {
        let trace = abba_trace();
        let report = RuleSet::standard().run(&CheckSubject::of_trace(&trace));
        let hits: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "LA020")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0].message.contains("com.app.sync.OrderA.enter"));
        assert!(hits[0].message.contains("com.app.sync.OrderB.enter"));
        assert_eq!(hits[0].related.len(), 2);
        let notes = format!("{:?}", hits[0].related);
        assert!(notes.contains("t0") && notes.contains("t7"));
        assert_eq!(report.exit_code(), 2);
    }

    #[test]
    fn la020_matches_hazard_report_message() {
        let trace = abba_trace();
        let check = RuleSet::standard().run(&CheckSubject::of_trace(&trace));
        let hazards = HazardReport::analyze(&trace, None, 1, &HazardConfig::default());
        let from_check = check
            .diagnostics()
            .iter()
            .find(|d| d.code == "LA020")
            .unwrap();
        let from_hazards = hazards.findings.iter().find(|d| d.code == "LA020").unwrap();
        assert_eq!(from_check.message, from_hazards.message);
        assert_eq!(from_check.related, from_hazards.related);
    }

    #[test]
    fn la021_fires_on_io_holder_majority() {
        let mut symbols = SymbolTable::new();
        let lock = symbols.method("com.app.CacheLock", "get");
        let io = symbols.method("java.io.RandomAccessFile", "readBytes");
        let samples = (0..4u64)
            .map(|i| {
                SampleSnapshot::new(
                    ms(10 + 10 * i),
                    vec![
                        ThreadSample::new(
                            tid(0),
                            ThreadState::Blocked,
                            vec![StackFrame::java(lock)],
                        ),
                        ThreadSample::new(
                            tid(9),
                            ThreadState::Runnable,
                            vec![StackFrame::java(io)],
                        ),
                    ],
                )
            })
            .collect();
        let trace = trace_of(symbols, vec![episode_with(0, 0, samples)]);
        let report = RuleSet::standard().run(&CheckSubject::of_trace(&trace));
        let hit = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "LA021")
            .expect("LA021 fires");
        assert_eq!(hit.severity, Severity::Warning);
        assert!(hit.message.contains("java.io.RandomAccessFile.readBytes"));
        assert!(hit.message.contains("t9"));
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn la021_silent_without_majority_or_io() {
        let mut symbols = SymbolTable::new();
        let lock = symbols.method("com.app.CacheLock", "get");
        let work = symbols.method("com.app.Worker", "crunch");
        let samples = (0..4u64)
            .map(|i| {
                SampleSnapshot::new(
                    ms(10 + 10 * i),
                    vec![
                        ThreadSample::new(
                            tid(0),
                            ThreadState::Blocked,
                            vec![StackFrame::java(lock)],
                        ),
                        ThreadSample::new(
                            tid(9),
                            ThreadState::Runnable,
                            vec![StackFrame::java(work)],
                        ),
                    ],
                )
            })
            .collect();
        let trace = trace_of(symbols, vec![episode_with(0, 0, samples)]);
        let report = RuleSet::standard().run(&CheckSubject::of_trace(&trace));
        assert!(report.diagnostics().iter().all(|d| d.code != "LA021"));
    }

    #[test]
    fn la022_fires_on_sleeping_holder() {
        let mut symbols = SymbolTable::new();
        let lock = symbols.method("com.app.CacheLock", "get");
        let sleep = symbols.method("java.lang.Thread", "sleep");
        let samples = (0..3u64)
            .map(|i| {
                SampleSnapshot::new(
                    ms(10 + 10 * i),
                    vec![
                        ThreadSample::new(
                            tid(0),
                            ThreadState::Blocked,
                            vec![StackFrame::java(lock)],
                        ),
                        ThreadSample::new(
                            tid(4),
                            ThreadState::Runnable,
                            vec![StackFrame::java(sleep)],
                        ),
                    ],
                )
            })
            .collect();
        let trace = trace_of(symbols, vec![episode_with(0, 0, samples)]);
        let report = RuleSet::standard().run(&CheckSubject::of_trace(&trace));
        let hit = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "LA022")
            .expect("LA022 fires");
        assert!(hit.message.contains("held across sleep"));
    }

    #[test]
    fn la023_needs_holder_churn() {
        let mut symbols = SymbolTable::new();
        let lock = symbols.method("com.app.CacheLock", "get");
        let work = symbols.method("com.app.Worker", "crunch");
        let streak = |churn: bool| {
            let samples: Vec<SampleSnapshot> = (0..9u64)
                .map(|i| {
                    let holder = if churn { 7 + (i % 3) as u32 } else { 7 };
                    SampleSnapshot::new(
                        ms(10 + 10 * i),
                        vec![
                            ThreadSample::new(
                                tid(0),
                                ThreadState::Blocked,
                                vec![StackFrame::java(lock)],
                            ),
                            ThreadSample::new(
                                tid(holder),
                                ThreadState::Runnable,
                                vec![StackFrame::java(work)],
                            ),
                        ],
                    )
                })
                .collect();
            episode_with(0, 0, samples)
        };
        let churned = trace_of(symbols.clone(), vec![streak(true)]);
        let report = RuleSet::standard().run(&CheckSubject::of_trace(&churned));
        let hit = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "LA023")
            .expect("churning holders starve the waiter");
        assert!(hit.message.contains("9 consecutive sample(s)"));
        assert!(hit.message.contains("t7, t8, t9"));

        let constant = trace_of(symbols, vec![streak(false)]);
        let report = RuleSet::standard().run(&CheckSubject::of_trace(&constant));
        assert!(
            report.diagnostics().iter().all(|d| d.code != "LA023"),
            "a constant holder is contention (LA-free), not starvation"
        );
    }

    #[test]
    fn la024_fires_on_self_wait() {
        let mut symbols = SymbolTable::new();
        let lock = symbols.method("com.app.sync.Reentrant", "enter");
        let samples = (0..3u64)
            .map(|i| {
                SampleSnapshot::new(
                    ms(10 + 10 * i),
                    vec![ThreadSample::new(
                        tid(0),
                        ThreadState::Blocked,
                        vec![StackFrame::java(lock), StackFrame::java(lock)],
                    )],
                )
            })
            .collect();
        let trace = trace_of(symbols, vec![episode_with(0, 0, samples)]);
        let report = RuleSet::standard().run(&CheckSubject::of_trace(&trace));
        let hit = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "LA024")
            .expect("LA024 fires");
        assert!(hit.message.contains("self-wait"));
        // A self edge never doubles as an LA020 cycle.
        assert!(report.diagnostics().iter().all(|d| d.code != "LA020"));
    }

    #[test]
    fn la025_fires_only_across_sessions() {
        // Session 0 acquires A then B; session 1 acquires B then A.
        // Neither alone has a cycle; the merged corpus graph does.
        let build = |first: &str, second: &str| {
            let mut symbols = SymbolTable::new();
            let top = symbols.method(first, "enter");
            let caller = symbols.method(second, "enter");
            let samples = (0..3u64)
                .map(|i| {
                    SampleSnapshot::new(
                        ms(10 + 10 * i),
                        vec![ThreadSample::new(
                            tid(0),
                            ThreadState::Blocked,
                            vec![StackFrame::java(top), StackFrame::java(caller)],
                        )],
                    )
                })
                .collect();
            trace_of(symbols, vec![episode_with(0, 0, samples)])
        };
        let s0 = build("com.app.sync.OrderB", "com.app.sync.OrderA");
        let s1 = build("com.app.sync.OrderA", "com.app.sync.OrderB");
        let mut symbols = SymbolTable::new();
        let report = HazardReport::analyze_corpus(
            &[s0.clone(), s1],
            &mut symbols,
            1,
            &HazardConfig::default(),
        );
        let la025: Vec<_> = report
            .findings
            .iter()
            .filter(|d| d.code == "LA025")
            .collect();
        assert_eq!(la025.len(), 1);
        assert!(la025[0].message.contains("com.app.sync.OrderA.enter"));
        assert!(la025[0].message.contains("com.app.sync.OrderB.enter"));
        let notes = format!("{:?}", la025[0].related);
        assert!(notes.contains("s0") && notes.contains("s1"));
        assert!(report.findings.iter().all(|d| d.code != "LA020"));
        assert_eq!(report.sessions, Some(2));

        // The same session twice: the cycle closes per-session too, so
        // it is an LA020 matter, not a corpus-only inversion... but one
        // direction alone never cycles at all.
        let solo = HazardReport::analyze_corpus(
            &[s0],
            &mut SymbolTable::new(),
            1,
            &HazardConfig::default(),
        );
        assert!(solo.findings.iter().all(|d| d.code != "LA025"));
    }

    #[test]
    fn hazard_report_renders_are_deterministic_across_jobs() {
        let trace = abba_trace();
        let config = HazardConfig::default();
        let serial = HazardReport::analyze(&trace, None, 1, &config);
        for jobs in [2, 5] {
            let sharded = HazardReport::analyze(&trace, None, jobs, &config);
            assert_eq!(
                sharded.render_text("demo.lgz"),
                serial.render_text("demo.lgz")
            );
            assert_eq!(
                sharded.render_json("demo.lgz"),
                serial.render_json("demo.lgz")
            );
        }
        let json = serial.render_json("demo.lgz");
        assert!(json.starts_with("{\"tool\":\"lagalyzer-hazards\",\"version\":1,"));
        assert!(json.contains("\"verdict\":\"errors\""));
        assert!(!json.contains('\n'));
        let text = serial.render_text("demo.lgz");
        assert!(text.contains("error[LA020]"));
        assert!(text.ends_with("error(s), 0 warning(s), 0 note(s)\n"));
    }

    #[test]
    fn clean_trace_reports_clean() {
        let trace = trace_of(SymbolTable::new(), vec![episode_with(0, 0, vec![])]);
        let report = HazardReport::analyze(&trace, None, 1, &HazardConfig::default());
        assert_eq!(report.verdict(), "clean");
        assert!(report.findings.is_empty());
        assert_eq!(report.episodes, 1);
        assert_eq!(report.waits, 0);
    }
}
