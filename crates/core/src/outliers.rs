//! Per-pattern outlier detection and cause attribution.
//!
//! The paper classifies episodes into patterns but never explains why one
//! episode of a pattern runs 10x slower than its siblings. This module
//! closes that gap (ROADMAP item 3): within each mined pattern it flags
//! episodes far above the pattern's duration distribution (median + MAD,
//! robust to the heavy right skew of lag distributions), then explains
//! each outlier's *excess* as a delta against the pattern centroid —
//! following "Automated Cause Analysis of Latency Outliers Using
//! System-Level Dependency Graphs" (PAPERS.md), an outlier is explained
//! relative to its pattern baseline, not in isolation.
//!
//! The attribution pass partitions an episode's duration into stable
//! cause categories built from the trace content that already exists:
//! GC intervals, native intervals split into I/O and other native by
//! class name, the dispatch thread's sampled blocked / waiting / sleeping
//! time, and residual self time. When the dominant delta is lock or wait
//! time, a [`WaitGraph`] over the episode's snapshots names the candidate
//! culprit thread and its hottest frame.
//!
//! All arithmetic is integer nanoseconds and every tie-break is fixed, so
//! reports are byte-identical regardless of episode order or `--jobs`.

use std::fmt;

use lagalyzer_model::{
    DurationNs, Episode, EpisodeId, IntervalKind, MethodRef, SymbolTable, ThreadId, ThreadState,
    WaitGraph,
};

use crate::parallel::map_shards;
use crate::patterns::PatternSet;
use crate::session::AnalysisSession;

/// Tuning knobs for outlier detection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutlierConfig {
    /// MAD multiplier: an episode is an outlier when it exceeds
    /// `median + mad_k * 1.4826 * MAD` (1.4826 scales MAD to the standard
    /// deviation of a normal distribution).
    pub mad_k: f64,
    /// Absolute floor on the excess over the median — keeps homogeneous
    /// patterns (MAD near zero) from flagging microsecond jitter.
    pub min_excess: DurationNs,
    /// Patterns with fewer episodes than this are skipped: a distribution
    /// needs members before "far above it" means anything.
    pub min_count: usize,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        OutlierConfig {
            mad_k: 4.0,
            min_excess: DurationNs::from_millis(20),
            min_count: 4,
        }
    }
}

/// Stable cause categories an outlier's excess is attributed to.
///
/// The order is the tie-break order: when two categories explain the same
/// excess, the earlier one wins.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CauseCode {
    /// Blocked entering a contended monitor (`OC-LOCK`).
    Lock,
    /// Waiting in `Object.wait()` / `LockSupport.park()` (`OC-WAIT`).
    Wait,
    /// Voluntarily sleeping (`OC-SLEEP`).
    Sleep,
    /// Stop-the-world garbage collection (`OC-GC`).
    Gc,
    /// Native I/O calls — `java.io`, `java.nio`, `java.net` (`OC-IO`).
    Io,
    /// Other native calls (`OC-NATIVE`).
    Native,
    /// Residual dispatch-thread computation (`OC-SELF`).
    SelfTime,
}

impl CauseCode {
    /// All categories in attribution (tie-break) order.
    pub const ALL: [CauseCode; 7] = [
        CauseCode::Lock,
        CauseCode::Wait,
        CauseCode::Sleep,
        CauseCode::Gc,
        CauseCode::Io,
        CauseCode::Native,
        CauseCode::SelfTime,
    ];

    /// Stable machine-readable code (mirrors the `LAxxx` check codes).
    pub const fn code(self) -> &'static str {
        match self {
            CauseCode::Lock => "OC-LOCK",
            CauseCode::Wait => "OC-WAIT",
            CauseCode::Sleep => "OC-SLEEP",
            CauseCode::Gc => "OC-GC",
            CauseCode::Io => "OC-IO",
            CauseCode::Native => "OC-NATIVE",
            CauseCode::SelfTime => "OC-SELF",
        }
    }

    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            CauseCode::Lock => "lock contention",
            CauseCode::Wait => "long wait",
            CauseCode::Sleep => "sleeping",
            CauseCode::Gc => "GC storm",
            CauseCode::Io => "slow I/O",
            CauseCode::Native => "native call",
            CauseCode::SelfTime => "self-time inflation",
        }
    }

    /// Looks a category up by its stable code.
    pub fn from_code(code: &str) -> Option<CauseCode> {
        CauseCode::ALL.into_iter().find(|c| c.code() == code)
    }
}

impl fmt::Display for CauseCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// An episode's duration partitioned into the cause categories.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LagBreakdown {
    /// Sampled time blocked on contended monitors.
    pub lock: DurationNs,
    /// Sampled time waiting / parked.
    pub wait: DurationNs,
    /// Sampled time sleeping.
    pub sleep: DurationNs,
    /// Outermost GC interval time.
    pub gc: DurationNs,
    /// Outermost native-I/O interval time (GC inside excluded).
    pub io: DurationNs,
    /// Other outermost native interval time (GC inside excluded).
    pub native: DurationNs,
    /// Residual: duration not covered by any category above.
    pub self_time: DurationNs,
}

/// Class-name prefixes treated as I/O when they name a native interval.
const IO_PREFIXES: [&str; 5] = ["java.io.", "java.nio.", "java.net.", "sun.nio.", "sun.net."];

impl LagBreakdown {
    /// Partitions `episode`'s duration.
    ///
    /// GC and native time come from the interval tree (outermost spans
    /// only, GC nested inside a native call counted once — as GC). The
    /// blocked / waiting / sleeping shares come from the dispatch thread's
    /// sample states, scaled to the episode duration; an episode with no
    /// samples simply contributes zero there (no NaN, no division by
    /// zero). Whatever remains is self time.
    pub fn of_episode(episode: &Episode, symbols: &SymbolTable) -> LagBreakdown {
        let tree = episode.tree();
        let duration = episode.duration();
        let gc = tree.outermost_kind_time(IntervalKind::Gc);

        // Outermost native spans, split I/O vs other, minus nested GC
        // (already attributed to the GC category).
        let mut io = DurationNs::ZERO;
        let mut native = DurationNs::ZERO;
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let interval = tree.interval(id);
            if interval.kind == IntervalKind::Native && id != tree.root() {
                let mut nested_gc = DurationNs::ZERO;
                let mut inner = Vec::from(tree.children(id));
                while let Some(cid) = inner.pop() {
                    let child = tree.interval(cid);
                    if child.kind == IntervalKind::Gc {
                        nested_gc += child.duration();
                    } else {
                        inner.extend_from_slice(tree.children(cid));
                    }
                }
                let net = interval.duration().saturating_sub(nested_gc);
                if is_io_symbol(interval.symbol, symbols) {
                    io += net;
                } else {
                    native += net;
                }
                continue;
            }
            stack.extend_from_slice(tree.children(id));
        }

        // Sampled dispatch-thread states, scaled to the duration.
        let mut counts = [0u64; 3]; // blocked, waiting, sleeping
        let mut total = 0u64;
        for snap in episode.samples() {
            if let Some(ts) = snap.thread(episode.thread()) {
                total += 1;
                match ts.state {
                    ThreadState::Blocked => counts[0] += 1,
                    ThreadState::Waiting => counts[1] += 1,
                    ThreadState::Sleeping => counts[2] += 1,
                    ThreadState::Runnable => {}
                }
            }
        }
        let scale = |count: u64| -> DurationNs {
            if total == 0 {
                return DurationNs::ZERO;
            }
            let ns = u128::from(duration.as_nanos()) * u128::from(count) / u128::from(total);
            DurationNs::from_nanos(ns as u64)
        };
        let (lock, wait, sleep) = (scale(counts[0]), scale(counts[1]), scale(counts[2]));

        let covered = lock + wait + sleep + gc + io + native;
        LagBreakdown {
            lock,
            wait,
            sleep,
            gc,
            io,
            native,
            self_time: duration.saturating_sub(covered),
        }
    }

    /// The time attributed to `cause`.
    pub fn get(&self, cause: CauseCode) -> DurationNs {
        match cause {
            CauseCode::Lock => self.lock,
            CauseCode::Wait => self.wait,
            CauseCode::Sleep => self.sleep,
            CauseCode::Gc => self.gc,
            CauseCode::Io => self.io,
            CauseCode::Native => self.native,
            CauseCode::SelfTime => self.self_time,
        }
    }

    pub(crate) fn set(&mut self, cause: CauseCode, value: DurationNs) {
        match cause {
            CauseCode::Lock => self.lock = value,
            CauseCode::Wait => self.wait = value,
            CauseCode::Sleep => self.sleep = value,
            CauseCode::Gc => self.gc = value,
            CauseCode::Io => self.io = value,
            CauseCode::Native => self.native = value,
            CauseCode::SelfTime => self.self_time = value,
        }
    }

    /// Lowers the breakdown to nanosecond counts in [`CauseCode::ALL`]
    /// order — the representation persisted rollups use.
    pub fn to_array(&self) -> [u64; 7] {
        let mut out = [0u64; 7];
        for (slot, &cause) in out.iter_mut().zip(CauseCode::ALL.iter()) {
            *slot = self.get(cause).as_nanos();
        }
        out
    }

    /// Inverse of [`to_array`](Self::to_array).
    pub fn from_array(values: [u64; 7]) -> LagBreakdown {
        let mut out = LagBreakdown::default();
        for (&v, &cause) in values.iter().zip(CauseCode::ALL.iter()) {
            out.set(cause, DurationNs::from_nanos(v));
        }
        out
    }
}

fn is_io_symbol(symbol: Option<MethodRef>, symbols: &SymbolTable) -> bool {
    let Some(class) = symbol.and_then(|m| symbols.resolve(m.class)) else {
        return false;
    };
    IO_PREFIXES.iter().any(|p| class.starts_with(p))
}

/// The thread a lock/wait outlier most plausibly waited on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Culprit {
    /// The candidate culprit thread.
    pub thread: ThreadId,
    /// Snapshots in which it ran while the outlier's thread waited.
    pub samples: u64,
    /// Its most frequently sampled top frame during those snapshots.
    pub frame: Option<MethodRef>,
}

/// One flagged episode with its attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct OutlierFinding {
    /// Index of the owning pattern in the canonical [`PatternSet`] order.
    pub pattern_index: usize,
    /// Index into `session.episodes()`.
    pub episode_index: usize,
    /// The episode's trace id.
    pub episode_id: EpisodeId,
    /// The episode's duration.
    pub duration: DurationNs,
    /// The pattern's median duration.
    pub median: DurationNs,
    /// Excess over the median — the time the attribution explains.
    pub excess: DurationNs,
    /// The category with the largest delta over the pattern baseline.
    pub cause: CauseCode,
    /// That category's delta over the baseline.
    pub cause_delta: DurationNs,
    /// The outlier's own breakdown.
    pub breakdown: LagBreakdown,
    /// The pattern centroid: per-category median over non-outlier members.
    pub baseline: LagBreakdown,
    /// Candidate culprit thread for lock/wait causes.
    pub culprit: Option<Culprit>,
    /// Byte span of the episode in the source file, when the trace came
    /// through the extent index (see [`OutlierReport::attach_spans`]).
    pub bytes: Option<(u64, u64)>,
}

impl OutlierFinding {
    /// Delta of `cause` over the pattern baseline.
    pub fn delta(&self, cause: CauseCode) -> DurationNs {
        self.breakdown
            .get(cause)
            .saturating_sub(self.baseline.get(cause))
    }
}

/// The result of an outlier analysis over one session.
#[derive(Clone, Debug, PartialEq)]
pub struct OutlierReport {
    findings: Vec<OutlierFinding>,
    /// Patterns large enough to scan (`count >= min_count`).
    pub patterns_scanned: usize,
    /// Total patterns in the set.
    pub patterns_total: usize,
    /// Episodes belonging to scanned patterns.
    pub episodes_considered: usize,
    /// True when the underlying trace was salvaged from a damaged file.
    pub salvaged: bool,
}

/// Work unit for the attribution stage: one pattern with flagged members.
struct PatternWork {
    pattern_index: usize,
    median: DurationNs,
    flagged: Vec<usize>,
    normal: Vec<usize>,
}

impl OutlierReport {
    /// Assembles a report from findings computed elsewhere — the warm path
    /// (see [`crate::warm`]) runs detection over rollup summaries and
    /// builds findings without an [`AnalysisSession`].
    pub(crate) fn from_parts(
        findings: Vec<OutlierFinding>,
        patterns_scanned: usize,
        patterns_total: usize,
        episodes_considered: usize,
        salvaged: bool,
    ) -> OutlierReport {
        OutlierReport {
            findings,
            patterns_scanned,
            patterns_total,
            episodes_considered,
            salvaged,
        }
    }

    /// Runs detection and attribution serially.
    pub fn analyze(
        session: &AnalysisSession,
        patterns: &PatternSet,
        config: &OutlierConfig,
    ) -> OutlierReport {
        OutlierReport::analyze_with_jobs(session, patterns, config, 1)
    }

    /// Runs detection and attribution, sharding the attribution pass over
    /// `jobs` workers. Results are byte-identical for every jobs value.
    pub fn analyze_with_jobs(
        session: &AnalysisSession,
        patterns: &PatternSet,
        config: &OutlierConfig,
        jobs: usize,
    ) -> OutlierReport {
        let episodes = session.episodes();
        let mut work: Vec<PatternWork> = Vec::new();
        let mut patterns_scanned = 0usize;
        let mut episodes_considered = 0usize;
        for (pattern_index, pattern) in patterns.patterns().iter().enumerate() {
            let members = pattern.episode_indices();
            if members.len() < config.min_count {
                continue;
            }
            patterns_scanned += 1;
            episodes_considered += members.len();
            let durations: Vec<DurationNs> =
                members.iter().map(|&i| episodes[i].duration()).collect();
            let flagged_local = detect(&durations, config);
            if flagged_local.is_empty() {
                continue;
            }
            let median = DurationNs::from_nanos(median_ns(
                &mut durations.iter().map(|d| d.as_nanos()).collect::<Vec<_>>(),
            ));
            let mut flagged = Vec::with_capacity(flagged_local.len());
            let mut normal = Vec::with_capacity(members.len() - flagged_local.len());
            for (slot, &episode_index) in members.iter().enumerate() {
                if flagged_local.contains(&slot) {
                    flagged.push(episode_index);
                } else {
                    normal.push(episode_index);
                }
            }
            work.push(PatternWork {
                pattern_index,
                median,
                flagged,
                normal,
            });
        }

        let shards = map_shards(work.len(), jobs, |range| {
            range
                .map(|i| attribute_pattern(session, &work[i]))
                .collect::<Vec<Vec<OutlierFinding>>>()
        });
        let findings: Vec<OutlierFinding> = shards.into_iter().flatten().flatten().collect();

        OutlierReport {
            findings,
            patterns_scanned,
            patterns_total: patterns.len(),
            episodes_considered,
            salvaged: session.is_salvaged() || patterns.salvaged(),
        }
    }

    /// The flagged episodes, ordered by pattern then episode index.
    pub fn findings(&self) -> &[OutlierFinding] {
        &self.findings
    }

    /// Number of flagged episodes.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// True when nothing was flagged.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Attaches source byte spans (from the extent index) to findings by
    /// episode id. Findings `f` gets the span `f(episode_id)` returns.
    pub fn attach_spans<F: Fn(EpisodeId) -> Option<(u64, u64)>>(&mut self, span_of: F) {
        for finding in &mut self.findings {
            finding.bytes = span_of(finding.episode_id);
        }
    }

    /// The most common top cause across findings, ties broken by category
    /// order.
    pub fn dominant_cause(&self) -> Option<CauseCode> {
        let mut counts = [0usize; CauseCode::ALL.len()];
        for f in &self.findings {
            let slot = CauseCode::ALL
                .iter()
                .position(|c| *c == f.cause)
                .expect("cause is one of ALL");
            counts[slot] += 1;
        }
        CauseCode::ALL
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| counts[i] > 0)
            .max_by(|&(ai, _), &(bi, _)| counts[ai].cmp(&counts[bi]).then(bi.cmp(&ai)))
            .map(|(_, c)| c)
    }

    /// One-line summary (no label prefix) for the `analyze` report.
    pub fn summary(&self) -> String {
        match self.dominant_cause() {
            None => format!(
                "none flagged ({} of {} patterns scanned)",
                self.patterns_scanned, self.patterns_total
            ),
            Some(cause) => format!(
                "{} flagged in {} of {} patterns; top cause {} ({})",
                self.findings.len(),
                self.flagged_pattern_count(),
                self.patterns_total,
                cause.code(),
                cause.label()
            ),
        }
    }

    fn flagged_pattern_count(&self) -> usize {
        let mut n = 0usize;
        let mut last = usize::MAX;
        for f in &self.findings {
            if f.pattern_index != last {
                n += 1;
                last = f.pattern_index;
            }
        }
        n
    }

    /// Renders the human-readable report.
    pub fn render_text(&self, symbols: &SymbolTable) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "OUTLIERS  {} flagged / {} episodes in {} of {} patterns scanned{}\n",
            self.findings.len(),
            self.episodes_considered,
            self.patterns_scanned,
            self.patterns_total,
            if self.salvaged {
                "  [salvaged trace]"
            } else {
                ""
            }
        ));
        for f in &self.findings {
            out.push_str(&format!(
                "[{}] episode {} (pattern {}): {} vs median {} (+{}); {} +{}",
                f.cause.code(),
                f.episode_id.as_raw(),
                f.pattern_index,
                fmt_ms(f.duration),
                fmt_ms(f.median),
                fmt_ms(f.excess),
                f.cause.label(),
                fmt_ms(f.cause_delta),
            ));
            if let Some(c) = &f.culprit {
                out.push_str(&format!(
                    "; culprit t{} {} ({} samples)",
                    c.thread.as_raw(),
                    c.frame
                        .map_or_else(|| "<vm>".to_string(), |m| symbols.render(m)),
                    c.samples
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the deterministic single-line JSON report (stable cause
    /// codes, integer nanoseconds; same bytes for every `--jobs` value).
    pub fn render_json(&self, symbols: &SymbolTable) -> String {
        let mut out = String::with_capacity(256 + self.findings.len() * 256);
        out.push_str("{\"tool\":\"lagalyzer-outliers\",\"version\":1,\"salvaged\":");
        out.push_str(if self.salvaged { "true" } else { "false" });
        out.push_str(&format!(
            ",\"patterns_scanned\":{},\"patterns_total\":{},\"episodes_considered\":{},\"flagged\":{}",
            self.patterns_scanned,
            self.patterns_total,
            self.episodes_considered,
            self.findings.len()
        ));
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pattern\":{},\"episode_index\":{},\"episode_id\":{},\"duration_ns\":{},\"median_ns\":{},\"excess_ns\":{},\"cause\":\"{}\",\"label\":",
                f.pattern_index,
                f.episode_index,
                f.episode_id.as_raw(),
                f.duration.as_nanos(),
                f.median.as_nanos(),
                f.excess.as_nanos(),
                f.cause.code(),
            ));
            json_string(f.cause.label(), &mut out);
            out.push_str(&format!(",\"delta_ns\":{}", f.cause_delta.as_nanos()));
            out.push_str(",\"breakdown\":");
            json_breakdown(&f.breakdown, &mut out);
            out.push_str(",\"baseline\":");
            json_breakdown(&f.baseline, &mut out);
            out.push_str(",\"culprit\":");
            match &f.culprit {
                None => out.push_str("null"),
                Some(c) => {
                    out.push_str(&format!(
                        "{{\"thread\":{},\"samples\":{},\"frame\":",
                        c.thread.as_raw(),
                        c.samples
                    ));
                    match c.frame {
                        None => out.push_str("null"),
                        Some(m) => json_string(&symbols.render(m), &mut out),
                    }
                    out.push('}');
                }
            }
            out.push_str(",\"bytes\":");
            match f.bytes {
                None => out.push_str("null"),
                Some((start, end)) => {
                    out.push_str(&format!("{{\"start\":{start},\"end\":{end}}}"));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Flags outliers within one pattern's duration multiset.
///
/// Returns the positions (into `durations`) of flagged members. The result
/// depends only on the multiset and each position's own value, so it is
/// invariant under any sharding of the surrounding analysis; an episode is
/// flagged iff `duration > median + max(min_excess, mad_k * 1.4826 * MAD)`.
pub fn detect(durations: &[DurationNs], config: &OutlierConfig) -> Vec<usize> {
    if durations.len() < config.min_count {
        return Vec::new();
    }
    let mut ns: Vec<u64> = durations.iter().map(|d| d.as_nanos()).collect();
    let median = median_ns(&mut ns);
    let mut deviations: Vec<u64> = durations
        .iter()
        .map(|d| d.as_nanos().abs_diff(median))
        .collect();
    let mad = median_ns(&mut deviations);
    let spread = (config.mad_k * 1.4826 * mad as f64).round() as u64;
    let threshold = median.saturating_add(spread.max(config.min_excess.as_nanos()));
    durations
        .iter()
        .enumerate()
        .filter(|(_, d)| d.as_nanos() > threshold)
        .map(|(i, _)| i)
        .collect()
}

/// Lower median of `values` (sorts in place). Zero when empty.
pub(crate) fn median_ns(values: &mut [u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[(values.len() - 1) / 2]
}

/// Attributes every flagged member of one pattern.
fn attribute_pattern(session: &AnalysisSession, work: &PatternWork) -> Vec<OutlierFinding> {
    let episodes = session.episodes();
    let symbols = session.trace().symbols();

    // Pattern centroid: per-category lower median over non-outlier
    // members. A pattern where everything was flagged (cannot happen with
    // a median-based threshold, but belt and braces) gets a zero baseline.
    let normal_breakdowns: Vec<LagBreakdown> = work
        .normal
        .iter()
        .map(|&i| LagBreakdown::of_episode(&episodes[i], symbols))
        .collect();
    let mut baseline = LagBreakdown::default();
    for cause in CauseCode::ALL {
        let mut values: Vec<u64> = normal_breakdowns
            .iter()
            .map(|b| b.get(cause).as_nanos())
            .collect();
        baseline.set(cause, DurationNs::from_nanos(median_ns(&mut values)));
    }

    work.flagged
        .iter()
        .map(|&episode_index| {
            let episode = &episodes[episode_index];
            let breakdown = LagBreakdown::of_episode(episode, symbols);
            let mut cause = CauseCode::SelfTime;
            let mut cause_delta = DurationNs::ZERO;
            for candidate in CauseCode::ALL {
                let delta = breakdown
                    .get(candidate)
                    .saturating_sub(baseline.get(candidate));
                if delta > cause_delta {
                    cause = candidate;
                    cause_delta = delta;
                }
            }
            let culprit = if matches!(cause, CauseCode::Lock | CauseCode::Wait) {
                WaitGraph::extract(episode).top_holder().map(|h| Culprit {
                    thread: h.thread,
                    samples: h.samples,
                    frame: h.top_frame.map(|(m, _)| m),
                })
            } else {
                None
            };
            OutlierFinding {
                pattern_index: work.pattern_index,
                episode_index,
                episode_id: episode.id(),
                duration: episode.duration(),
                median: work.median,
                excess: episode.duration().saturating_sub(work.median),
                cause,
                cause_delta,
                breakdown,
                baseline,
                culprit,
                bytes: None,
            }
        })
        .collect()
}

fn fmt_ms(d: DurationNs) -> String {
    format!("{}ms", d.as_nanos() / 1_000_000)
}

fn json_breakdown(b: &LagBreakdown, out: &mut String) {
    out.push_str(&format!(
        "{{\"lock_ns\":{},\"wait_ns\":{},\"sleep_ns\":{},\"gc_ns\":{},\"io_ns\":{},\"native_ns\":{},\"self_ns\":{}}}",
        b.lock.as_nanos(),
        b.wait.as_nanos(),
        b.sleep.as_nanos(),
        b.gc.as_nanos(),
        b.io.as_nanos(),
        b.native.as_nanos(),
        b.self_time.as_nanos(),
    ));
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ms: u64) -> DurationNs {
        DurationNs::from_millis(ms)
    }

    #[test]
    fn detect_flags_far_tail_only() {
        let config = OutlierConfig::default();
        let durations: Vec<DurationNs> = [50, 52, 54, 51, 53, 500, 55, 50]
            .iter()
            .map(|&v| d(v))
            .collect();
        assert_eq!(detect(&durations, &config), vec![5]);
    }

    #[test]
    fn detect_homogeneous_flags_nothing() {
        let config = OutlierConfig::default();
        let durations = vec![d(50); 16];
        assert!(detect(&durations, &config).is_empty());
        // Small jitter below min_excess stays quiet too.
        let jitter: Vec<DurationNs> = (0..16).map(|i| d(50 + i % 7)).collect();
        assert!(detect(&jitter, &config).is_empty());
    }

    #[test]
    fn detect_respects_min_count() {
        let config = OutlierConfig::default();
        let durations = vec![d(50), d(50), d(900)];
        assert!(detect(&durations, &config).is_empty());
    }

    #[test]
    fn detect_invariant_under_permutation() {
        let config = OutlierConfig::default();
        let a: Vec<DurationNs> = [50, 900, 52, 54, 51, 53].iter().map(|&v| d(v)).collect();
        let b: Vec<DurationNs> = [54, 53, 52, 51, 50, 900].iter().map(|&v| d(v)).collect();
        let fa: Vec<u64> = detect(&a, &config)
            .iter()
            .map(|&i| a[i].as_nanos())
            .collect();
        let fb: Vec<u64> = detect(&b, &config)
            .iter()
            .map(|&i| b[i].as_nanos())
            .collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn median_is_lower_median() {
        assert_eq!(median_ns(&mut [4, 1, 3, 2]), 2);
        assert_eq!(median_ns(&mut [5, 1, 3]), 3);
        assert_eq!(median_ns(&mut []), 0);
    }

    #[test]
    fn cause_codes_round_trip() {
        for c in CauseCode::ALL {
            assert_eq!(CauseCode::from_code(c.code()), Some(c));
            assert!(c.code().starts_with("OC-"));
        }
        assert_eq!(CauseCode::from_code("OC-NOPE"), None);
    }

    #[test]
    fn json_string_escapes() {
        let mut out = String::new();
        json_string("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
