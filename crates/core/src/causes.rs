//! Cause analysis: GUI-thread states during episodes (the paper's Fig 8).
//!
//! Partitions the GUI thread's sampled time into blocked (contended
//! monitor), waiting (`Object.wait()` / `LockSupport.park()`), sleeping
//! (`Thread.sleep()`), and runnable.

use lagalyzer_model::{Episode, ThreadState};

use crate::session::AnalysisSession;

/// Fractions of GUI-thread samples per state (one Fig 8 bar).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CauseStats {
    /// Blocked entering a contended monitor.
    pub blocked: f64,
    /// Waiting in `Object.wait()` / `LockSupport.park()`.
    pub waiting: f64,
    /// Voluntarily sleeping.
    pub sleeping: f64,
    /// Runnable (doing work).
    pub runnable: f64,
}

impl CauseStats {
    /// Computes the partition over `episodes` for the session's GUI
    /// thread.
    pub fn of<'a, I>(session: &AnalysisSession, episodes: I) -> CauseStats
    where
        I: IntoIterator<Item = &'a Episode>,
    {
        let _ = session; // kept for API symmetry with the other analyses
        let mut counts = [0u64; 4];
        for episode in episodes {
            for snap in episode.samples() {
                // Attribute each episode to its own dispatch thread; this
                // is what lets LagAlyzer handle toolkits with several
                // event-dispatch threads (paper §V).
                if let Some(ts) = snap.thread(episode.thread()) {
                    let slot = match ts.state {
                        ThreadState::Blocked => 0,
                        ThreadState::Waiting => 1,
                        ThreadState::Sleeping => 2,
                        ThreadState::Runnable => 3,
                    };
                    counts[slot] += 1;
                }
            }
        }
        let total = counts.iter().sum::<u64>().max(1) as f64;
        CauseStats {
            blocked: counts[0] as f64 / total,
            waiting: counts[1] as f64 / total,
            sleeping: counts[2] as f64 / total,
            runnable: counts[3] as f64 / total,
        }
    }

    /// Partition over all traced episodes (upper Fig 8 graph).
    pub fn of_all(session: &AnalysisSession) -> CauseStats {
        CauseStats::of(session, session.episodes())
    }

    /// Partition over perceptible episodes (lower Fig 8 graph).
    pub fn of_perceptible(session: &AnalysisSession) -> CauseStats {
        let perceptible: Vec<&Episode> = session.perceptible_episodes().collect();
        CauseStats::of(session, perceptible)
    }

    /// The synchronization share (blocked + waiting) the paper discusses.
    pub fn synchronization(&self) -> f64 {
        self.blocked + self.waiting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn episode_with_states(id: u32, start: u64, dur: u64, states: &[ThreadState]) -> Episode {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(start)).unwrap();
        t.exit(ms(start + dur)).unwrap();
        let mut eb = EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
            .tree(t.finish().unwrap());
        for (i, &state) in states.iter().enumerate() {
            eb = eb.sample(SampleSnapshot::new(
                ms(start + 1 + i as u64),
                vec![ThreadSample::new(ThreadId::from_raw(0), state, vec![])],
            ));
        }
        eb.build().unwrap()
    }

    fn session(episodes: Vec<Episode>) -> AnalysisSession {
        let meta = SessionMeta {
            application: "C".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(100),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        for e in episodes {
            b.push_episode(e).unwrap();
        }
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn partition_fractions() {
        use ThreadState::*;
        let s = session(vec![episode_with_states(
            0,
            0,
            50,
            &[
                Runnable, Runnable, Blocked, Waiting, Sleeping, Runnable, Waiting, Runnable,
            ],
        )]);
        let c = CauseStats::of_all(&s);
        assert!((c.blocked - 0.125).abs() < 1e-12);
        assert!((c.waiting - 0.25).abs() < 1e-12);
        assert!((c.sleeping - 0.125).abs() < 1e-12);
        assert!((c.runnable - 0.5).abs() < 1e-12);
        assert!((c.blocked + c.waiting + c.sleeping + c.runnable - 1.0).abs() < 1e-12);
        assert!((c.synchronization() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn only_gui_thread_counted() {
        use ThreadState::*;
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.exit(ms(50)).unwrap();
        let e = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .sample(SampleSnapshot::new(
                ms(10),
                vec![
                    ThreadSample::new(ThreadId::from_raw(0), Runnable, vec![]),
                    ThreadSample::new(ThreadId::from_raw(1), Sleeping, vec![]),
                ],
            ))
            .build()
            .unwrap();
        let s = session(vec![e]);
        let c = CauseStats::of_all(&s);
        assert_eq!(c.sleeping, 0.0, "background sleep must not count");
        assert!((c.runnable - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perceptible_scope_differs() {
        use ThreadState::*;
        let s = session(vec![
            episode_with_states(0, 0, 50, &[Runnable, Runnable]),
            episode_with_states(1, 100, 300, &[Sleeping, Sleeping, Runnable]),
        ]);
        let all = CauseStats::of_all(&s);
        let perceptible = CauseStats::of_perceptible(&s);
        assert!(perceptible.sleeping > all.sleeping);
        assert!((perceptible.sleeping - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_is_zero() {
        let s = session(vec![]);
        assert_eq!(CauseStats::of_all(&s), CauseStats::default());
    }

    /// Episodes exist but carry zero samples: the partition must stay
    /// all-zero and finite, never 0/0.
    #[test]
    fn sampleless_episodes_are_zero_not_nan() {
        let s = session(vec![
            episode_with_states(0, 0, 50, &[]),
            episode_with_states(1, 100, 50, &[]),
        ]);
        let c = CauseStats::of_all(&s);
        assert_eq!(c, CauseStats::default());
        assert!(c.synchronization().is_finite());
        assert_eq!(c.synchronization(), 0.0);
    }

    /// A session whose every episode falls below the perceptibility
    /// threshold gives the perceptible partition an empty input set;
    /// the fractions must come back zero and finite.
    #[test]
    fn all_imperceptible_session_has_finite_perceptible_partition() {
        use ThreadState::*;
        let s = session(vec![
            episode_with_states(0, 0, 20, &[Runnable]),
            episode_with_states(1, 100, 30, &[Blocked]),
        ]);
        assert_eq!(s.perceptible_episodes().count(), 0, "fixture went stale");
        let c = CauseStats::of_perceptible(&s);
        assert_eq!(c, CauseStats::default());
        assert!(c.synchronization().is_finite());
    }
}
