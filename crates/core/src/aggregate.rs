//! Aggregation of per-session results into per-application rows.
//!
//! Every row in the paper's Table III and every per-application bar in
//! Figs 3–8 is the average over the four sessions recorded for that
//! application; this module implements exactly that averaging.

use crate::causes::CauseStats;
use crate::concurrency::ConcurrencyStats;
use crate::location::LocationStats;
use crate::occurrence::OccurrenceBreakdown;
use crate::stats::SessionStats;
use crate::trigger::TriggerBreakdown;

/// The averaged per-application analysis results.
#[derive(Clone, Debug, Default)]
pub struct AppAggregate {
    /// Application name.
    pub name: String,
    /// Number of sessions aggregated.
    pub sessions: usize,
    /// Averaged Table III row.
    pub stats: AveragedStats,
    /// Summed trigger breakdown over all episodes.
    pub trigger_all: TriggerBreakdown,
    /// Summed trigger breakdown over perceptible episodes.
    pub trigger_perceptible: TriggerBreakdown,
    /// Summed occurrence breakdown over patterns.
    pub occurrence: OccurrenceBreakdown,
    /// Averaged location shares over all episodes.
    pub location_all: LocationStats,
    /// Averaged location shares over perceptible episodes.
    pub location_perceptible: LocationStats,
    /// Averaged cause partition over all episodes.
    pub causes_all: CauseStats,
    /// Averaged cause partition over perceptible episodes.
    pub causes_perceptible: CauseStats,
    /// Averaged concurrency (all, perceptible).
    pub concurrency: ConcurrencyStats,
    /// Averaged Fig 3 curve, resampled on a common grid of pattern
    /// fractions (x) with mean episode coverage (y).
    pub coverage_curve: Vec<(f64, f64)>,
}

/// Table III columns averaged over sessions (floating point where the
/// paper rounds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AveragedStats {
    /// Mean end-to-end seconds.
    pub e2e_secs: f64,
    /// Mean in-episode fraction.
    pub in_episode_fraction: f64,
    /// Mean filtered-episode count.
    pub short_count: f64,
    /// Mean traced-episode count.
    pub traced_count: f64,
    /// Mean perceptible-episode count.
    pub perceptible_count: f64,
    /// Mean perceptible episodes per in-episode minute.
    pub long_per_minute: f64,
    /// Mean distinct patterns.
    pub distinct_patterns: f64,
    /// Mean episodes in patterns.
    pub episodes_in_patterns: f64,
    /// Mean singleton fraction.
    pub singleton_fraction: f64,
    /// Mean tree size.
    pub mean_tree_size: f64,
    /// Mean tree depth.
    pub mean_tree_depth: f64,
}

impl AveragedStats {
    /// Averages a set of session rows.
    pub fn over(rows: &[SessionStats]) -> AveragedStats {
        let n = rows.len().max(1) as f64;
        let mut out = AveragedStats::default();
        for r in rows {
            out.e2e_secs += r.end_to_end.as_secs_f64();
            out.in_episode_fraction += r.in_episode_fraction;
            out.short_count += r.short_count as f64;
            out.traced_count += r.traced_count as f64;
            out.perceptible_count += r.perceptible_count as f64;
            out.long_per_minute += r.long_per_minute;
            out.distinct_patterns += r.distinct_patterns as f64;
            out.episodes_in_patterns += r.episodes_in_patterns as f64;
            out.singleton_fraction += r.singleton_fraction;
            out.mean_tree_size += r.mean_tree_size;
            out.mean_tree_depth += r.mean_tree_depth;
        }
        out.e2e_secs /= n;
        out.in_episode_fraction /= n;
        out.short_count /= n;
        out.traced_count /= n;
        out.perceptible_count /= n;
        out.long_per_minute /= n;
        out.distinct_patterns /= n;
        out.episodes_in_patterns /= n;
        out.singleton_fraction /= n;
        out.mean_tree_size /= n;
        out.mean_tree_depth /= n;
        out
    }
}

/// Element-wise sum of trigger breakdowns.
pub fn sum_triggers(parts: &[TriggerBreakdown]) -> TriggerBreakdown {
    let mut out = TriggerBreakdown::default();
    for p in parts {
        out.input += p.input;
        out.output += p.output;
        out.asynchronous += p.asynchronous;
        out.unspecified += p.unspecified;
    }
    out
}

/// Element-wise sum of occurrence breakdowns.
pub fn sum_occurrences(parts: &[OccurrenceBreakdown]) -> OccurrenceBreakdown {
    let mut out = OccurrenceBreakdown::default();
    for p in parts {
        out.always += p.always;
        out.sometimes += p.sometimes;
        out.once += p.once;
        out.never += p.never;
    }
    out
}

/// Mean of location stats.
pub fn mean_locations(parts: &[LocationStats]) -> LocationStats {
    let n = parts.len().max(1) as f64;
    let mut out = LocationStats::default();
    for p in parts {
        out.library += p.library;
        out.application += p.application;
        out.gc += p.gc;
        out.native += p.native;
    }
    out.library /= n;
    out.application /= n;
    out.gc /= n;
    out.native /= n;
    out
}

/// Mean of cause stats.
pub fn mean_causes(parts: &[CauseStats]) -> CauseStats {
    let n = parts.len().max(1) as f64;
    let mut out = CauseStats::default();
    for p in parts {
        out.blocked += p.blocked;
        out.waiting += p.waiting;
        out.sleeping += p.sleeping;
        out.runnable += p.runnable;
    }
    out.blocked /= n;
    out.waiting /= n;
    out.sleeping /= n;
    out.runnable /= n;
    out
}

/// Mean of concurrency stats.
pub fn mean_concurrency(parts: &[ConcurrencyStats]) -> ConcurrencyStats {
    let n = parts.len().max(1) as f64;
    let mut out = ConcurrencyStats::default();
    for p in parts {
        out.all += p.all;
        out.perceptible += p.perceptible;
    }
    out.all /= n;
    out.perceptible /= n;
    out
}

/// Resamples several Fig 3 curves onto a common 100-point grid and
/// averages them. Each input curve must be sorted by x.
pub fn mean_coverage_curves(curves: &[Vec<(f64, f64)>]) -> Vec<(f64, f64)> {
    if curves.is_empty() {
        return Vec::new();
    }
    let grid: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
    grid.iter()
        .map(|&x| {
            let mean_y: f64 = curves
                .iter()
                .map(|curve| sample_curve(curve, x))
                .sum::<f64>()
                / curves.len() as f64;
            (x, mean_y)
        })
        .collect()
}

/// Step-samples a monotone curve at `x` (coverage is a step function of
/// pattern count).
fn sample_curve(curve: &[(f64, f64)], x: f64) -> f64 {
    let mut y = 0.0;
    for &(cx, cy) in curve {
        if cx <= x + 1e-12 {
            y = cy;
        } else {
            break;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::DurationNs;

    fn row(traced: u64, perceptible: u64) -> SessionStats {
        SessionStats {
            end_to_end: DurationNs::from_secs(100),
            in_episode_fraction: 0.2,
            short_count: 1000,
            traced_count: traced,
            perceptible_count: perceptible,
            long_per_minute: 10.0,
            distinct_patterns: 50,
            episodes_in_patterns: traced - 5,
            singleton_fraction: 0.5,
            mean_tree_size: 8.0,
            mean_tree_depth: 5.0,
        }
    }

    #[test]
    fn averaging_rows() {
        let avg = AveragedStats::over(&[row(100, 10), row(200, 30)]);
        assert!((avg.traced_count - 150.0).abs() < 1e-12);
        assert!((avg.perceptible_count - 20.0).abs() < 1e-12);
        assert!((avg.e2e_secs - 100.0).abs() < 1e-12);
        assert!((avg.episodes_in_patterns - 145.0).abs() < 1e-12);
    }

    #[test]
    fn empty_average_is_default() {
        assert_eq!(AveragedStats::over(&[]), AveragedStats::default());
    }

    #[test]
    fn trigger_and_occurrence_sums() {
        use crate::occurrence::OccurrenceBreakdown;
        use crate::trigger::TriggerBreakdown;
        let t = sum_triggers(&[
            TriggerBreakdown {
                input: 1,
                output: 2,
                asynchronous: 3,
                unspecified: 4,
            },
            TriggerBreakdown {
                input: 10,
                output: 20,
                asynchronous: 30,
                unspecified: 40,
            },
        ]);
        assert_eq!(t.input, 11);
        assert_eq!(t.total(), 110);
        let o = sum_occurrences(&[
            OccurrenceBreakdown {
                always: 1,
                sometimes: 1,
                once: 1,
                never: 1,
            },
            OccurrenceBreakdown {
                always: 2,
                sometimes: 0,
                once: 0,
                never: 2,
            },
        ]);
        assert_eq!(o.always, 3);
        assert_eq!(o.total(), 8);
    }

    #[test]
    fn mean_structs() {
        let l = mean_locations(&[
            LocationStats {
                library: 0.2,
                application: 0.8,
                gc: 0.1,
                native: 0.0,
            },
            LocationStats {
                library: 0.4,
                application: 0.6,
                gc: 0.3,
                native: 0.2,
            },
        ]);
        assert!((l.library - 0.3).abs() < 1e-12);
        assert!((l.gc - 0.2).abs() < 1e-12);

        let c = mean_causes(&[
            CauseStats {
                blocked: 0.1,
                waiting: 0.1,
                sleeping: 0.1,
                runnable: 0.7,
            },
            CauseStats {
                blocked: 0.3,
                waiting: 0.1,
                sleeping: 0.1,
                runnable: 0.5,
            },
        ]);
        assert!((c.blocked - 0.2).abs() < 1e-12);
        assert!((c.runnable - 0.6).abs() < 1e-12);

        let k = mean_concurrency(&[
            ConcurrencyStats {
                all: 1.0,
                perceptible: 0.8,
            },
            ConcurrencyStats {
                all: 1.4,
                perceptible: 1.0,
            },
        ]);
        assert!((k.all - 1.2).abs() < 1e-12);
        assert!((k.perceptible - 0.9).abs() < 1e-12);
    }

    #[test]
    fn coverage_resampling() {
        // Single pattern covering everything: a step at x=1.
        let a = vec![(1.0, 1.0)];
        // Two patterns: 80% at half the patterns, 100% at all.
        let b = vec![(0.5, 0.8), (1.0, 1.0)];
        let mean = mean_coverage_curves(&[a, b]);
        assert_eq!(mean.len(), 100);
        // At x=0.5 curve a contributes 0, curve b contributes 0.8.
        let at_half = mean.iter().find(|(x, _)| (*x - 0.5).abs() < 1e-9).unwrap();
        assert!((at_half.1 - 0.4).abs() < 1e-9);
        let last = mean.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
        assert!(mean_coverage_curves(&[]).is_empty());
    }
}
