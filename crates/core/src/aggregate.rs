//! Aggregation of per-session results into per-application rows.
//!
//! Every row in the paper's Table III and every per-application bar in
//! Figs 3–8 is the average over the four sessions recorded for that
//! application; this module implements exactly that averaging.

use lagalyzer_model::{CodeOrigin, DurationNs, IntervalKind, OriginClassifier, ThreadState};

use crate::causes::CauseStats;
use crate::concurrency::ConcurrencyStats;
use crate::location::LocationStats;
use crate::occurrence::OccurrenceBreakdown;
use crate::parallel;
use crate::session::AnalysisSession;
use crate::stats::SessionStats;
use crate::trigger::{Trigger, TriggerBreakdown};

/// The averaged per-application analysis results.
#[derive(Clone, Debug, Default)]
pub struct AppAggregate {
    /// Application name.
    pub name: String,
    /// Number of sessions aggregated.
    pub sessions: usize,
    /// Averaged Table III row.
    pub stats: AveragedStats,
    /// Summed trigger breakdown over all episodes.
    pub trigger_all: TriggerBreakdown,
    /// Summed trigger breakdown over perceptible episodes.
    pub trigger_perceptible: TriggerBreakdown,
    /// Summed occurrence breakdown over patterns.
    pub occurrence: OccurrenceBreakdown,
    /// Averaged location shares over all episodes.
    pub location_all: LocationStats,
    /// Averaged location shares over perceptible episodes.
    pub location_perceptible: LocationStats,
    /// Averaged cause partition over all episodes.
    pub causes_all: CauseStats,
    /// Averaged cause partition over perceptible episodes.
    pub causes_perceptible: CauseStats,
    /// Averaged concurrency (all, perceptible).
    pub concurrency: ConcurrencyStats,
    /// Averaged Fig 3 curve, resampled on a common grid of pattern
    /// fractions (x) with mean episode coverage (y).
    pub coverage_curve: Vec<(f64, f64)>,
    /// True when any aggregated session's trace was salvaged from a
    /// damaged file.
    pub salvaged: bool,
}

/// Table III columns averaged over sessions (floating point where the
/// paper rounds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AveragedStats {
    /// Mean end-to-end seconds.
    pub e2e_secs: f64,
    /// Mean in-episode fraction.
    pub in_episode_fraction: f64,
    /// Mean filtered-episode count.
    pub short_count: f64,
    /// Mean traced-episode count.
    pub traced_count: f64,
    /// Mean perceptible-episode count.
    pub perceptible_count: f64,
    /// Mean perceptible episodes per in-episode minute.
    pub long_per_minute: f64,
    /// Mean distinct patterns.
    pub distinct_patterns: f64,
    /// Mean episodes in patterns.
    pub episodes_in_patterns: f64,
    /// Mean singleton fraction.
    pub singleton_fraction: f64,
    /// Mean tree size.
    pub mean_tree_size: f64,
    /// Mean tree depth.
    pub mean_tree_depth: f64,
}

impl AveragedStats {
    /// Averages a set of session rows.
    pub fn over(rows: &[SessionStats]) -> AveragedStats {
        let n = rows.len().max(1) as f64;
        let mut out = AveragedStats::default();
        for r in rows {
            out.e2e_secs += r.end_to_end.as_secs_f64();
            out.in_episode_fraction += r.in_episode_fraction;
            out.short_count += r.short_count as f64;
            out.traced_count += r.traced_count as f64;
            out.perceptible_count += r.perceptible_count as f64;
            out.long_per_minute += r.long_per_minute;
            out.distinct_patterns += r.distinct_patterns as f64;
            out.episodes_in_patterns += r.episodes_in_patterns as f64;
            out.singleton_fraction += r.singleton_fraction;
            out.mean_tree_size += r.mean_tree_size;
            out.mean_tree_depth += r.mean_tree_depth;
        }
        out.e2e_secs /= n;
        out.in_episode_fraction /= n;
        out.short_count /= n;
        out.traced_count /= n;
        out.perceptible_count /= n;
        out.long_per_minute /= n;
        out.distinct_patterns /= n;
        out.episodes_in_patterns /= n;
        out.singleton_fraction /= n;
        out.mean_tree_size /= n;
        out.mean_tree_depth /= n;
        out
    }
}

/// Raw sample/time tallies behind one [`LocationStats`] scope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct LocationAccum {
    lib_samples: u64,
    app_samples: u64,
    total_time: DurationNs,
    gc_time: DurationNs,
    native_time: DurationNs,
}

impl LocationAccum {
    fn merge(&mut self, other: &LocationAccum) {
        self.lib_samples += other.lib_samples;
        self.app_samples += other.app_samples;
        self.total_time += other.total_time;
        self.gc_time += other.gc_time;
        self.native_time += other.native_time;
    }

    /// Exactly [`LocationStats::of`]'s normalization.
    fn finalize(&self) -> LocationStats {
        let samples = (self.lib_samples + self.app_samples).max(1) as f64;
        LocationStats {
            library: self.lib_samples as f64 / samples,
            application: self.app_samples as f64 / samples,
            gc: self
                .gc_time
                .fraction_of(self.total_time.max(DurationNs::from_nanos(1))),
            native: self
                .native_time
                .fraction_of(self.total_time.max(DurationNs::from_nanos(1))),
        }
    }
}

/// Raw sample tallies behind one [`ConcurrencyStats`] scope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct ConcurrencyAccum {
    samples: u64,
    runnable: u64,
}

impl ConcurrencyAccum {
    fn merge(&mut self, other: &ConcurrencyAccum) {
        self.samples += other.samples;
        self.runnable += other.runnable;
    }

    /// Exactly [`crate::concurrency::concurrency_over`]'s normalization.
    fn finalize(&self) -> f64 {
        if self.samples > 0 {
            self.runnable as f64 / self.samples as f64
        } else {
            0.0
        }
    }
}

/// The mergeable accumulator behind a session's Fig 5–8 characterization
/// (triggers, locations, causes, concurrency — each over all episodes and
/// over perceptible episodes).
///
/// Every field is an exact tally (episode counts, sample counts,
/// nanosecond sums), normalized to floating point only in the finalizers.
/// Two tables built from disjoint episode shards therefore
/// [`merge`](CharacterizationTable::merge) without loss, and
/// [`characterize_with_jobs`] produces results byte-identical to the
/// serial single-pass analyses ([`TriggerBreakdown::of_all`],
/// [`LocationStats::of_all`], [`CauseStats::of_all`],
/// [`crate::concurrency::concurrency_stats`], and their perceptible
/// variants) for any job count.
#[derive(Clone, Debug, Default)]
pub struct CharacterizationTable {
    trigger_all: TriggerBreakdown,
    trigger_perceptible: TriggerBreakdown,
    location_all: LocationAccum,
    location_perceptible: LocationAccum,
    /// Blocked / waiting / sleeping / runnable sample counts.
    causes_all: [u64; 4],
    causes_perceptible: [u64; 4],
    concurrency_all: ConcurrencyAccum,
    concurrency_perceptible: ConcurrencyAccum,
    perceptible_episodes: u64,
    episodes: u64,
    salvaged: bool,
}

impl CharacterizationTable {
    /// Tallies one shard of `session`'s episodes into a fresh table.
    pub fn scan(
        session: &AnalysisSession,
        range: std::ops::Range<usize>,
        classifier: &OriginClassifier,
    ) -> CharacterizationTable {
        let symbols = session.trace().symbols();
        let threshold = session.perceptible_threshold();
        let mut t = CharacterizationTable {
            salvaged: session.is_salvaged(),
            ..CharacterizationTable::default()
        };
        for episode in &session.episodes()[range] {
            let perceptible = episode.is_perceptible(threshold);
            t.episodes += 1;
            t.perceptible_episodes += u64::from(perceptible);

            let trigger_slot = |b: &mut TriggerBreakdown| match Trigger::of_episode(episode) {
                Trigger::Input => b.input += 1,
                Trigger::Output => b.output += 1,
                Trigger::Asynchronous => b.asynchronous += 1,
                Trigger::Unspecified => b.unspecified += 1,
            };
            trigger_slot(&mut t.trigger_all);

            let mut location = LocationAccum {
                total_time: episode.duration(),
                gc_time: episode.tree().outermost_kind_time(IntervalKind::Gc),
                native_time: episode.tree().outermost_kind_time(IntervalKind::Native),
                ..LocationAccum::default()
            };
            let mut causes = [0u64; 4];
            let mut concurrency = ConcurrencyAccum::default();
            for snap in episode.samples() {
                concurrency.samples += 1;
                concurrency.runnable += snap.runnable_count() as u64;
                if let Some(ts) = snap.thread(episode.thread()) {
                    match ts.top_origin(symbols, classifier) {
                        CodeOrigin::RuntimeLibrary => location.lib_samples += 1,
                        CodeOrigin::Application => location.app_samples += 1,
                    }
                    causes[match ts.state {
                        ThreadState::Blocked => 0,
                        ThreadState::Waiting => 1,
                        ThreadState::Sleeping => 2,
                        ThreadState::Runnable => 3,
                    }] += 1;
                }
            }
            t.location_all.merge(&location);
            for (slot, n) in t.causes_all.iter_mut().zip(causes) {
                *slot += n;
            }
            t.concurrency_all.merge(&concurrency);
            if perceptible {
                trigger_slot(&mut t.trigger_perceptible);
                t.location_perceptible.merge(&location);
                for (slot, n) in t.causes_perceptible.iter_mut().zip(causes) {
                    *slot += n;
                }
                t.concurrency_perceptible.merge(&concurrency);
            }
        }
        t
    }

    /// Folds another shard's tallies into this table (exact and
    /// order-independent).
    pub fn merge(&mut self, other: &CharacterizationTable) {
        for (a, b) in [
            (&mut self.trigger_all, &other.trigger_all),
            (&mut self.trigger_perceptible, &other.trigger_perceptible),
        ] {
            a.input += b.input;
            a.output += b.output;
            a.asynchronous += b.asynchronous;
            a.unspecified += b.unspecified;
        }
        self.location_all.merge(&other.location_all);
        self.location_perceptible.merge(&other.location_perceptible);
        for (slot, n) in self.causes_all.iter_mut().zip(other.causes_all) {
            *slot += n;
        }
        for (slot, n) in self
            .causes_perceptible
            .iter_mut()
            .zip(other.causes_perceptible)
        {
            *slot += n;
        }
        self.concurrency_all.merge(&other.concurrency_all);
        self.concurrency_perceptible
            .merge(&other.concurrency_perceptible);
        self.perceptible_episodes += other.perceptible_episodes;
        self.episodes += other.episodes;
        self.salvaged |= other.salvaged;
    }

    /// Trigger breakdown over all episodes (Fig 5, upper graph).
    pub fn trigger_all(&self) -> TriggerBreakdown {
        self.trigger_all
    }

    /// Trigger breakdown over perceptible episodes (Fig 5, lower graph).
    pub fn trigger_perceptible(&self) -> TriggerBreakdown {
        self.trigger_perceptible
    }

    /// Location shares over all episodes (Fig 6, upper graph).
    pub fn location_all(&self) -> LocationStats {
        self.location_all.finalize()
    }

    /// Location shares over perceptible episodes (Fig 6, lower graph).
    pub fn location_perceptible(&self) -> LocationStats {
        self.location_perceptible.finalize()
    }

    /// Cause partition over all episodes (Fig 8, upper graph).
    pub fn causes_all(&self) -> CauseStats {
        finalize_causes(&self.causes_all)
    }

    /// Cause partition over perceptible episodes (Fig 8, lower graph).
    pub fn causes_perceptible(&self) -> CauseStats {
        finalize_causes(&self.causes_perceptible)
    }

    /// The Fig 7 concurrency pair.
    pub fn concurrency(&self) -> ConcurrencyStats {
        ConcurrencyStats {
            all: self.concurrency_all.finalize(),
            perceptible: self.concurrency_perceptible.finalize(),
        }
    }

    /// Episodes tallied so far.
    pub fn episode_count(&self) -> u64 {
        self.episodes
    }

    /// Perceptible episodes tallied so far.
    pub fn perceptible_count(&self) -> u64 {
        self.perceptible_episodes
    }

    /// True when any tallied session's trace was salvaged from a damaged
    /// file — the characterization may rest on an incomplete population.
    pub fn salvaged(&self) -> bool {
        self.salvaged
    }
}

/// Exactly [`CauseStats::of`]'s normalization.
fn finalize_causes(counts: &[u64; 4]) -> CauseStats {
    let total = counts.iter().sum::<u64>().max(1) as f64;
    CauseStats {
        blocked: counts[0] as f64 / total,
        waiting: counts[1] as f64 / total,
        sleeping: counts[2] as f64 / total,
        runnable: counts[3] as f64 / total,
    }
}

/// Characterizes one session (Figs 5–8) on up to `jobs` worker threads by
/// sharding its episodes; byte-identical to the serial analyses for any
/// job count (see [`CharacterizationTable`]).
pub fn characterize_with_jobs(
    session: &AnalysisSession,
    classifier: &OriginClassifier,
    jobs: usize,
) -> CharacterizationTable {
    let shards = parallel::map_shards(session.episodes().len(), jobs, |range| {
        CharacterizationTable::scan(session, range, classifier)
    });
    let mut merged = CharacterizationTable::default();
    for shard in &shards {
        merged.merge(shard);
    }
    merged
}

/// Element-wise sum of trigger breakdowns.
pub fn sum_triggers(parts: &[TriggerBreakdown]) -> TriggerBreakdown {
    let mut out = TriggerBreakdown::default();
    for p in parts {
        out.input += p.input;
        out.output += p.output;
        out.asynchronous += p.asynchronous;
        out.unspecified += p.unspecified;
    }
    out
}

/// Element-wise sum of occurrence breakdowns.
pub fn sum_occurrences(parts: &[OccurrenceBreakdown]) -> OccurrenceBreakdown {
    let mut out = OccurrenceBreakdown::default();
    for p in parts {
        out.always += p.always;
        out.sometimes += p.sometimes;
        out.once += p.once;
        out.never += p.never;
    }
    out
}

/// Mean of location stats.
pub fn mean_locations(parts: &[LocationStats]) -> LocationStats {
    let n = parts.len().max(1) as f64;
    let mut out = LocationStats::default();
    for p in parts {
        out.library += p.library;
        out.application += p.application;
        out.gc += p.gc;
        out.native += p.native;
    }
    out.library /= n;
    out.application /= n;
    out.gc /= n;
    out.native /= n;
    out
}

/// Mean of cause stats.
pub fn mean_causes(parts: &[CauseStats]) -> CauseStats {
    let n = parts.len().max(1) as f64;
    let mut out = CauseStats::default();
    for p in parts {
        out.blocked += p.blocked;
        out.waiting += p.waiting;
        out.sleeping += p.sleeping;
        out.runnable += p.runnable;
    }
    out.blocked /= n;
    out.waiting /= n;
    out.sleeping /= n;
    out.runnable /= n;
    out
}

/// Mean of concurrency stats.
pub fn mean_concurrency(parts: &[ConcurrencyStats]) -> ConcurrencyStats {
    let n = parts.len().max(1) as f64;
    let mut out = ConcurrencyStats::default();
    for p in parts {
        out.all += p.all;
        out.perceptible += p.perceptible;
    }
    out.all /= n;
    out.perceptible /= n;
    out
}

/// Resamples several Fig 3 curves onto a common 100-point grid and
/// averages them. Each input curve must be sorted by x.
pub fn mean_coverage_curves(curves: &[Vec<(f64, f64)>]) -> Vec<(f64, f64)> {
    if curves.is_empty() {
        return Vec::new();
    }
    let grid: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
    grid.iter()
        .map(|&x| {
            let mean_y: f64 = curves
                .iter()
                .map(|curve| sample_curve(curve, x))
                .sum::<f64>()
                / curves.len() as f64;
            (x, mean_y)
        })
        .collect()
}

/// Step-samples a monotone curve at `x` (coverage is a step function of
/// pattern count).
fn sample_curve(curve: &[(f64, f64)], x: f64) -> f64 {
    let mut y = 0.0;
    for &(cx, cy) in curve {
        if cx <= x + 1e-12 {
            y = cy;
        } else {
            break;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::DurationNs;

    fn row(traced: u64, perceptible: u64) -> SessionStats {
        SessionStats {
            end_to_end: DurationNs::from_secs(100),
            in_episode_fraction: 0.2,
            short_count: 1000,
            traced_count: traced,
            perceptible_count: perceptible,
            long_per_minute: 10.0,
            distinct_patterns: 50,
            episodes_in_patterns: traced - 5,
            singleton_fraction: 0.5,
            mean_tree_size: 8.0,
            mean_tree_depth: 5.0,
        }
    }

    #[test]
    fn averaging_rows() {
        let avg = AveragedStats::over(&[row(100, 10), row(200, 30)]);
        assert!((avg.traced_count - 150.0).abs() < 1e-12);
        assert!((avg.perceptible_count - 20.0).abs() < 1e-12);
        assert!((avg.e2e_secs - 100.0).abs() < 1e-12);
        assert!((avg.episodes_in_patterns - 145.0).abs() < 1e-12);
    }

    #[test]
    fn empty_average_is_default() {
        assert_eq!(AveragedStats::over(&[]), AveragedStats::default());
    }

    #[test]
    fn trigger_and_occurrence_sums() {
        use crate::occurrence::OccurrenceBreakdown;
        use crate::trigger::TriggerBreakdown;
        let t = sum_triggers(&[
            TriggerBreakdown {
                input: 1,
                output: 2,
                asynchronous: 3,
                unspecified: 4,
            },
            TriggerBreakdown {
                input: 10,
                output: 20,
                asynchronous: 30,
                unspecified: 40,
            },
        ]);
        assert_eq!(t.input, 11);
        assert_eq!(t.total(), 110);
        let o = sum_occurrences(&[
            OccurrenceBreakdown {
                always: 1,
                sometimes: 1,
                once: 1,
                never: 1,
            },
            OccurrenceBreakdown {
                always: 2,
                sometimes: 0,
                once: 0,
                never: 2,
            },
        ]);
        assert_eq!(o.always, 3);
        assert_eq!(o.total(), 8);
    }

    #[test]
    fn mean_structs() {
        let l = mean_locations(&[
            LocationStats {
                library: 0.2,
                application: 0.8,
                gc: 0.1,
                native: 0.0,
            },
            LocationStats {
                library: 0.4,
                application: 0.6,
                gc: 0.3,
                native: 0.2,
            },
        ]);
        assert!((l.library - 0.3).abs() < 1e-12);
        assert!((l.gc - 0.2).abs() < 1e-12);

        let c = mean_causes(&[
            CauseStats {
                blocked: 0.1,
                waiting: 0.1,
                sleeping: 0.1,
                runnable: 0.7,
            },
            CauseStats {
                blocked: 0.3,
                waiting: 0.1,
                sleeping: 0.1,
                runnable: 0.5,
            },
        ]);
        assert!((c.blocked - 0.2).abs() < 1e-12);
        assert!((c.runnable - 0.6).abs() < 1e-12);

        let k = mean_concurrency(&[
            ConcurrencyStats {
                all: 1.0,
                perceptible: 0.8,
            },
            ConcurrencyStats {
                all: 1.4,
                perceptible: 1.0,
            },
        ]);
        assert!((k.all - 1.2).abs() < 1e-12);
        assert!((k.perceptible - 0.9).abs() < 1e-12);
    }

    #[test]
    fn characterization_table_matches_serial_analyses_exactly() {
        use crate::session::AnalysisConfig;
        use lagalyzer_sim::{apps, runner};
        let session = AnalysisSession::new(
            runner::simulate_session(&apps::crossword_sage(), 0, 42),
            AnalysisConfig::default(),
        );
        let classifier = OriginClassifier::java_default();
        for jobs in [1usize, 2, 7] {
            let table = characterize_with_jobs(&session, &classifier, jobs);
            // Exact (not approximate) equality: the parallel pipeline must
            // be byte-identical to the serial analyses.
            assert_eq!(table.trigger_all(), TriggerBreakdown::of_all(&session));
            assert_eq!(
                table.trigger_perceptible(),
                TriggerBreakdown::of_perceptible(&session)
            );
            assert_eq!(
                table.location_all(),
                LocationStats::of_all(&session, &classifier)
            );
            assert_eq!(
                table.location_perceptible(),
                LocationStats::of_perceptible(&session, &classifier)
            );
            assert_eq!(table.causes_all(), CauseStats::of_all(&session));
            assert_eq!(
                table.causes_perceptible(),
                CauseStats::of_perceptible(&session)
            );
            assert_eq!(
                table.concurrency(),
                crate::concurrency::concurrency_stats(&session)
            );
            assert_eq!(
                table.perceptible_count(),
                session.perceptible_episodes().count() as u64
            );
            assert_eq!(table.episode_count(), session.episodes().len() as u64);
        }
    }

    #[test]
    fn characterization_merge_is_exact() {
        use crate::session::AnalysisConfig;
        use lagalyzer_sim::{apps, runner};
        let session = AnalysisSession::new(
            runner::simulate_session(&apps::jedit(), 1, 7),
            AnalysisConfig::default(),
        );
        let classifier = OriginClassifier::java_default();
        let n = session.episodes().len();
        let whole = CharacterizationTable::scan(&session, 0..n, &classifier);
        let mut pieces = CharacterizationTable::scan(&session, 0..n / 3, &classifier);
        pieces.merge(&CharacterizationTable::scan(
            &session,
            n / 3..2 * n / 3,
            &classifier,
        ));
        pieces.merge(&CharacterizationTable::scan(
            &session,
            2 * n / 3..n,
            &classifier,
        ));
        assert_eq!(pieces.trigger_all(), whole.trigger_all());
        assert_eq!(pieces.location_all(), whole.location_all());
        assert_eq!(pieces.causes_perceptible(), whole.causes_perceptible());
        assert_eq!(pieces.concurrency(), whole.concurrency());
        assert_eq!(pieces.episode_count(), whole.episode_count());
    }

    #[test]
    fn coverage_resampling() {
        // Single pattern covering everything: a step at x=1.
        let a = vec![(1.0, 1.0)];
        // Two patterns: 80% at half the patterns, 100% at all.
        let b = vec![(0.5, 0.8), (1.0, 1.0)];
        let mean = mean_coverage_curves(&[a, b]);
        assert_eq!(mean.len(), 100);
        // At x=0.5 curve a contributes 0, curve b contributes 0.8.
        let at_half = mean.iter().find(|(x, _)| (*x - 0.5).abs() < 1e-9).unwrap();
        assert!((at_half.1 - 0.4).abs() < 1e-9);
        let last = mean.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
        assert!(mean_coverage_curves(&[]).is_empty());
    }
}
