//! Trigger classification of episodes (the paper's Fig 5).
//!
//! The trigger of an episode is determined by a pre-order traversal of its
//! interval tree: the type of the first `listener`, `paint`, or `async`
//! interval decides — listener means input, paint means output, async
//! means an asynchronous notification. Episodes with none of these (no
//! children, or only children below the tracer's filter) are unspecified.
//!
//! One quirk (paper §IV-C footnote): the Swing repaint manager enqueues
//! repaint requests in a way that produces an `async` interval containing a
//! `paint` interval even though no background thread is involved. Such
//! episodes are reclassified as output.

use lagalyzer_model::{Episode, IntervalKind, IntervalTree, NodeId};

use crate::session::AnalysisSession;

/// The Fig 5 trigger classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Trigger {
    /// Input handling (listener notification: mouse, keyboard, ...).
    Input,
    /// Output production (rendering to the screen).
    Output,
    /// An asynchronous notification from a background thread.
    Asynchronous,
    /// No trigger interval above the tracing filter.
    Unspecified,
}

impl Trigger {
    /// All classes in Fig 5 order.
    pub const ALL: [Trigger; 4] = [
        Trigger::Input,
        Trigger::Output,
        Trigger::Asynchronous,
        Trigger::Unspecified,
    ];

    /// Display label as used in the figure.
    pub const fn label(self) -> &'static str {
        match self {
            Trigger::Input => "input",
            Trigger::Output => "output",
            Trigger::Asynchronous => "asynchronous",
            Trigger::Unspecified => "unspecified",
        }
    }

    /// Classifies one episode.
    pub fn of_episode(episode: &Episode) -> Trigger {
        let tree = episode.tree();
        for id in tree.pre_order() {
            match tree.interval(id).kind {
                IntervalKind::Listener => return Trigger::Input,
                IntervalKind::Paint => return Trigger::Output,
                IntervalKind::Async => {
                    // Repaint-manager special case: an async interval whose
                    // subtree contains a paint is really an output episode.
                    return if subtree_contains_paint(tree, id) {
                        Trigger::Output
                    } else {
                        Trigger::Asynchronous
                    };
                }
                _ => {}
            }
        }
        Trigger::Unspecified
    }
}

impl std::fmt::Display for Trigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

fn subtree_contains_paint(tree: &IntervalTree, id: NodeId) -> bool {
    tree.pre_order_from(id)
        .skip(1)
        .any(|d| tree.interval(d).kind == IntervalKind::Paint)
}

/// Episode counts per trigger class (one Fig 5 bar).
///
/// ```
/// use lagalyzer_core::prelude::*;
/// use lagalyzer_core::trigger::TriggerBreakdown;
/// use lagalyzer_sim::{apps, runner};
///
/// let session = AnalysisSession::new(
///     runner::simulate_session(&apps::jmol(), 0, 1),
///     AnalysisConfig::default(),
/// );
/// let b = TriggerBreakdown::of_perceptible(&session);
/// // JMol's perceptible lag is almost entirely output (rendering).
/// assert!(b.fractions()[1] > 0.9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TriggerBreakdown {
    /// Input-triggered episodes.
    pub input: u64,
    /// Output-triggered episodes.
    pub output: u64,
    /// Asynchronously triggered episodes.
    pub asynchronous: u64,
    /// Episodes with no visible trigger.
    pub unspecified: u64,
}

impl TriggerBreakdown {
    /// Classifies every episode yielded by `episodes`.
    pub fn of<'a, I: IntoIterator<Item = &'a Episode>>(episodes: I) -> TriggerBreakdown {
        let mut out = TriggerBreakdown::default();
        for e in episodes {
            match Trigger::of_episode(e) {
                Trigger::Input => out.input += 1,
                Trigger::Output => out.output += 1,
                Trigger::Asynchronous => out.asynchronous += 1,
                Trigger::Unspecified => out.unspecified += 1,
            }
        }
        out
    }

    /// Breakdown over all traced episodes (Fig 5, upper graph).
    pub fn of_all(session: &AnalysisSession) -> TriggerBreakdown {
        TriggerBreakdown::of(session.episodes())
    }

    /// Breakdown over perceptible episodes (Fig 5, lower graph).
    pub fn of_perceptible(session: &AnalysisSession) -> TriggerBreakdown {
        TriggerBreakdown::of(session.perceptible_episodes())
    }

    /// Total episodes classified.
    pub fn total(&self) -> u64 {
        self.input + self.output + self.asynchronous + self.unspecified
    }

    /// Class shares in Fig 5 order `[input, output, async, unspecified]`.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total().max(1) as f64;
        [
            self.input as f64 / t,
            self.output as f64 / t,
            self.asynchronous as f64 / t,
            self.unspecified as f64 / t,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn episode_from<F: FnOnce(&mut IntervalTreeBuilder)>(f: F) -> Episode {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        f(&mut b);
        b.exit(ms(1000)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(b.finish().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn listener_first_means_input() {
        let e = episode_from(|b| {
            b.leaf(IntervalKind::Listener, None, ms(1), ms(2)).unwrap();
            b.leaf(IntervalKind::Paint, None, ms(3), ms(4)).unwrap();
        });
        assert_eq!(Trigger::of_episode(&e), Trigger::Input);
    }

    #[test]
    fn paint_first_means_output() {
        let e = episode_from(|b| {
            b.leaf(IntervalKind::Paint, None, ms(1), ms(2)).unwrap();
            b.leaf(IntervalKind::Listener, None, ms(3), ms(4)).unwrap();
        });
        assert_eq!(Trigger::of_episode(&e), Trigger::Output);
    }

    #[test]
    fn async_without_paint_is_asynchronous() {
        let e = episode_from(|b| {
            b.enter(IntervalKind::Async, None, ms(1)).unwrap();
            b.leaf(IntervalKind::Native, None, ms(2), ms(3)).unwrap();
            b.exit(ms(4)).unwrap();
        });
        assert_eq!(Trigger::of_episode(&e), Trigger::Asynchronous);
    }

    #[test]
    fn repaint_manager_async_paint_reclassified_as_output() {
        let e = episode_from(|b| {
            b.enter(IntervalKind::Async, None, ms(1)).unwrap();
            b.leaf(IntervalKind::Paint, None, ms(2), ms(3)).unwrap();
            b.exit(ms(4)).unwrap();
        });
        assert_eq!(Trigger::of_episode(&e), Trigger::Output);
    }

    #[test]
    fn deeply_nested_paint_under_async_still_output() {
        let e = episode_from(|b| {
            b.enter(IntervalKind::Async, None, ms(1)).unwrap();
            b.enter(IntervalKind::Native, None, ms(2)).unwrap();
            b.leaf(IntervalKind::Paint, None, ms(3), ms(4)).unwrap();
            b.exit(ms(5)).unwrap();
            b.exit(ms(6)).unwrap();
        });
        assert_eq!(Trigger::of_episode(&e), Trigger::Output);
    }

    #[test]
    fn bare_dispatch_is_unspecified() {
        let e = episode_from(|_| {});
        assert_eq!(Trigger::of_episode(&e), Trigger::Unspecified);
    }

    #[test]
    fn gc_only_episode_is_unspecified() {
        // Arabeske's System.gc() episodes: a GC child but no trigger.
        let e = episode_from(|b| {
            b.leaf(IntervalKind::Gc, None, ms(1), ms(600)).unwrap();
        });
        assert_eq!(Trigger::of_episode(&e), Trigger::Unspecified);
    }

    #[test]
    fn native_only_episode_is_unspecified() {
        let e = episode_from(|b| {
            b.leaf(IntervalKind::Native, None, ms(1), ms(2)).unwrap();
        });
        assert_eq!(Trigger::of_episode(&e), Trigger::Unspecified);
    }

    #[test]
    fn pre_order_finds_nested_trigger() {
        // The first trigger interval may be nested under a native call.
        let e = episode_from(|b| {
            b.enter(IntervalKind::Native, None, ms(1)).unwrap();
            b.leaf(IntervalKind::Listener, None, ms(2), ms(3)).unwrap();
            b.exit(ms(4)).unwrap();
        });
        assert_eq!(Trigger::of_episode(&e), Trigger::Input);
    }

    #[test]
    fn breakdown_counts_and_fractions() {
        let episodes = [
            episode_from(|b| {
                b.leaf(IntervalKind::Listener, None, ms(1), ms(2)).unwrap();
            }),
            episode_from(|b| {
                b.leaf(IntervalKind::Paint, None, ms(1), ms(2)).unwrap();
            }),
            episode_from(|b| {
                b.leaf(IntervalKind::Paint, None, ms(1), ms(2)).unwrap();
            }),
            episode_from(|_| {}),
        ];
        let breakdown = TriggerBreakdown::of(episodes.iter());
        assert_eq!(breakdown.input, 1);
        assert_eq!(breakdown.output, 2);
        assert_eq!(breakdown.asynchronous, 0);
        assert_eq!(breakdown.unspecified, 1);
        assert_eq!(breakdown.total(), 4);
        let fr = breakdown.fractions();
        assert!((fr[1] - 0.5).abs() < 1e-12);
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(Trigger::Input.to_string(), "input");
        assert_eq!(Trigger::ALL[3].label(), "unspecified");
    }
}
