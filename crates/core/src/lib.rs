//! LagAlyzer — latency profile analysis (the paper's contribution).
//!
//! LagAlyzer is an *offline* tool: it ingests complete session traces
//! produced by a latency profiler (see `lagalyzer-trace`) and mines them
//! for the causes of perceptible lag. This crate implements every analysis
//! in the ISPASS 2010 paper:
//!
//! * [`session`] — the in-memory analysis session wrapping one trace, with
//!   the perceptibility threshold (paper default 100 ms);
//! * [`shape`] — structural tree signatures: interval type + symbolic
//!   information, *excluding* GC nodes and all timing (paper §II-D);
//! * [`intern`] — hash-consing of shape token streams into dense
//!   per-session [`intern::ShapeId`]s (the mining hot path);
//! * [`patterns`] — episode equivalence classes with per-pattern lag
//!   statistics and the Fig 3 cumulative coverage curve;
//! * [`occurrence`] — always / sometimes / once / never classification of
//!   patterns (Fig 4);
//! * [`trigger`] — input / output / async / unspecified classification via
//!   pre-order traversal, including the Swing repaint-manager
//!   reclassification (Fig 5);
//! * [`location`] — application vs runtime-library time from call-stack
//!   samples, GC and native time from intervals (Fig 6);
//! * [`concurrency`] — average number of runnable threads (Fig 7);
//! * [`causes`] — blocked / waiting / sleeping / runnable partition of
//!   GUI-thread samples (Fig 8);
//! * [`stats`] — the Table III overall statistics row;
//! * [`aggregate`] — averaging across an application's sessions;
//! * [`multi`] — merging patterns across several traces (paper §VI:
//!   "integrates multiple traces in its analysis");
//! * [`outliers`] — per-pattern outlier detection with cause attribution
//!   against the pattern centroid (wait edges, GC, native I/O split);
//! * [`parallel`] — the sharded worker pool behind every `*_with_jobs`
//!   entry point; parallel results are byte-identical to serial ones;
//! * [`diff`] — pattern-level regression detection between two sessions
//!   (the before/after loop the paper's workflow implies);
//! * [`histogram`] — Endo-style response-time distributions over a
//!   session (the related-work view of §VI);
//! * [`browser`] — the pattern browser the paper's §II-E describes;
//! * [`rollup`] — building persisted per-episode summary rollups from
//!   decoded traces (the format lives in `lagalyzer_trace::rollup`);
//! * [`warm`] — zero-decode warm analysis over persisted rollups,
//!   byte-identical to the cold path;
//! * [`analysis`] — the extension trait for custom analyses.
//!
//! # Example
//!
//! ```
//! use lagalyzer_core::prelude::*;
//! use lagalyzer_sim::{apps, runner};
//!
//! let trace = runner::simulate_session(&apps::crossword_sage(), 0, 42);
//! let session = AnalysisSession::new(trace, AnalysisConfig::default());
//! let patterns = session.mine_patterns();
//! assert!(patterns.len() > 0);
//! let stats = SessionStats::compute(&session);
//! assert_eq!(stats.traced_count as usize, session.trace().episodes().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod analysis;
pub mod browser;
pub mod causes;
pub mod concurrency;
pub mod diff;
pub mod histogram;
pub mod intern;
pub mod location;
pub mod multi;
pub mod occurrence;
pub mod outliers;
pub mod parallel;
pub mod patterns;
pub mod rollup;
pub mod session;
pub mod shape;
pub mod stats;
pub mod trigger;
pub mod warm;

pub use aggregate::{characterize_with_jobs, AppAggregate, CharacterizationTable};
pub use analysis::Analysis;
pub use browser::PatternBrowser;
pub use causes::CauseStats;
pub use concurrency::concurrency_stats;
pub use diff::{PatternDelta, SessionDiff};
pub use histogram::DurationHistogram;
pub use intern::{ShapeId, ShapeInterner};
pub use location::LocationStats;
pub use multi::{MultiPattern, MultiPatternSet};
pub use occurrence::Occurrence;
pub use outliers::{
    CauseCode, Culprit, LagBreakdown, OutlierConfig, OutlierFinding, OutlierReport,
};
pub use parallel::{available_jobs, map_shards, resolve_jobs};
pub use patterns::{Pattern, PatternSet, PatternTable, SummarizedEpisode};
pub use session::{AnalysisConfig, AnalysisSession, CheckOutcome, Provenance};
pub use shape::ShapeSignature;
pub use stats::SessionStats;
pub use trigger::Trigger;
pub use warm::WarmSession;

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::aggregate::{characterize_with_jobs, AppAggregate, CharacterizationTable};
    pub use crate::analysis::Analysis;
    pub use crate::browser::PatternBrowser;
    pub use crate::causes::CauseStats;
    pub use crate::concurrency::concurrency_stats;
    pub use crate::diff::{PatternDelta, SessionDiff};
    pub use crate::histogram::DurationHistogram;
    pub use crate::intern::{ShapeId, ShapeInterner};
    pub use crate::location::LocationStats;
    pub use crate::multi::{MultiPattern, MultiPatternSet};
    pub use crate::occurrence::Occurrence;
    pub use crate::outliers::{
        CauseCode, Culprit, LagBreakdown, OutlierConfig, OutlierFinding, OutlierReport,
    };
    pub use crate::parallel::{available_jobs, map_shards, resolve_jobs};
    pub use crate::patterns::{Pattern, PatternSet, PatternTable, SummarizedEpisode};
    pub use crate::session::{AnalysisConfig, AnalysisSession, CheckOutcome, Provenance};
    pub use crate::shape::ShapeSignature;
    pub use crate::stats::SessionStats;
    pub use crate::trigger::Trigger;
    pub use crate::warm::WarmSession;
}
