//! Building persisted rollups from decoded traces.
//!
//! The `lagalyzer-trace` crate defines the rollup *format* (see its
//! `rollup` module): per-episode summaries plus derived aggregates,
//! persisted as an optional section next to the episode payloads. This
//! module computes those summaries from a decoded
//! [`SessionTrace`] using the same primitives the cold analysis path
//! uses — [`write_shape_tokens`] for the shape stream, a
//! [`ShapeInterner`] for first-use-order deduplication,
//! [`LagBreakdown::of_episode`] for the per-category decomposition — so a
//! warm analysis reconstructed from the rollup is byte-identical to a
//! cold decode-and-mine pass over the same bytes.
//!
//! The builder does **not** stamp the content checksum: the writer that
//! persists the rollup computes it over the episode record bytes it
//! actually emits (see `lagalyzer_trace::binary::write_with_rollup` and
//! the corpus packers), which is the only place those bytes are known.

use lagalyzer_model::SessionTrace;
use lagalyzer_trace::index::DurationBand;
use lagalyzer_trace::rollup::{
    BandGrid, EpisodeSummary, Rollup, GRID_BANDS, GRID_GRANULARITIES, SHAPE_HIST_BUCKETS,
};

use crate::intern::ShapeInterner;
use crate::outliers::LagBreakdown;
use crate::shape::write_shape_tokens;

/// Computes the full rollup of `trace` (checksum left zero; the persisting
/// writer stamps it). Shapes are deduplicated in first-use order over the
/// episodes, exactly as the mining scan interns them.
pub fn build(trace: &SessionTrace) -> Rollup {
    let symbols = trace.symbols();
    let span = trace.meta().end_to_end.as_nanos();
    let mut interner = ShapeInterner::new();
    let mut scratch: Vec<u8> = Vec::new();
    let mut summaries = Vec::with_capacity(trace.episodes().len());
    let mut shape_histograms: Vec<[u64; SHAPE_HIST_BUCKETS]> = Vec::new();
    let mut grids: Vec<BandGrid> = GRID_GRANULARITIES
        .iter()
        .map(|&buckets| BandGrid {
            buckets,
            counts: vec![0; GRID_BANDS * buckets as usize],
        })
        .collect();
    for episode in trace.episodes() {
        let tree = episode.tree();
        scratch.clear();
        let has_gc = write_shape_tokens(tree, &mut scratch);
        let (id, fresh) = interner.intern(&scratch);
        if fresh {
            shape_histograms.push([0; SHAPE_HIST_BUCKETS]);
        }
        let duration = episode.duration();
        shape_histograms[id.index()][Rollup::hist_bucket(duration.as_nanos())] += 1;
        let band = DurationBand::of(duration) as usize;
        for grid in &mut grids {
            let bucket = Rollup::time_bucket(episode.start().as_nanos(), span, grid.buckets);
            grid.counts[band * grid.buckets as usize + bucket] += 1;
        }
        let breakdown = LagBreakdown::of_episode(episode, symbols);
        summaries.push(EpisodeSummary {
            structureless: episode.is_structureless(),
            has_gc,
            shape: id.index() as u32,
            tree_size: tree.descendant_count(tree.root()) as u64,
            tree_depth: tree.max_depth(),
            breakdown: breakdown.to_array(),
        });
    }
    let shapes = (0..interner.len())
        .map(|i| {
            interner
                .tokens(crate::intern::ShapeId::from_index(i))
                .to_vec()
        })
        .collect();
    Rollup {
        content_checksum: 0,
        shapes,
        summaries,
        grids,
        shape_histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{AnalysisConfig, AnalysisSession};
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn sample_trace() -> SessionTrace {
        let meta = SessionMeta {
            application: "R".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(10),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut cursor = 0u64;
        for (i, (name, dur, gc)) in [("a.A", 50u64, false), ("a.A", 150, true), ("", 30, false)]
            .iter()
            .enumerate()
        {
            let mut t = IntervalTreeBuilder::new();
            t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
            if !name.is_empty() {
                let m = b.symbols_mut().method(name, "run");
                t.enter(IntervalKind::Listener, Some(m), ms(cursor + 1))
                    .unwrap();
                if *gc {
                    t.leaf(IntervalKind::Gc, None, ms(cursor + 2), ms(cursor + 3))
                        .unwrap();
                }
                t.exit(ms(cursor + dur - 1)).unwrap();
            }
            t.exit(ms(cursor + dur)).unwrap();
            b.push_episode(
                EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
                    .tree(t.finish().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
            cursor += dur + 10;
        }
        b.finish()
    }

    #[test]
    fn summaries_mirror_episodes() {
        let trace = sample_trace();
        let rollup = build(&trace);
        assert_eq!(rollup.summaries.len(), 3);
        // The two a.A episodes share a shape (GC excluded from it); the
        // bare dispatch has its own.
        assert_eq!(rollup.shapes.len(), 2);
        assert_eq!(rollup.summaries[0].shape, rollup.summaries[1].shape);
        assert!(rollup.summaries[1].has_gc);
        assert!(!rollup.summaries[0].has_gc);
        assert!(rollup.summaries[2].structureless);
        assert_eq!(rollup.shape_histograms.len(), rollup.shapes.len());
        assert_eq!(rollup.grids.len(), GRID_GRANULARITIES.len());
    }

    #[test]
    fn grids_count_every_episode() {
        let trace = sample_trace();
        let rollup = build(&trace);
        for grid in &rollup.grids {
            let total: u64 = grid.counts.iter().sum();
            assert_eq!(total, 3);
        }
    }

    #[test]
    fn summary_metrics_match_cold_scan() {
        let trace = sample_trace();
        let rollup = build(&trace);
        let session = AnalysisSession::new(trace, AnalysisConfig::default());
        for (summary, episode) in rollup.summaries.iter().zip(session.episodes()) {
            let tree = episode.tree();
            assert_eq!(
                summary.tree_size as usize,
                tree.descendant_count(tree.root())
            );
            assert_eq!(summary.tree_depth, tree.max_depth());
            let breakdown = LagBreakdown::of_episode(episode, session.trace().symbols());
            assert_eq!(summary.breakdown, breakdown.to_array());
        }
    }
}
