//! Episode-duration histograms.
//!
//! The related work the paper builds on (Endo et al., OSDI '96) reports
//! response-time *distributions* — "Word handles 92% of requests in under
//! 100 ms". This module provides that view over a session: logarithmic
//! duration buckets with counts and cumulative fractions, including the
//! episodes the tracer filtered out (which all fall below the first
//! visible bucket but still belong in the distribution).

use lagalyzer_model::{DurationNs, Episode};

use crate::session::AnalysisSession;

/// One histogram bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: DurationNs,
    /// Exclusive upper bound (`DurationNs::from_nanos(u64::MAX)` for the
    /// last bucket).
    pub hi: DurationNs,
    /// Episodes in `[lo, hi)`.
    pub count: u64,
}

/// A logarithmic (powers of two of a millisecond) duration histogram.
///
/// ```
/// use lagalyzer_core::prelude::*;
/// use lagalyzer_sim::{apps, runner};
///
/// let session = AnalysisSession::new(
///     runner::simulate_session(&apps::jedit(), 0, 1),
///     AnalysisConfig::default(),
/// );
/// let histogram = DurationHistogram::of(&session);
/// // jEdit handles the vast majority of requests imperceptibly fast.
/// assert!(histogram.fraction_under(lagalyzer_model::DurationNs::from_millis(128)) > 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct DurationHistogram {
    buckets: Vec<Bucket>,
    filtered: u64,
    total: u64,
}

impl DurationHistogram {
    /// Builds the histogram over all traced episodes of a session. The
    /// tracer-filtered short episodes are accounted as below-range mass.
    pub fn of(session: &AnalysisSession) -> DurationHistogram {
        DurationHistogram::of_durations(
            session.episodes().iter().map(Episode::duration),
            session.trace().short_episode_count(),
        )
    }

    /// Builds the histogram from bare episode durations plus a filtered
    /// count — the warm path supplies durations from indexed extents
    /// without decoding any episode. [`DurationHistogram::of`] is this
    /// over a decoded session.
    pub fn of_durations<I>(durations: I, filtered: u64) -> DurationHistogram
    where
        I: IntoIterator<Item = DurationNs>,
    {
        // Buckets: [0,1ms), [1,2), [2,4), ... up to [8192ms, inf).
        let mut bounds = vec![0u64, 1];
        while *bounds.last().expect("non-empty") < 8192 {
            let last = *bounds.last().expect("non-empty");
            bounds.push(last * 2);
        }
        let mut buckets: Vec<Bucket> = bounds
            .windows(2)
            .map(|w| Bucket {
                lo: DurationNs::from_millis(w[0]),
                hi: DurationNs::from_millis(w[1]),
                count: 0,
            })
            .collect();
        buckets.push(Bucket {
            lo: DurationNs::from_millis(*bounds.last().expect("non-empty")),
            hi: DurationNs::from_nanos(u64::MAX),
            count: 0,
        });
        let mut traced = 0u64;
        for d in durations {
            let idx = buckets
                .iter()
                .position(|b| d >= b.lo && d < b.hi)
                .expect("buckets cover the full range");
            buckets[idx].count += 1;
            traced += 1;
        }
        let total = filtered + traced;
        DurationHistogram {
            buckets,
            filtered,
            total,
        }
    }

    /// The buckets, in ascending duration order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Episodes below the tracer filter (all shorter than the threshold).
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Total episodes including the filtered ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The fraction of all episodes (including filtered ones) handled in
    /// under `threshold` — the Endo-style statistic. Filtered episodes
    /// count as under any threshold at or above the tracer filter.
    pub fn fraction_under(&self, threshold: DurationNs) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let traced_under: u64 = self
            .buckets
            .iter()
            .filter(|b| b.hi <= threshold)
            .map(|b| b.count)
            .sum();
        // Partial bucket: count nothing (conservative) — callers use the
        // bucket bounds as thresholds in practice.
        (self.filtered + traced_under) as f64 / self.total as f64
    }

    /// Renders an ASCII bar chart of the traced buckets.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self
            .buckets
            .iter()
            .map(|b| b.count)
            .max()
            .unwrap_or(0)
            .max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{} episodes below the tracer filter (not bucketed)\n",
            self.filtered
        ));
        for b in &self.buckets {
            if b.count == 0 {
                continue;
            }
            let bar = (b.count as f64 / max as f64 * width as f64).round() as usize;
            let hi = if b.hi.as_nanos() == u64::MAX {
                "inf".to_owned()
            } else {
                b.hi.to_string()
            };
            out.push_str(&format!(
                "{:>7} .. {:<7} {:>7} {}\n",
                b.lo.to_string(),
                hi,
                b.count,
                "#".repeat(bar.max(1))
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn session(durations_ms: &[u64], filtered: u64) -> AnalysisSession {
        let meta = SessionMeta {
            application: "H".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(100),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut cursor = 0u64;
        for (i, &dur) in durations_ms.iter().enumerate() {
            let mut t = IntervalTreeBuilder::new();
            t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
            t.exit(ms(cursor + dur)).unwrap();
            b.push_episode(
                EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
                    .tree(t.finish().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
            cursor += dur + 5;
        }
        b.add_short_episodes(filtered, DurationNs::from_micros(filtered * 200));
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn buckets_partition_all_traced_episodes() {
        let s = session(&[3, 5, 9, 17, 120, 9000, 20000], 50);
        let h = DurationHistogram::of(&s);
        let bucketed: u64 = h.buckets().iter().map(|b| b.count).sum();
        assert_eq!(bucketed, 7);
        assert_eq!(h.filtered(), 50);
        assert_eq!(h.total(), 57);
    }

    #[test]
    fn bucket_bounds_are_contiguous_powers_of_two() {
        let s = session(&[], 0);
        let h = DurationHistogram::of(&s);
        for pair in h.buckets().windows(2) {
            assert_eq!(pair[0].hi, pair[1].lo);
        }
        assert_eq!(h.buckets()[0].lo, DurationNs::ZERO);
        assert_eq!(h.buckets()[1].lo, DurationNs::from_millis(1));
        assert_eq!(h.buckets()[2].lo, DurationNs::from_millis(2));
        let last = h.buckets().last().unwrap();
        assert_eq!(last.lo, DurationNs::from_millis(8192));
        assert_eq!(last.hi, DurationNs::from_nanos(u64::MAX));
    }

    #[test]
    fn episodes_land_in_the_right_buckets() {
        let s = session(&[3, 120], 0);
        let h = DurationHistogram::of(&s);
        // 3 ms falls in [2, 4); 120 ms in [64, 128).
        let b3 = h
            .buckets()
            .iter()
            .find(|b| b.lo == DurationNs::from_millis(2))
            .unwrap();
        assert_eq!(b3.count, 1);
        let b120 = h
            .buckets()
            .iter()
            .find(|b| b.lo == DurationNs::from_millis(64))
            .unwrap();
        assert_eq!(b120.count, 1);
    }

    #[test]
    fn endo_style_fraction() {
        // 90 filtered + 8 fast + 2 slow: 98% under 100 ms... here: under
        // 128 ms (bucket boundary).
        let s = session(&[10, 10, 10, 10, 10, 10, 10, 10, 500, 900], 90);
        let h = DurationHistogram::of(&s);
        let under = h.fraction_under(DurationNs::from_millis(128));
        assert!((under - 0.98).abs() < 1e-9, "{under}");
        assert_eq!(h.fraction_under(DurationNs::ZERO), 0.9, "filtered only");
    }

    #[test]
    fn empty_session() {
        let s = session(&[], 0);
        let h = DurationHistogram::of(&s);
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_under(DurationNs::from_secs(1)), 0.0);
        assert!(h.to_ascii(40).contains("0 episodes below"));
    }

    #[test]
    fn ascii_renders_nonempty_buckets_only() {
        let s = session(&[5, 5, 5, 300], 10);
        let art = h_ascii(&s);
        assert!(art.contains("4ms"));
        assert!(art.contains('#'));
        // Empty buckets (e.g. the 8 s one) are elided.
        assert!(!art.contains("8.19s"));
    }

    fn h_ascii(s: &AnalysisSession) -> String {
        DurationHistogram::of(s).to_ascii(40)
    }
}
