//! Zero-decode warm analysis over persisted rollups.
//!
//! When a v2 binary trace (or a corpus session) carries a validated
//! rollup section, the facts the headline analyses need — shape token
//! streams, tree metrics, per-category lag breakdowns — are already on
//! disk next to the extent index. A [`WarmSession`] reconstructs pattern
//! tables, Table III statistics, duration histograms and outlier reports
//! from those summaries without decoding a single episode payload,
//! producing output **byte-identical** to the cold decode-and-analyze
//! path at any `--jobs` value. Only flagged lock/wait outliers (which
//! need sample snapshots for culprit attribution) trigger a targeted
//! re-decode of their extents, supplied by the caller.
//!
//! A warm session only engages on *clean* inputs: salvaged or damaged
//! traces fall back to the cold path, as do stale rollups (the trace
//! layer already drops rollups whose content checksum does not match the
//! episode payload region, so `rollup()` returning `Some` implies a
//! validated cache).

use lagalyzer_model::{DurationNs, Episode, SessionMeta, SymbolTable, WaitGraph};
use lagalyzer_trace::corpus::SessionView;
use lagalyzer_trace::index::{EpisodeExtent, EpisodeFilter, IndexedTrace};
use lagalyzer_trace::rollup::Rollup;

use crate::histogram::DurationHistogram;
use crate::outliers::{
    detect, median_ns, CauseCode, Culprit, LagBreakdown, OutlierConfig, OutlierFinding,
    OutlierReport,
};
use crate::parallel;
use crate::patterns::{PatternSet, PatternTable, SummarizedEpisode};
use crate::session::AnalysisConfig;
use crate::stats::SessionStats;

/// A clean session reconstructed from its persisted rollup: extents for
/// durations and time placement, summaries for everything the decoded
/// trees would have provided.
pub struct WarmSession<'a> {
    meta: &'a SessionMeta,
    symbols: &'a SymbolTable,
    rollup: &'a Rollup,
    extents: &'a [EpisodeExtent],
    /// Extent positions admitted by the ingest filter, ascending. Warm
    /// episode index `i` corresponds to the cold filtered session's
    /// `episodes()[i]`.
    admitted: Vec<usize>,
    /// Summarized episodes in admitted order, borrowing token streams
    /// from the rollup's shape table.
    summarized: Vec<SummarizedEpisode<'a>>,
    excluded: u64,
    short_count: u64,
    short_time: DurationNs,
    config: AnalysisConfig,
}

impl<'a> WarmSession<'a> {
    /// Builds a warm session over a clean indexed trace with a validated
    /// rollup. `None` when the trace was salvaged or carries no usable
    /// rollup — callers fall back to the cold decode path.
    pub fn of_indexed(
        trace: &'a IndexedTrace,
        config: AnalysisConfig,
        filter: &EpisodeFilter,
    ) -> Option<WarmSession<'a>> {
        if trace.salvage_report().is_some() {
            return None;
        }
        let rollup = trace.rollup()?;
        Some(WarmSession::assemble(
            trace.meta(),
            trace.symbols(),
            rollup,
            trace.extents(),
            trace.short_episode_count(),
            trace.short_episode_time(),
            config,
            filter,
        ))
    }

    /// Builds a warm session over a clean corpus session with a validated
    /// rollup. `None` when the session was salvaged, damaged, or carries
    /// no usable rollup.
    ///
    /// Corpus entries do not expose the payload-resident short-episode
    /// counters without a decode, so warm corpus sessions report zero
    /// filtered-out shorts; corpus-level commands never print them.
    pub fn of_corpus_session(
        view: &SessionView<'a>,
        config: AnalysisConfig,
        filter: &EpisodeFilter,
    ) -> Option<WarmSession<'a>> {
        if view.is_salvaged() || view.is_damaged() {
            return None;
        }
        let rollup = view.rollup()?;
        Some(WarmSession::assemble(
            view.meta(),
            view.symbols(),
            rollup,
            view.extents(),
            0,
            DurationNs::ZERO,
            config,
            filter,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        meta: &'a SessionMeta,
        symbols: &'a SymbolTable,
        rollup: &'a Rollup,
        extents: &'a [EpisodeExtent],
        short_count: u64,
        short_time: DurationNs,
        config: AnalysisConfig,
        filter: &EpisodeFilter,
    ) -> WarmSession<'a> {
        debug_assert_eq!(rollup.summaries.len(), extents.len());
        let admitted: Vec<usize> = extents
            .iter()
            .enumerate()
            .filter(|(_, e)| filter.admits_extent(e))
            .map(|(i, _)| i)
            .collect();
        let summarized: Vec<SummarizedEpisode<'a>> = admitted
            .iter()
            .map(|&pos| {
                let summary = &rollup.summaries[pos];
                SummarizedEpisode {
                    structureless: summary.structureless,
                    has_gc: summary.has_gc,
                    tokens: &rollup.shapes[summary.shape as usize],
                    tree_size: summary.tree_size as usize,
                    tree_depth: summary.tree_depth,
                    duration: extents[pos].duration(),
                }
            })
            .collect();
        let excluded = (extents.len() - admitted.len()) as u64;
        WarmSession {
            meta,
            symbols,
            rollup,
            extents,
            admitted,
            summarized,
            excluded,
            short_count,
            short_time,
            config,
        }
    }

    /// The session metadata.
    pub fn meta(&self) -> &'a SessionMeta {
        self.meta
    }

    /// The session's symbol table.
    pub fn symbols(&self) -> &'a SymbolTable {
        self.symbols
    }

    /// The validated rollup backing this session.
    pub fn rollup(&self) -> &'a Rollup {
        self.rollup
    }

    /// Admitted (analyzed) episode count.
    pub fn len(&self) -> usize {
        self.admitted.len()
    }

    /// True when no episodes survived the filter.
    pub fn is_empty(&self) -> bool {
        self.admitted.is_empty()
    }

    /// Episodes the ingest filter excluded.
    pub fn excluded(&self) -> u64 {
        self.excluded
    }

    /// Extent position (into the full extent table) of warm episode `i`.
    pub fn extent_position(&self, i: usize) -> usize {
        self.admitted[i]
    }

    /// The duration of warm episode `i`.
    pub fn duration(&self, i: usize) -> DurationNs {
        self.extents[self.admitted[i]].duration()
    }

    /// Mines the pattern set from summaries alone. Identical to the cold
    /// miner over the decoded (and equally filtered) session, for every
    /// `jobs` value.
    pub fn mine_patterns_with_jobs(&self, jobs: usize) -> PatternSet {
        let tables = parallel::map_shards(self.summarized.len(), jobs, |range| {
            let mut table = PatternTable::new();
            table.scan_summaries(
                &self.summarized[range.clone()],
                range.start,
                self.config.perceptible_threshold,
            );
            table
        });
        let mut merged = PatternTable::new();
        for table in tables {
            merged.merge(table);
        }
        merged.into_pattern_set(self.symbols)
    }

    /// Computes the Table III row from extents and summaries. Identical
    /// to [`SessionStats::compute_with_jobs`] over the decoded session.
    pub fn session_stats_with_jobs(&self, jobs: usize) -> SessionStats {
        self.session_stats_from(&self.mine_patterns_with_jobs(jobs), jobs)
    }

    /// [`WarmSession::session_stats_with_jobs`] over an already-mined
    /// pattern set, so callers needing both the stats row and the
    /// patterns (the `analyze` warm path) mine exactly once.
    pub fn session_stats_from(&self, patterns: &PatternSet, jobs: usize) -> SessionStats {
        let threshold = self.config.perceptible_threshold;
        let perceptible_count: u64 = parallel::map_shards(self.admitted.len(), jobs, |range| {
            self.admitted[range]
                .iter()
                .filter(|&&pos| self.extents[pos].duration() >= threshold)
                .count() as u64
        })
        .into_iter()
        .sum();
        let in_episode: DurationNs = self
            .admitted
            .iter()
            .map(|&pos| self.extents[pos].duration())
            .sum::<DurationNs>()
            + self.short_time;
        let in_minutes = in_episode.as_secs_f64() / 60.0;
        SessionStats {
            end_to_end: self.meta.end_to_end,
            in_episode_fraction: in_episode.fraction_of(self.meta.end_to_end).min(1.0),
            short_count: self.short_count,
            traced_count: self.admitted.len() as u64,
            perceptible_count,
            long_per_minute: if in_minutes > 0.0 {
                perceptible_count as f64 / in_minutes
            } else {
                0.0
            },
            distinct_patterns: patterns.len() as u64,
            episodes_in_patterns: patterns.covered_episodes(),
            singleton_fraction: patterns.singleton_fraction(),
            mean_tree_size: patterns.mean_tree_size(),
            mean_tree_depth: patterns.mean_tree_depth(),
        }
    }

    /// The duration histogram over admitted episodes, with the persisted
    /// short-episode counter as below-range mass.
    pub fn histogram(&self) -> DurationHistogram {
        DurationHistogram::of_durations(
            self.admitted
                .iter()
                .map(|&pos| self.extents[pos].duration()),
            self.short_count,
        )
    }

    /// Runs outlier detection and attribution from summaries. Detection,
    /// medians, baselines and cause attribution all come from persisted
    /// data; only flagged lock/wait episodes need their sample snapshots,
    /// so `decode` is called once with the extent positions of exactly
    /// those episodes (ascending finding order) and must return their
    /// decoded episodes in the same order. Returns `None` when `decode`
    /// fails — the caller falls back to the cold path.
    ///
    /// The report is byte-identical to
    /// [`OutlierReport::analyze_with_jobs`] over the decoded session with
    /// the same pattern set (parallelism, when wanted, lives inside
    /// `decode` — everything else here is integer bookkeeping).
    pub fn outliers(
        &self,
        patterns: &PatternSet,
        config: &OutlierConfig,
        decode: &dyn Fn(&[usize]) -> Option<Vec<Episode>>,
    ) -> Option<OutlierReport> {
        struct WarmWork {
            pattern_index: usize,
            median: DurationNs,
            flagged: Vec<usize>,
            baseline: LagBreakdown,
        }

        let mut work: Vec<WarmWork> = Vec::new();
        let mut patterns_scanned = 0usize;
        let mut episodes_considered = 0usize;
        for (pattern_index, pattern) in patterns.patterns().iter().enumerate() {
            let members = pattern.episode_indices();
            if members.len() < config.min_count {
                continue;
            }
            patterns_scanned += 1;
            episodes_considered += members.len();
            let durations: Vec<DurationNs> = members.iter().map(|&i| self.duration(i)).collect();
            let flagged_local = detect(&durations, config);
            if flagged_local.is_empty() {
                continue;
            }
            let median = DurationNs::from_nanos(median_ns(
                &mut durations.iter().map(|d| d.as_nanos()).collect::<Vec<_>>(),
            ));
            let mut flagged = Vec::with_capacity(flagged_local.len());
            let mut normal = Vec::with_capacity(members.len() - flagged_local.len());
            for (slot, &episode_index) in members.iter().enumerate() {
                if flagged_local.contains(&slot) {
                    flagged.push(episode_index);
                } else {
                    normal.push(episode_index);
                }
            }
            // Pattern centroid: per-category lower median over the normal
            // members' persisted breakdowns — the same values the cold
            // path recomputes per episode.
            let mut baseline = LagBreakdown::default();
            for (slot, &cause) in CauseCode::ALL.iter().enumerate() {
                let mut values: Vec<u64> = normal
                    .iter()
                    .map(|&i| self.rollup.summaries[self.admitted[i]].breakdown[slot])
                    .collect();
                baseline.set(cause, DurationNs::from_nanos(median_ns(&mut values)));
            }
            work.push(WarmWork {
                pattern_index,
                median,
                flagged,
                baseline,
            });
        }

        // First pass: attribute causes from summaries and collect the
        // episodes whose culprit needs sample snapshots.
        struct Pending {
            work_index: usize,
            episode_index: usize,
            cause: CauseCode,
            cause_delta: DurationNs,
            breakdown: LagBreakdown,
            needs_decode: bool,
        }
        let mut pending: Vec<Pending> = Vec::new();
        let mut decode_positions: Vec<usize> = Vec::new();
        for (work_index, w) in work.iter().enumerate() {
            for &episode_index in &w.flagged {
                let breakdown = LagBreakdown::from_array(
                    self.rollup.summaries[self.admitted[episode_index]].breakdown,
                );
                let mut cause = CauseCode::SelfTime;
                let mut cause_delta = DurationNs::ZERO;
                for candidate in CauseCode::ALL {
                    let delta = breakdown
                        .get(candidate)
                        .saturating_sub(w.baseline.get(candidate));
                    if delta > cause_delta {
                        cause = candidate;
                        cause_delta = delta;
                    }
                }
                let needs_decode = matches!(cause, CauseCode::Lock | CauseCode::Wait);
                if needs_decode {
                    decode_positions.push(self.admitted[episode_index]);
                }
                pending.push(Pending {
                    work_index,
                    episode_index,
                    cause,
                    cause_delta,
                    breakdown,
                    needs_decode,
                });
            }
        }

        let decoded = if decode_positions.is_empty() {
            Vec::new()
        } else {
            let episodes = decode(&decode_positions)?;
            if episodes.len() != decode_positions.len() {
                return None;
            }
            episodes
        };

        let mut decoded_iter = decoded.iter();
        let findings: Vec<OutlierFinding> = pending
            .into_iter()
            .map(|p| {
                let w = &work[p.work_index];
                let culprit = if p.needs_decode {
                    let episode = decoded_iter
                        .next()
                        .expect("one decode per lock/wait finding");
                    WaitGraph::extract(episode).top_holder().map(|h| Culprit {
                        thread: h.thread,
                        samples: h.samples,
                        frame: h.top_frame.map(|(m, _)| m),
                    })
                } else {
                    None
                };
                let duration = self.duration(p.episode_index);
                OutlierFinding {
                    pattern_index: w.pattern_index,
                    episode_index: p.episode_index,
                    episode_id: self.extents[self.admitted[p.episode_index]].id,
                    duration,
                    median: w.median,
                    excess: duration.saturating_sub(w.median),
                    cause: p.cause,
                    cause_delta: p.cause_delta,
                    breakdown: p.breakdown,
                    baseline: w.baseline,
                    culprit,
                    bytes: None,
                }
            })
            .collect();

        Some(OutlierReport::from_parts(
            findings,
            patterns_scanned,
            patterns.len(),
            episodes_considered,
            patterns.salvaged(),
        ))
    }
}
