//! Pattern mining: grouping episodes into structural equivalence classes.
//!
//! Following the paper's §II-C: episodes whose dispatch interval has no
//! children carry no structure and are excluded; the remaining episodes are
//! grouped by tree shape. Each pattern records lag statistics
//! (min / average / max / total, paper §II-E) and the set of member
//! episodes; [`PatternSet::cumulative_coverage`] reproduces Fig 3.
//!
//! # The hot path
//!
//! Grouping uses the two-level signature scheme documented in
//! [`crate::shape`]: inside a session each episode's tree is serialized
//! into a compact token stream over raw symbol ids (one zero-allocation
//! traversal into a reused scratch buffer) and hash-consed by a
//! [`ShapeInterner`] into a dense [`ShapeId`], so bucketing is an array
//! index — no name resolution, no string formatting, no per-episode heap
//! allocation. The canonical signature *string* is rendered once per
//! pattern when the table is finalized. The previous implementation,
//! which rendered and hashed a string per episode, is retained as
//! [`PatternSet::mine_reference`] so tests (and benches) can prove the
//! two produce byte-identical results.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use lagalyzer_model::{DurationNs, Episode, IntervalTree, SymbolTable};

use crate::intern::{ShapeId, ShapeInterner};
use crate::parallel;
use crate::session::AnalysisSession;
use crate::shape::{write_shape_tokens, ShapeSignature};

/// Lag statistics over one pattern's episodes (paper §II-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LagStats {
    /// Number of episodes.
    pub count: u64,
    /// Shortest episode.
    pub min: DurationNs,
    /// Longest episode.
    pub max: DurationNs,
    /// Total lag over all episodes.
    pub total: DurationNs,
}

impl LagStats {
    /// The average lag.
    pub fn mean(&self) -> DurationNs {
        if self.count == 0 {
            DurationNs::ZERO
        } else {
            self.total / self.count
        }
    }
}

/// One mined pattern: a structural equivalence class of episodes.
#[derive(Clone, Debug)]
pub struct Pattern {
    signature: ShapeSignature,
    /// Indices into the session's episode slice, in dispatch order.
    episodes: Vec<usize>,
    stats: LagStats,
    perceptible: u64,
    first_is_perceptible: bool,
    /// Descendants of the dispatch interval of the pattern's first episode
    /// (Table III "Descs").
    tree_size: usize,
    /// Interval-tree depth of the first episode (Table III "Depth").
    tree_depth: u32,
    gc_episode_count: u64,
}

impl Pattern {
    /// The structural signature shared by all member episodes.
    pub fn signature(&self) -> &ShapeSignature {
        &self.signature
    }

    /// Indices of member episodes into [`AnalysisSession::episodes`], in
    /// dispatch order.
    pub fn episode_indices(&self) -> &[usize] {
        &self.episodes
    }

    /// Number of member episodes.
    pub fn count(&self) -> u64 {
        self.stats.count
    }

    /// Lag statistics.
    pub fn stats(&self) -> &LagStats {
        &self.stats
    }

    /// Number of perceptible member episodes.
    pub fn perceptible_count(&self) -> u64 {
        self.perceptible
    }

    /// True if the pattern has exactly one episode.
    pub fn is_singleton(&self) -> bool {
        self.stats.count == 1
    }

    /// True if the pattern's first (earliest-dispatched) episode is the
    /// perceptible one — the initialization tell the paper describes.
    pub fn first_is_perceptible(&self) -> bool {
        self.first_is_perceptible
    }

    /// Dispatch-descendant count of the representative episode.
    pub fn tree_size(&self) -> usize {
        self.tree_size
    }

    /// Interval-tree depth of the representative episode.
    pub fn tree_depth(&self) -> u32 {
        self.tree_depth
    }

    /// How many member episodes contain at least one GC interval. Because
    /// GC is excluded from the signature, this tells a developer whether a
    /// pattern always or rarely collects (paper §II-D).
    pub fn gc_episode_count(&self) -> u64 {
        self.gc_episode_count
    }
}

/// The result of mining one session.
#[derive(Clone, Debug)]
pub struct PatternSet {
    /// Patterns sorted by descending episode count (ties: by signature).
    patterns: Vec<Pattern>,
    structureless: u64,
    total_structured: u64,
    salvaged: bool,
}

impl PatternSet {
    /// Mines the patterns of `session` (also available as
    /// [`AnalysisSession::mine_patterns`]).
    pub fn mine(session: &AnalysisSession) -> PatternSet {
        PatternSet::mine_with_jobs(session, 1)
    }

    /// Mines the patterns of `session` on up to `jobs` worker threads.
    ///
    /// Episodes are sharded into contiguous index ranges, each shard is
    /// scanned into its own [`PatternTable`] (with its own shard-local
    /// [`ShapeInterner`]), and the tables are merged in shard order by
    /// remapping each shard's dense [`ShapeId`]s into the accumulating
    /// table's interner. Every accumulator is exact (counts, nanosecond
    /// sums, minima/maxima), so the result is byte-identical to
    /// [`PatternSet::mine`] for any `jobs`; `jobs <= 1` runs serially
    /// without spawning threads.
    pub fn mine_with_jobs(session: &AnalysisSession, jobs: usize) -> PatternSet {
        let tables = parallel::map_shards(session.episodes().len(), jobs, |range| {
            PatternTable::scan(session, range)
        });
        let mut merged = PatternTable::new();
        for table in tables {
            merged.merge(table);
        }
        merged.into_pattern_set(session.trace().symbols())
    }

    /// The string-keyed baseline miner: renders and hashes a canonical
    /// signature string per episode, exactly as the pre-interning
    /// implementation did. Serial only.
    ///
    /// Retained deliberately — equivalence tests assert the hash-consed
    /// pipeline ([`PatternSet::mine`] / [`PatternSet::mine_with_jobs`])
    /// produces byte-identical output to this baseline, and the benches
    /// measure the speedup against it.
    pub fn mine_reference(session: &AnalysisSession) -> PatternSet {
        let symbols = session.trace().symbols();
        let threshold = session.perceptible_threshold();
        let mut groups: HashMap<ShapeSignature, PatternAccum> = HashMap::new();
        let mut structureless = 0u64;
        for (idx, episode) in session.episodes().iter().enumerate() {
            if episode.is_structureless() {
                structureless += 1;
                continue;
            }
            let sig = ShapeSignature::of_tree(episode.tree(), symbols);
            let d = episode.duration();
            let single = PatternAccum {
                episodes: vec![idx],
                stats: LagStats {
                    count: 1,
                    min: d,
                    max: d,
                    total: d,
                },
                perceptible: u64::from(d >= threshold),
                gc_episode_count: u64::from(
                    episode
                        .tree()
                        .contains_kind(lagalyzer_model::IntervalKind::Gc),
                ),
                first_is_perceptible: d >= threshold,
                // The pre-interning code sized trees with a stack-based
                // pre-order walk per episode; keep that exact cost model
                // here (same value as `descendant_count`) so before/after
                // bench comparisons measure the real former hot path.
                tree_size: episode.tree().pre_order_from(episode.tree().root()).count() - 1,
                tree_depth: episode.tree().max_depth(),
            };
            match groups.entry(sig) {
                Entry::Vacant(v) => {
                    v.insert(single);
                }
                Entry::Occupied(mut o) => o.get_mut().absorb(single),
            }
        }
        let mut total_structured = 0u64;
        let mut patterns: Vec<Pattern> = groups
            .into_iter()
            .map(|(signature, accum)| {
                total_structured += accum.stats.count;
                accum.into_pattern(signature)
            })
            .collect();
        sort_patterns(&mut patterns);
        PatternSet {
            patterns,
            structureless,
            total_structured,
            salvaged: session.is_salvaged(),
        }
    }

    /// Patterns in descending episode-count order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of distinct patterns (Table III "Dist").
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if the session had no structured episodes.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Number of episodes covered by patterns (Table III "#Eps").
    pub fn covered_episodes(&self) -> u64 {
        self.total_structured
    }

    /// True when any contributing session's trace was salvaged from a
    /// damaged file — the mined population may be incomplete.
    pub fn salvaged(&self) -> bool {
        self.salvaged
    }

    /// Number of structureless episodes excluded from mining.
    pub fn structureless_episodes(&self) -> u64 {
        self.structureless
    }

    /// Number of singleton patterns (Table III "One-Ep" numerator).
    pub fn singleton_count(&self) -> usize {
        self.patterns.iter().filter(|p| p.is_singleton()).count()
    }

    /// Fraction of patterns that are singletons.
    pub fn singleton_fraction(&self) -> f64 {
        if self.patterns.is_empty() {
            0.0
        } else {
            self.singleton_count() as f64 / self.patterns.len() as f64
        }
    }

    /// Mean dispatch-descendant count over patterns (Table III "Descs").
    pub fn mean_tree_size(&self) -> f64 {
        if self.patterns.is_empty() {
            return 0.0;
        }
        self.patterns
            .iter()
            .map(|p| p.tree_size as f64)
            .sum::<f64>()
            / self.patterns.len() as f64
    }

    /// Mean interval-tree depth over patterns (Table III "Depth").
    pub fn mean_tree_depth(&self) -> f64 {
        if self.patterns.is_empty() {
            return 0.0;
        }
        self.patterns
            .iter()
            .map(|p| f64::from(p.tree_depth))
            .sum::<f64>()
            / self.patterns.len() as f64
    }

    /// The Fig 3 curve: for each prefix of patterns (sorted by descending
    /// episode count), the fraction of patterns used (x) and the fraction
    /// of episodes covered (y), both in `[0, 1]`.
    pub fn cumulative_coverage(&self) -> Vec<(f64, f64)> {
        let n = self.patterns.len();
        let total = self.total_structured.max(1) as f64;
        let mut out = Vec::with_capacity(n);
        let mut cum = 0u64;
        for (i, p) in self.patterns.iter().enumerate() {
            cum += p.count();
            out.push(((i + 1) as f64 / n as f64, cum as f64 / total));
        }
        out
    }

    /// Convenience for the Pareto check: the episode coverage of the top
    /// `fraction` of patterns.
    pub fn coverage_of_top(&self, fraction: f64) -> f64 {
        let take = ((self.patterns.len() as f64) * fraction).ceil() as usize;
        let covered: u64 = self.patterns.iter().take(take).map(Pattern::count).sum();
        covered as f64 / self.total_structured.max(1) as f64
    }
}

/// The canonical pattern order: descending episode count, ties by
/// signature string.
fn sort_patterns(patterns: &mut [Pattern]) {
    patterns.sort_by(|a, b| {
        b.count()
            .cmp(&a.count())
            .then_with(|| a.signature.cmp(&b.signature))
    });
}

/// One episode's mining-relevant facts, lifted out of a persisted rollup
/// (see `lagalyzer_trace::rollup`) so [`PatternTable::scan_summaries`] can
/// mine patterns without decoding episode payloads. The token slice
/// borrows from the rollup's deduplicated shape table.
#[derive(Clone, Copy, Debug)]
pub struct SummarizedEpisode<'a> {
    /// True when the dispatch interval has no children; counted, never
    /// grouped.
    pub structureless: bool,
    /// True when the episode contains a GC bracket.
    pub has_gc: bool,
    /// Canonical shape token stream (as produced by
    /// [`write_shape_tokens`]).
    pub tokens: &'a [u8],
    /// `descendant_count(root)` of the episode's interval tree.
    pub tree_size: usize,
    /// `max_depth()` of the episode's interval tree.
    pub tree_depth: u32,
    /// Wall-clock duration of the episode.
    pub duration: DurationNs,
}

/// Per-shape accumulator inside a [`PatternTable`]. All fields are exact,
/// so two accumulators for the same shape merge without loss.
#[derive(Clone, Debug)]
struct PatternAccum {
    /// Member episode indices, ascending.
    episodes: Vec<usize>,
    stats: LagStats,
    perceptible: u64,
    gc_episode_count: u64,
    /// Metrics of the earliest-dispatched member episode seen so far.
    first_is_perceptible: bool,
    tree_size: usize,
    tree_depth: u32,
}

impl PatternAccum {
    /// An accumulator holding one episode.
    fn single(
        idx: usize,
        tree: &IntervalTree,
        d: DurationNs,
        threshold: DurationNs,
        has_gc: bool,
    ) -> PatternAccum {
        Self::single_metrics(
            idx,
            tree.descendant_count(tree.root()),
            tree.max_depth(),
            d,
            threshold,
            has_gc,
        )
    }

    /// As [`single`](Self::single), but with the representative tree
    /// metrics supplied directly — the warm path reads them from a
    /// persisted rollup instead of a decoded tree.
    fn single_metrics(
        idx: usize,
        tree_size: usize,
        tree_depth: u32,
        d: DurationNs,
        threshold: DurationNs,
        has_gc: bool,
    ) -> PatternAccum {
        PatternAccum {
            episodes: vec![idx],
            stats: LagStats {
                count: 1,
                min: d,
                max: d,
                total: d,
            },
            perceptible: u64::from(d >= threshold),
            gc_episode_count: u64::from(has_gc),
            first_is_perceptible: d >= threshold,
            tree_size,
            tree_depth,
        }
    }

    /// Adds one more member episode in place — the hot path. Representative
    /// tree metrics are only (re)computed in the rare case that `idx`
    /// precedes every member seen so far (chunks fed out of order).
    fn add_member(
        &mut self,
        idx: usize,
        tree: &IntervalTree,
        d: DurationNs,
        threshold: DurationNs,
        has_gc: bool,
    ) {
        if idx < self.episodes[0] {
            self.add_member_metrics(
                idx,
                tree.descendant_count(tree.root()),
                tree.max_depth(),
                d,
                threshold,
                has_gc,
            );
        } else {
            // Representative metrics are untouched on the hot path, so the
            // placeholder values are never read.
            self.add_member_metrics(idx, 0, 0, d, threshold, has_gc);
        }
    }

    /// As [`add_member`](Self::add_member), but with the candidate
    /// representative's tree metrics supplied directly (the warm path reads
    /// them from a persisted rollup). `tree_size`/`tree_depth` are only
    /// consulted when `idx` becomes the new representative.
    fn add_member_metrics(
        &mut self,
        idx: usize,
        tree_size: usize,
        tree_depth: u32,
        d: DurationNs,
        threshold: DurationNs,
        has_gc: bool,
    ) {
        let perceptible = d >= threshold;
        if idx < self.episodes[0] {
            self.first_is_perceptible = perceptible;
            self.tree_size = tree_size;
            self.tree_depth = tree_depth;
        }
        match self.episodes.last() {
            Some(&last) if last > idx => {
                let pos = self.episodes.partition_point(|&e| e < idx);
                self.episodes.insert(pos, idx);
            }
            _ => self.episodes.push(idx),
        }
        self.stats.count += 1;
        self.stats.min = self.stats.min.min(d);
        self.stats.max = self.stats.max.max(d);
        self.stats.total += d;
        self.perceptible += u64::from(perceptible);
        self.gc_episode_count += u64::from(has_gc);
    }

    /// Folds `other` into `self`; both must accumulate the same shape.
    fn absorb(&mut self, other: PatternAccum) {
        // The representative ("first") episode is the one with the lowest
        // index across both sides, which makes the merge order-independent.
        if other.episodes[0] < self.episodes[0] {
            self.first_is_perceptible = other.first_is_perceptible;
            self.tree_size = other.tree_size;
            self.tree_depth = other.tree_depth;
        }
        self.episodes = merge_sorted(std::mem::take(&mut self.episodes), other.episodes);
        self.stats.count += other.stats.count;
        self.stats.min = self.stats.min.min(other.stats.min);
        self.stats.max = self.stats.max.max(other.stats.max);
        self.stats.total += other.stats.total;
        self.perceptible += other.perceptible;
        self.gc_episode_count += other.gc_episode_count;
    }

    /// Finalizes the accumulator under its rendered signature.
    fn into_pattern(self, signature: ShapeSignature) -> Pattern {
        Pattern {
            signature,
            episodes: self.episodes,
            stats: self.stats,
            perceptible: self.perceptible,
            first_is_perceptible: self.first_is_perceptible,
            tree_size: self.tree_size,
            tree_depth: self.tree_depth,
            gc_episode_count: self.gc_episode_count,
        }
    }
}

/// Merges two ascending index lists into one. Shard ranges are contiguous,
/// so in-order merges hit the O(1)-dispatch append path; the general merge
/// keeps the table correct even when tables are merged out of order.
fn merge_sorted(mut a: Vec<usize>, mut b: Vec<usize>) -> Vec<usize> {
    if a.last() < b.first() {
        a.append(&mut b);
        return a;
    }
    if b.last() < a.first() {
        b.append(&mut a);
        return b;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ai, mut bi) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(&x), Some(&y)) if x <= y => out.push(ai.next().unwrap()),
            (Some(_), Some(_)) => out.push(bi.next().unwrap()),
            (Some(_), None) => {
                out.extend(ai);
                return out;
            }
            (None, _) => {
                out.extend(bi);
                return out;
            }
        }
    }
}

/// A mergeable, shard-local pattern table — the accumulation half of
/// pattern mining.
///
/// One table holds a [`ShapeInterner`] plus per-shape lag statistics,
/// membership lists and representative-episode metrics for a contiguous
/// slice of a session's episodes; accumulators are indexed directly by
/// the interner's dense [`ShapeId`]s. Tables from different shards merge
/// exactly (integer sums, minima, maxima; see [`PatternTable::merge`]),
/// and [`PatternTable::into_pattern_set`] finalizes the merged table into
/// the same [`PatternSet`] a serial scan produces. This is the primitive
/// the parallel pipeline (see [`crate::parallel`]) is built on, and it
/// also supports incremental use: chunks of episodes can be fed to
/// [`PatternTable::scan_episodes`] while a codec is still streaming the
/// rest of the trace.
///
/// Shape ids are table-local: tables may only be merged when their
/// episodes share one symbol-id assignment (shards of the same session).
/// Cross-session aggregation goes through the canonical signature
/// strings instead (see [`crate::multi`]).
#[derive(Clone, Debug, Default)]
pub struct PatternTable {
    interner: ShapeInterner,
    /// Accumulators indexed by [`ShapeId`].
    groups: Vec<PatternAccum>,
    structureless: u64,
    salvaged: bool,
    /// Reused token buffer: the scan loop allocates nothing per episode.
    scratch: Vec<u8>,
}

impl PatternTable {
    /// An empty table (the merge identity).
    pub fn new() -> PatternTable {
        PatternTable::default()
    }

    /// Scans one shard of `session`'s episodes into a fresh table.
    pub fn scan(session: &AnalysisSession, range: std::ops::Range<usize>) -> PatternTable {
        let mut table = PatternTable::new();
        if session.is_salvaged() {
            table.mark_salvaged();
        }
        table.scan_episodes(
            &session.episodes()[range.clone()],
            range.start,
            session.perceptible_threshold(),
        );
        table
    }

    /// Accumulates `episodes` (whose session-wide indices start at
    /// `base_index`) into the table. Chunks must not overlap and must come
    /// from the same session (shape ids are only comparable under one
    /// symbol assignment); feeding them in ascending index order keeps the
    /// per-shape membership lists on the cheap append path, but any order
    /// produces the same table.
    pub fn scan_episodes(
        &mut self,
        episodes: &[Episode],
        base_index: usize,
        threshold: DurationNs,
    ) {
        for (offset, episode) in episodes.iter().enumerate() {
            let idx = base_index + offset;
            if episode.is_structureless() {
                self.structureless += 1;
                continue;
            }
            let tree = episode.tree();
            self.scratch.clear();
            let has_gc = write_shape_tokens(tree, &mut self.scratch);
            let (id, fresh) = self.interner.intern(&self.scratch);
            let d = episode.duration();
            if fresh {
                debug_assert_eq!(id.index(), self.groups.len(), "interner ids must be dense");
                self.groups
                    .push(PatternAccum::single(idx, tree, d, threshold, has_gc));
            } else {
                self.groups[id.index()].add_member(idx, tree, d, threshold, has_gc);
            }
        }
    }

    /// Accumulates pre-summarized episodes (whose session-wide indices
    /// start at `base_index`) into the table, without ever touching a
    /// decoded tree: the shape token stream and representative tree
    /// metrics come from a persisted rollup. The resulting table is
    /// identical to the one [`PatternTable::scan_episodes`] builds over
    /// the decoded episodes the summaries were computed from.
    pub fn scan_summaries(
        &mut self,
        episodes: &[SummarizedEpisode<'_>],
        base_index: usize,
        threshold: DurationNs,
    ) {
        for (offset, episode) in episodes.iter().enumerate() {
            let idx = base_index + offset;
            if episode.structureless {
                self.structureless += 1;
                continue;
            }
            let (id, fresh) = self.interner.intern(episode.tokens);
            if fresh {
                debug_assert_eq!(id.index(), self.groups.len(), "interner ids must be dense");
                self.groups.push(PatternAccum::single_metrics(
                    idx,
                    episode.tree_size,
                    episode.tree_depth,
                    episode.duration,
                    threshold,
                    episode.has_gc,
                ));
            } else {
                self.groups[id.index()].add_member_metrics(
                    idx,
                    episode.tree_size,
                    episode.tree_depth,
                    episode.duration,
                    threshold,
                    episode.has_gc,
                );
            }
        }
    }

    /// Flags the table as derived from a salvaged trace. The flag is
    /// sticky: it survives [`PatternTable::merge`] (logical OR) and is
    /// carried into the finished [`PatternSet`].
    pub fn mark_salvaged(&mut self) {
        self.salvaged = true;
    }

    /// True when any scanned session was salvaged.
    pub fn salvaged(&self) -> bool {
        self.salvaged
    }

    /// The table's shape interner (one entry per distinct signature).
    pub fn shape_interner(&self) -> &ShapeInterner {
        &self.interner
    }

    /// Folds another shard's table into this one by remapping each of
    /// `other`'s dense [`ShapeId`]s into this table's interner (a token
    /// lookup, never a string). The merge is exact and order-independent,
    /// which is what makes the parallel pipeline byte-identical to the
    /// serial scan. Both tables must have scanned episodes of the same
    /// session (see the type-level note on symbol assignments).
    pub fn merge(&mut self, other: PatternTable) {
        let PatternTable {
            interner,
            groups,
            structureless,
            salvaged,
            scratch: _,
        } = other;
        self.salvaged |= salvaged;
        self.structureless += structureless;
        for (index, accum) in groups.into_iter().enumerate() {
            let tokens = interner.tokens(ShapeId::from_index(index));
            let (id, fresh) = self.interner.intern(tokens);
            if fresh {
                debug_assert_eq!(id.index(), self.groups.len(), "interner ids must be dense");
                self.groups.push(accum);
            } else {
                self.groups[id.index()].absorb(accum);
            }
        }
    }

    /// Number of structureless episodes seen so far.
    pub fn structureless_episodes(&self) -> u64 {
        self.structureless
    }

    /// Number of distinct signatures accumulated so far.
    pub fn distinct_signatures(&self) -> usize {
        self.groups.len()
    }

    /// Finalizes the table into a [`PatternSet`]: renders each shape's
    /// canonical signature string *once* (this is the only place mining
    /// resolves symbol names — `symbols` must be the table the scanned
    /// episodes were recorded against), materializes one [`Pattern`] per
    /// shape and applies the canonical sort (descending episode count,
    /// ties by signature).
    pub fn into_pattern_set(self, symbols: &SymbolTable) -> PatternSet {
        let mut total_structured = 0u64;
        let interner = self.interner;
        let mut patterns: Vec<Pattern> = self
            .groups
            .into_iter()
            .enumerate()
            .map(|(index, accum)| {
                total_structured += accum.stats.count;
                let signature = interner.render(ShapeId::from_index(index), symbols);
                accum.into_pattern(signature)
            })
            .collect();
        sort_patterns(&mut patterns);
        PatternSet {
            patterns,
            structureless: self.structureless,
            total_structured,
            salvaged: self.salvaged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    /// Builds a trace with `specs`: each entry is (symbol name, duration
    /// ms, include GC child).
    fn trace_with(specs: &[(&str, u64, bool)]) -> AnalysisSession {
        let meta = SessionMeta {
            application: "P".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(100),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut cursor = 0u64;
        for (i, (name, dur, gc)) in specs.iter().enumerate() {
            let mut t = IntervalTreeBuilder::new();
            t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
            if !name.is_empty() {
                let m = b.symbols_mut().method(name, "run");
                t.enter(IntervalKind::Listener, Some(m), ms(cursor + 1))
                    .unwrap();
                if *gc {
                    t.leaf(IntervalKind::Gc, None, ms(cursor + 2), ms(cursor + 3))
                        .unwrap();
                }
                t.exit(ms(cursor + dur - 1)).unwrap();
            }
            t.exit(ms(cursor + dur)).unwrap();
            b.push_episode(
                EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
                    .tree(t.finish().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
            cursor += dur + 10;
        }
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn equivalent_episodes_group() {
        let s = trace_with(&[("a.A", 50, false), ("a.A", 200, false), ("b.B", 50, false)]);
        let set = s.mine_patterns();
        assert_eq!(set.len(), 2);
        assert_eq!(set.covered_episodes(), 3);
        // Sorted by count: a.A pattern (2 episodes) first.
        assert_eq!(set.patterns()[0].count(), 2);
        assert_eq!(set.patterns()[1].count(), 1);
        assert!(set.patterns()[1].is_singleton());
    }

    #[test]
    fn gc_exclusion_merges_variants() {
        let s = trace_with(&[("a.A", 50, false), ("a.A", 60, true)]);
        let set = s.mine_patterns();
        assert_eq!(set.len(), 1, "GC child must not split the pattern");
        assert_eq!(set.patterns()[0].gc_episode_count(), 1);
    }

    #[test]
    fn structureless_episodes_excluded() {
        let s = trace_with(&[("", 50, false), ("a.A", 60, false), ("", 200, false)]);
        let set = s.mine_patterns();
        assert_eq!(set.len(), 1);
        assert_eq!(set.covered_episodes(), 1);
        assert_eq!(set.structureless_episodes(), 2);
    }

    #[test]
    fn lag_stats_computed() {
        let s = trace_with(&[("a.A", 50, false), ("a.A", 150, false), ("a.A", 100, false)]);
        let set = s.mine_patterns();
        let p = &set.patterns()[0];
        assert_eq!(p.count(), 3);
        assert_eq!(p.stats().min, DurationNs::from_millis(50));
        assert_eq!(p.stats().max, DurationNs::from_millis(150));
        assert_eq!(p.stats().total, DurationNs::from_millis(300));
        assert_eq!(p.stats().mean(), DurationNs::from_millis(100));
        assert_eq!(p.perceptible_count(), 2);
    }

    #[test]
    fn first_is_perceptible_flag() {
        let slow_first = trace_with(&[("a.A", 200, false), ("a.A", 50, false)]);
        assert!(slow_first.mine_patterns().patterns()[0].first_is_perceptible());
        let fast_first = trace_with(&[("a.A", 50, false), ("a.A", 200, false)]);
        assert!(!fast_first.mine_patterns().patterns()[0].first_is_perceptible());
    }

    #[test]
    fn partition_property() {
        let s = trace_with(&[
            ("a.A", 50, false),
            ("b.B", 60, false),
            ("a.A", 70, false),
            ("c.C", 80, false),
            ("", 90, false),
        ]);
        let set = s.mine_patterns();
        let sum: u64 = set.patterns().iter().map(Pattern::count).sum();
        assert_eq!(sum, set.covered_episodes());
        assert_eq!(
            set.covered_episodes() + set.structureless_episodes(),
            s.episodes().len() as u64
        );
        // Every structured episode appears in exactly one pattern.
        let mut seen = std::collections::HashSet::new();
        for p in set.patterns() {
            for &idx in p.episode_indices() {
                assert!(seen.insert(idx), "episode {idx} in two patterns");
            }
        }
    }

    #[test]
    fn cumulative_coverage_monotone_and_complete() {
        let s = trace_with(&[
            ("a.A", 10, false),
            ("a.A", 11, false),
            ("a.A", 12, false),
            ("b.B", 13, false),
            ("c.C", 14, false),
        ]);
        let curve = s.mine_patterns().cumulative_coverage();
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        let last = curve.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12);
        assert!((last.1 - 1.0).abs() < 1e-12);
        // Top pattern covers 3/5 of episodes.
        assert!((curve[0].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_top_fraction() {
        let s = trace_with(&[
            ("a.A", 10, false),
            ("a.A", 11, false),
            ("a.A", 12, false),
            ("b.B", 13, false),
        ]);
        let set = s.mine_patterns();
        // Top 50% of 2 patterns = 1 pattern = 3 of 4 episodes.
        assert!((set.coverage_of_top(0.5) - 0.75).abs() < 1e-12);
        assert!((set.coverage_of_top(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_session_mines_empty_set() {
        let s = trace_with(&[]);
        let set = s.mine_patterns();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.singleton_fraction(), 0.0);
        assert_eq!(set.mean_tree_size(), 0.0);
        assert!(set.cumulative_coverage().is_empty());
    }

    #[test]
    fn tree_metrics_recorded() {
        let s = trace_with(&[("a.A", 50, false)]);
        let set = s.mine_patterns();
        let p = &set.patterns()[0];
        assert_eq!(p.tree_size(), 1);
        assert_eq!(p.tree_depth(), 1);
        assert!((set.mean_tree_size() - 1.0).abs() < 1e-12);
        assert!((set.mean_tree_depth() - 1.0).abs() < 1e-12);
    }

    /// Field-by-field equality of two pattern sets (no `PartialEq` on
    /// `PatternSet`: episode indices make derive-equality too strict for
    /// public API, but tests want exactly that).
    fn assert_sets_identical(a: &PatternSet, b: &PatternSet) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.structureless_episodes(), b.structureless_episodes());
        assert_eq!(a.covered_episodes(), b.covered_episodes());
        for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(pa.signature(), pb.signature());
            assert_eq!(pa.episode_indices(), pb.episode_indices());
            assert_eq!(pa.stats(), pb.stats());
            assert_eq!(pa.perceptible_count(), pb.perceptible_count());
            assert_eq!(pa.gc_episode_count(), pb.gc_episode_count());
            assert_eq!(pa.first_is_perceptible(), pb.first_is_perceptible());
            assert_eq!(pa.tree_size(), pb.tree_size());
            assert_eq!(pa.tree_depth(), pb.tree_depth());
        }
    }

    #[test]
    fn parallel_mining_matches_serial() {
        let s = trace_with(&[
            ("a.A", 50, false),
            ("b.B", 160, false),
            ("a.A", 70, true),
            ("", 90, false),
            ("c.C", 80, false),
            ("b.B", 20, false),
            ("a.A", 110, false),
        ]);
        let serial = s.mine_patterns();
        for jobs in [1usize, 2, 3, 8] {
            let parallel = PatternSet::mine_with_jobs(&s, jobs);
            assert_sets_identical(&serial, &parallel);
        }
    }

    #[test]
    fn interned_mining_matches_string_keyed_reference() {
        let s = trace_with(&[
            ("a.A", 50, false),
            ("b.B", 160, false),
            ("a.A", 70, true),
            ("", 90, false),
            ("c.C", 80, false),
            ("b.B", 20, true),
            ("a.A", 110, false),
        ]);
        let reference = PatternSet::mine_reference(&s);
        assert_sets_identical(&reference, &s.mine_patterns());
        for jobs in [2usize, 5] {
            assert_sets_identical(&reference, &PatternSet::mine_with_jobs(&s, jobs));
        }
    }

    #[test]
    fn table_merge_is_order_independent() {
        let s = trace_with(&[
            ("a.A", 50, false),
            ("b.B", 160, false),
            ("a.A", 70, false),
            ("b.B", 20, false),
            ("a.A", 110, false),
        ]);
        let symbols = s.trace().symbols();
        let shard = |r: std::ops::Range<usize>| PatternTable::scan(&s, r);
        let mut forward = shard(0..2);
        forward.merge(shard(2..4));
        forward.merge(shard(4..5));
        let mut backward = shard(4..5);
        backward.merge(shard(2..4));
        backward.merge(shard(0..2));
        assert_eq!(
            forward.distinct_signatures(),
            backward.distinct_signatures()
        );
        assert_sets_identical(
            &forward.into_pattern_set(symbols),
            &backward.into_pattern_set(symbols),
        );
    }

    #[test]
    fn incremental_chunks_match_whole_scan() {
        let s = trace_with(&[
            ("a.A", 50, false),
            ("b.B", 160, false),
            ("a.A", 70, false),
            ("c.C", 80, false),
        ]);
        let symbols = s.trace().symbols();
        let threshold = s.perceptible_threshold();
        let mut chunked = PatternTable::new();
        for (start, end) in [(0usize, 1usize), (1, 3), (3, 4)] {
            chunked.scan_episodes(&s.episodes()[start..end], start, threshold);
        }
        assert_sets_identical(
            &chunked.into_pattern_set(symbols),
            &PatternTable::scan(&s, 0..4).into_pattern_set(symbols),
        );
    }

    #[test]
    fn out_of_order_chunks_match_whole_scan() {
        // Feeding later episodes first exercises the representative
        // take-over path in `PatternAccum::add_member`.
        let s = trace_with(&[
            ("a.A", 150, false),
            ("b.B", 60, false),
            ("a.A", 70, true),
            ("b.B", 200, false),
        ]);
        let symbols = s.trace().symbols();
        let threshold = s.perceptible_threshold();
        let mut reversed = PatternTable::new();
        for (start, end) in [(2usize, 4usize), (0, 2)] {
            reversed.scan_episodes(&s.episodes()[start..end], start, threshold);
        }
        assert_sets_identical(
            &reversed.into_pattern_set(symbols),
            &PatternTable::scan(&s, 0..4).into_pattern_set(symbols),
        );
    }

    #[test]
    fn salvaged_flag_survives_scan_and_merge() {
        let clean = trace_with(&[("a.A", 50, false), ("b.B", 60, false)]);
        assert!(!clean.mine_patterns().salvaged());
        let salvaged = crate::session::AnalysisSession::with_provenance(
            clean.trace().clone(),
            AnalysisConfig::default(),
            crate::session::Provenance::Salvaged {
                skips: 1,
                episodes_lost: 0,
            },
        );
        assert!(salvaged.mine_patterns().salvaged());
        assert!(PatternSet::mine_with_jobs(&salvaged, 4).salvaged());
        // Merging a salvaged table into a clean one taints the result.
        let mut merged = PatternTable::scan(&clean, 0..2);
        merged.merge(PatternTable::scan(&salvaged, 0..2));
        assert!(merged.salvaged());
        assert!(merged.into_pattern_set(clean.trace().symbols()).salvaged());
    }

    #[test]
    fn mining_is_deterministic() {
        let s = trace_with(&[
            ("a.A", 50, false),
            ("b.B", 60, false),
            ("c.C", 70, false),
            ("b.B", 80, false),
        ]);
        let a = s.mine_patterns();
        let b = s.mine_patterns();
        let sig_a: Vec<&str> = a
            .patterns()
            .iter()
            .map(|p| p.signature().as_str())
            .collect();
        let sig_b: Vec<&str> = b
            .patterns()
            .iter()
            .map(|p| p.signature().as_str())
            .collect();
        assert_eq!(sig_a, sig_b);
    }
}
