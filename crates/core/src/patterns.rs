//! Pattern mining: grouping episodes into structural equivalence classes.
//!
//! Following the paper's §II-C: episodes whose dispatch interval has no
//! children carry no structure and are excluded; the remaining episodes are
//! grouped by [`ShapeSignature`]. Each pattern records lag statistics
//! (min / average / max / total, paper §II-E) and the set of member
//! episodes; [`PatternSet::cumulative_coverage`] reproduces Fig 3.

use std::collections::HashMap;

use lagalyzer_model::DurationNs;

use crate::session::AnalysisSession;
use crate::shape::ShapeSignature;

/// Lag statistics over one pattern's episodes (paper §II-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LagStats {
    /// Number of episodes.
    pub count: u64,
    /// Shortest episode.
    pub min: DurationNs,
    /// Longest episode.
    pub max: DurationNs,
    /// Total lag over all episodes.
    pub total: DurationNs,
}

impl LagStats {
    /// The average lag.
    pub fn mean(&self) -> DurationNs {
        if self.count == 0 {
            DurationNs::ZERO
        } else {
            self.total / self.count
        }
    }
}

/// One mined pattern: a structural equivalence class of episodes.
#[derive(Clone, Debug)]
pub struct Pattern {
    signature: ShapeSignature,
    /// Indices into the session's episode slice, in dispatch order.
    episodes: Vec<usize>,
    stats: LagStats,
    perceptible: u64,
    first_is_perceptible: bool,
    /// Descendants of the dispatch interval of the pattern's first episode
    /// (Table III "Descs").
    tree_size: usize,
    /// Interval-tree depth of the first episode (Table III "Depth").
    tree_depth: u32,
    gc_episode_count: u64,
}

impl Pattern {
    /// The structural signature shared by all member episodes.
    pub fn signature(&self) -> &ShapeSignature {
        &self.signature
    }

    /// Indices of member episodes into [`AnalysisSession::episodes`], in
    /// dispatch order.
    pub fn episode_indices(&self) -> &[usize] {
        &self.episodes
    }

    /// Number of member episodes.
    pub fn count(&self) -> u64 {
        self.stats.count
    }

    /// Lag statistics.
    pub fn stats(&self) -> &LagStats {
        &self.stats
    }

    /// Number of perceptible member episodes.
    pub fn perceptible_count(&self) -> u64 {
        self.perceptible
    }

    /// True if the pattern has exactly one episode.
    pub fn is_singleton(&self) -> bool {
        self.stats.count == 1
    }

    /// True if the pattern's first (earliest-dispatched) episode is the
    /// perceptible one — the initialization tell the paper describes.
    pub fn first_is_perceptible(&self) -> bool {
        self.first_is_perceptible
    }

    /// Dispatch-descendant count of the representative episode.
    pub fn tree_size(&self) -> usize {
        self.tree_size
    }

    /// Interval-tree depth of the representative episode.
    pub fn tree_depth(&self) -> u32 {
        self.tree_depth
    }

    /// How many member episodes contain at least one GC interval. Because
    /// GC is excluded from the signature, this tells a developer whether a
    /// pattern always or rarely collects (paper §II-D).
    pub fn gc_episode_count(&self) -> u64 {
        self.gc_episode_count
    }
}

/// The result of mining one session.
#[derive(Clone, Debug)]
pub struct PatternSet {
    /// Patterns sorted by descending episode count (ties: by signature).
    patterns: Vec<Pattern>,
    structureless: u64,
    total_structured: u64,
}

impl PatternSet {
    /// Mines the patterns of `session` (also available as
    /// [`AnalysisSession::mine_patterns`]).
    pub fn mine(session: &AnalysisSession) -> PatternSet {
        let symbols = session.trace().symbols();
        let threshold = session.perceptible_threshold();
        let mut groups: HashMap<ShapeSignature, Vec<usize>> = HashMap::new();
        let mut structureless = 0u64;
        for (idx, episode) in session.episodes().iter().enumerate() {
            if episode.is_structureless() {
                structureless += 1;
                continue;
            }
            let sig = ShapeSignature::of_tree(episode.tree(), symbols);
            groups.entry(sig).or_default().push(idx);
        }
        let mut total_structured = 0u64;
        let mut patterns: Vec<Pattern> = groups
            .into_iter()
            .map(|(signature, episodes)| {
                let mut stats = LagStats {
                    count: 0,
                    min: DurationNs::from_nanos(u64::MAX),
                    max: DurationNs::ZERO,
                    total: DurationNs::ZERO,
                };
                let mut perceptible = 0u64;
                let mut gc_count = 0u64;
                for &idx in &episodes {
                    let episode = &session.episodes()[idx];
                    let d = episode.duration();
                    stats.count += 1;
                    stats.min = stats.min.min(d);
                    stats.max = stats.max.max(d);
                    stats.total += d;
                    if d >= threshold {
                        perceptible += 1;
                    }
                    if episode
                        .tree()
                        .contains_kind(lagalyzer_model::IntervalKind::Gc)
                    {
                        gc_count += 1;
                    }
                }
                total_structured += stats.count;
                let first = &session.episodes()[episodes[0]];
                Pattern {
                    signature,
                    first_is_perceptible: first.duration() >= threshold,
                    tree_size: first.tree().descendant_count(first.tree().root()),
                    tree_depth: first.tree().max_depth(),
                    episodes,
                    stats,
                    perceptible,
                    gc_episode_count: gc_count,
                }
            })
            .collect();
        patterns.sort_by(|a, b| {
            b.count()
                .cmp(&a.count())
                .then_with(|| a.signature.cmp(&b.signature))
        });
        PatternSet {
            patterns,
            structureless,
            total_structured,
        }
    }

    /// Patterns in descending episode-count order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of distinct patterns (Table III "Dist").
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if the session had no structured episodes.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Number of episodes covered by patterns (Table III "#Eps").
    pub fn covered_episodes(&self) -> u64 {
        self.total_structured
    }

    /// Number of structureless episodes excluded from mining.
    pub fn structureless_episodes(&self) -> u64 {
        self.structureless
    }

    /// Number of singleton patterns (Table III "One-Ep" numerator).
    pub fn singleton_count(&self) -> usize {
        self.patterns.iter().filter(|p| p.is_singleton()).count()
    }

    /// Fraction of patterns that are singletons.
    pub fn singleton_fraction(&self) -> f64 {
        if self.patterns.is_empty() {
            0.0
        } else {
            self.singleton_count() as f64 / self.patterns.len() as f64
        }
    }

    /// Mean dispatch-descendant count over patterns (Table III "Descs").
    pub fn mean_tree_size(&self) -> f64 {
        if self.patterns.is_empty() {
            return 0.0;
        }
        self.patterns.iter().map(|p| p.tree_size as f64).sum::<f64>() / self.patterns.len() as f64
    }

    /// Mean interval-tree depth over patterns (Table III "Depth").
    pub fn mean_tree_depth(&self) -> f64 {
        if self.patterns.is_empty() {
            return 0.0;
        }
        self.patterns
            .iter()
            .map(|p| f64::from(p.tree_depth))
            .sum::<f64>()
            / self.patterns.len() as f64
    }

    /// The Fig 3 curve: for each prefix of patterns (sorted by descending
    /// episode count), the fraction of patterns used (x) and the fraction
    /// of episodes covered (y), both in `[0, 1]`.
    pub fn cumulative_coverage(&self) -> Vec<(f64, f64)> {
        let n = self.patterns.len();
        let total = self.total_structured.max(1) as f64;
        let mut out = Vec::with_capacity(n);
        let mut cum = 0u64;
        for (i, p) in self.patterns.iter().enumerate() {
            cum += p.count();
            out.push(((i + 1) as f64 / n as f64, cum as f64 / total));
        }
        out
    }

    /// Convenience for the Pareto check: the episode coverage of the top
    /// `fraction` of patterns.
    pub fn coverage_of_top(&self, fraction: f64) -> f64 {
        let take = ((self.patterns.len() as f64) * fraction).ceil() as usize;
        let covered: u64 = self.patterns.iter().take(take).map(Pattern::count).sum();
        covered as f64 / self.total_structured.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    /// Builds a trace with `specs`: each entry is (symbol name, duration
    /// ms, include GC child).
    fn trace_with(specs: &[(&str, u64, bool)]) -> AnalysisSession {
        let meta = SessionMeta {
            application: "P".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(100),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut cursor = 0u64;
        for (i, (name, dur, gc)) in specs.iter().enumerate() {
            let mut t = IntervalTreeBuilder::new();
            t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
            if !name.is_empty() {
                let m = b.symbols_mut().method(name, "run");
                t.enter(IntervalKind::Listener, Some(m), ms(cursor + 1)).unwrap();
                if *gc {
                    t.leaf(IntervalKind::Gc, None, ms(cursor + 2), ms(cursor + 3))
                        .unwrap();
                }
                t.exit(ms(cursor + dur - 1)).unwrap();
            }
            t.exit(ms(cursor + dur)).unwrap();
            b.push_episode(
                EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
                    .tree(t.finish().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
            cursor += dur + 10;
        }
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn equivalent_episodes_group() {
        let s = trace_with(&[("a.A", 50, false), ("a.A", 200, false), ("b.B", 50, false)]);
        let set = s.mine_patterns();
        assert_eq!(set.len(), 2);
        assert_eq!(set.covered_episodes(), 3);
        // Sorted by count: a.A pattern (2 episodes) first.
        assert_eq!(set.patterns()[0].count(), 2);
        assert_eq!(set.patterns()[1].count(), 1);
        assert!(set.patterns()[1].is_singleton());
    }

    #[test]
    fn gc_exclusion_merges_variants() {
        let s = trace_with(&[("a.A", 50, false), ("a.A", 60, true)]);
        let set = s.mine_patterns();
        assert_eq!(set.len(), 1, "GC child must not split the pattern");
        assert_eq!(set.patterns()[0].gc_episode_count(), 1);
    }

    #[test]
    fn structureless_episodes_excluded() {
        let s = trace_with(&[("", 50, false), ("a.A", 60, false), ("", 200, false)]);
        let set = s.mine_patterns();
        assert_eq!(set.len(), 1);
        assert_eq!(set.covered_episodes(), 1);
        assert_eq!(set.structureless_episodes(), 2);
    }

    #[test]
    fn lag_stats_computed() {
        let s = trace_with(&[("a.A", 50, false), ("a.A", 150, false), ("a.A", 100, false)]);
        let set = s.mine_patterns();
        let p = &set.patterns()[0];
        assert_eq!(p.count(), 3);
        assert_eq!(p.stats().min, DurationNs::from_millis(50));
        assert_eq!(p.stats().max, DurationNs::from_millis(150));
        assert_eq!(p.stats().total, DurationNs::from_millis(300));
        assert_eq!(p.stats().mean(), DurationNs::from_millis(100));
        assert_eq!(p.perceptible_count(), 2);
    }

    #[test]
    fn first_is_perceptible_flag() {
        let slow_first = trace_with(&[("a.A", 200, false), ("a.A", 50, false)]);
        assert!(slow_first.mine_patterns().patterns()[0].first_is_perceptible());
        let fast_first = trace_with(&[("a.A", 50, false), ("a.A", 200, false)]);
        assert!(!fast_first.mine_patterns().patterns()[0].first_is_perceptible());
    }

    #[test]
    fn partition_property() {
        let s = trace_with(&[
            ("a.A", 50, false),
            ("b.B", 60, false),
            ("a.A", 70, false),
            ("c.C", 80, false),
            ("", 90, false),
        ]);
        let set = s.mine_patterns();
        let sum: u64 = set.patterns().iter().map(Pattern::count).sum();
        assert_eq!(sum, set.covered_episodes());
        assert_eq!(
            set.covered_episodes() + set.structureless_episodes(),
            s.episodes().len() as u64
        );
        // Every structured episode appears in exactly one pattern.
        let mut seen = std::collections::HashSet::new();
        for p in set.patterns() {
            for &idx in p.episode_indices() {
                assert!(seen.insert(idx), "episode {idx} in two patterns");
            }
        }
    }

    #[test]
    fn cumulative_coverage_monotone_and_complete() {
        let s = trace_with(&[
            ("a.A", 10, false),
            ("a.A", 11, false),
            ("a.A", 12, false),
            ("b.B", 13, false),
            ("c.C", 14, false),
        ]);
        let curve = s.mine_patterns().cumulative_coverage();
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        let last = curve.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12);
        assert!((last.1 - 1.0).abs() < 1e-12);
        // Top pattern covers 3/5 of episodes.
        assert!((curve[0].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_top_fraction() {
        let s = trace_with(&[
            ("a.A", 10, false),
            ("a.A", 11, false),
            ("a.A", 12, false),
            ("b.B", 13, false),
        ]);
        let set = s.mine_patterns();
        // Top 50% of 2 patterns = 1 pattern = 3 of 4 episodes.
        assert!((set.coverage_of_top(0.5) - 0.75).abs() < 1e-12);
        assert!((set.coverage_of_top(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_session_mines_empty_set() {
        let s = trace_with(&[]);
        let set = s.mine_patterns();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.singleton_fraction(), 0.0);
        assert_eq!(set.mean_tree_size(), 0.0);
        assert!(set.cumulative_coverage().is_empty());
    }

    #[test]
    fn tree_metrics_recorded() {
        let s = trace_with(&[("a.A", 50, false)]);
        let set = s.mine_patterns();
        let p = &set.patterns()[0];
        assert_eq!(p.tree_size(), 1);
        assert_eq!(p.tree_depth(), 1);
        assert!((set.mean_tree_size() - 1.0).abs() < 1e-12);
        assert!((set.mean_tree_depth() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mining_is_deterministic() {
        let s = trace_with(&[
            ("a.A", 50, false),
            ("b.B", 60, false),
            ("c.C", 70, false),
            ("b.B", 80, false),
        ]);
        let a = s.mine_patterns();
        let b = s.mine_patterns();
        let sig_a: Vec<&str> = a.patterns().iter().map(|p| p.signature().as_str()).collect();
        let sig_b: Vec<&str> = b.patterns().iter().map(|p| p.signature().as_str()).collect();
        assert_eq!(sig_a, sig_b);
    }
}
