//! The extension API for custom analyses (paper §II-A: "Developers who
//! want to write their own analysis can implement it using the
//! straightforward API provided by the core").

use crate::session::AnalysisSession;

/// A named analysis over one session.
///
/// All built-in analyses are expressible through this trait; downstream
/// users implement it to plug their own metrics into the same driver
/// machinery.
///
/// ```
/// use lagalyzer_core::prelude::*;
/// use lagalyzer_core::analysis::run;
/// use lagalyzer_sim::{apps, runner};
///
/// /// Counts episodes longer than one second.
/// struct ExtremeLag;
///
/// impl Analysis for ExtremeLag {
///     type Output = usize;
///     fn name(&self) -> &str {
///         "extreme-lag"
///     }
///     fn run(&self, session: &AnalysisSession) -> usize {
///         session
///             .episodes()
///             .iter()
///             .filter(|e| e.duration() >= lagalyzer_model::DurationNs::from_secs(1))
///             .count()
///     }
/// }
///
/// let trace = runner::simulate_session(&apps::crossword_sage(), 0, 1);
/// let session = AnalysisSession::new(trace, AnalysisConfig::default());
/// let (name, extreme) = run(&ExtremeLag, &session);
/// assert_eq!(name, "extreme-lag");
/// assert!(extreme <= session.episodes().len());
/// ```
pub trait Analysis {
    /// The analysis result type.
    type Output;

    /// A stable, human-readable analysis name.
    fn name(&self) -> &str;

    /// Runs the analysis over one session.
    fn run(&self, session: &AnalysisSession) -> Self::Output;
}

/// Runs an analysis, returning its name alongside the result.
pub fn run<A: Analysis>(analysis: &A, session: &AnalysisSession) -> (String, A::Output) {
    (analysis.name().to_owned(), analysis.run(session))
}

/// Built-in [`Analysis`] adapters so the standard analyses compose with
/// custom drivers.
pub mod builtin {
    use super::Analysis;
    use crate::causes::CauseStats;
    use crate::concurrency::{concurrency_stats, ConcurrencyStats};
    use crate::location::LocationStats;
    use crate::occurrence::OccurrenceBreakdown;
    use crate::session::AnalysisSession;
    use crate::stats::SessionStats;
    use crate::trigger::TriggerBreakdown;
    use lagalyzer_model::OriginClassifier;

    /// Table III row.
    pub struct OverallStats;

    impl Analysis for OverallStats {
        type Output = SessionStats;
        fn name(&self) -> &str {
            "overall-statistics"
        }
        fn run(&self, session: &AnalysisSession) -> SessionStats {
            SessionStats::compute(session)
        }
    }

    /// Fig 5 trigger breakdowns (all, perceptible).
    pub struct Triggers;

    impl Analysis for Triggers {
        type Output = (TriggerBreakdown, TriggerBreakdown);
        fn name(&self) -> &str {
            "triggers"
        }
        fn run(&self, session: &AnalysisSession) -> Self::Output {
            (
                TriggerBreakdown::of_all(session),
                TriggerBreakdown::of_perceptible(session),
            )
        }
    }

    /// Fig 4 occurrence breakdown.
    pub struct Occurrences;

    impl Analysis for Occurrences {
        type Output = OccurrenceBreakdown;
        fn name(&self) -> &str {
            "occurrences"
        }
        fn run(&self, session: &AnalysisSession) -> Self::Output {
            OccurrenceBreakdown::of(&session.mine_patterns())
        }
    }

    /// Fig 6 location shares (all, perceptible).
    pub struct Locations;

    impl Analysis for Locations {
        type Output = (LocationStats, LocationStats);
        fn name(&self) -> &str {
            "locations"
        }
        fn run(&self, session: &AnalysisSession) -> Self::Output {
            let classifier = OriginClassifier::java_default();
            (
                LocationStats::of_all(session, &classifier),
                LocationStats::of_perceptible(session, &classifier),
            )
        }
    }

    /// Fig 7 concurrency.
    pub struct Concurrency;

    impl Analysis for Concurrency {
        type Output = ConcurrencyStats;
        fn name(&self) -> &str {
            "concurrency"
        }
        fn run(&self, session: &AnalysisSession) -> Self::Output {
            concurrency_stats(session)
        }
    }

    /// Fig 8 cause partitions (all, perceptible).
    pub struct Causes;

    impl Analysis for Causes {
        type Output = (CauseStats, CauseStats);
        fn name(&self) -> &str {
            "causes"
        }
        fn run(&self, session: &AnalysisSession) -> Self::Output {
            (
                CauseStats::of_all(session),
                CauseStats::of_perceptible(session),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::builtin;
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn empty_session() -> AnalysisSession {
        let meta = SessionMeta {
            application: "A".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(1),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        AnalysisSession::new(
            SessionTraceBuilder::new(meta, SymbolTable::new()).finish(),
            AnalysisConfig::default(),
        )
    }

    #[test]
    fn custom_analysis_runs() {
        struct EpisodeCount;
        impl Analysis for EpisodeCount {
            type Output = usize;
            fn name(&self) -> &str {
                "episode-count"
            }
            fn run(&self, session: &AnalysisSession) -> usize {
                session.episodes().len()
            }
        }
        let session = empty_session();
        let (name, count) = run(&EpisodeCount, &session);
        assert_eq!(name, "episode-count");
        assert_eq!(count, 0);
    }

    #[test]
    fn builtins_run_on_empty_session() {
        let session = empty_session();
        let _ = run(&builtin::OverallStats, &session);
        let _ = run(&builtin::Triggers, &session);
        let _ = run(&builtin::Occurrences, &session);
        let _ = run(&builtin::Locations, &session);
        let _ = run(&builtin::Concurrency, &session);
        let _ = run(&builtin::Causes, &session);
    }

    #[test]
    fn builtin_names_are_distinct() {
        let names = [
            builtin::OverallStats.name().to_owned(),
            builtin::Triggers.name().to_owned(),
            builtin::Occurrences.name().to_owned(),
            builtin::Locations.name().to_owned(),
            builtin::Concurrency.name().to_owned(),
            builtin::Causes.name().to_owned(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
