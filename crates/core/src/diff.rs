//! Session diffing: pattern-level regression detection.
//!
//! The paper's workflow is "find the slow pattern, fix the code, measure
//! again". This module closes that loop: given a *baseline* session and a
//! *candidate* session (e.g. before and after an optimization), it aligns
//! their patterns by structural signature and reports what appeared, what
//! disappeared, and how the lag of the common patterns moved.

use lagalyzer_model::DurationNs;

use crate::patterns::PatternSet;
use crate::session::AnalysisSession;
use crate::shape::ShapeSignature;

/// How one pattern changed between baseline and candidate.
#[derive(Clone, Debug)]
pub struct PatternDelta {
    /// The pattern's structural signature.
    pub signature: ShapeSignature,
    /// Episodes in the baseline session.
    pub baseline_episodes: u64,
    /// Episodes in the candidate session.
    pub candidate_episodes: u64,
    /// Mean lag in the baseline.
    pub baseline_mean: DurationNs,
    /// Mean lag in the candidate.
    pub candidate_mean: DurationNs,
    /// Perceptible episodes in the baseline.
    pub baseline_perceptible: u64,
    /// Perceptible episodes in the candidate.
    pub candidate_perceptible: u64,
}

impl PatternDelta {
    /// Candidate mean over baseline mean; 1.0 means unchanged, above 1 a
    /// regression. Returns `None` when the baseline mean is zero.
    pub fn mean_ratio(&self) -> Option<f64> {
        (self.baseline_mean.as_nanos() > 0)
            .then(|| self.candidate_mean.as_nanos() as f64 / self.baseline_mean.as_nanos() as f64)
    }

    /// True if the pattern got perceptibly worse: more perceptible
    /// episodes, or the mean grew by more than `tolerance` (for example
    /// 0.2 for +20%).
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.candidate_perceptible > self.baseline_perceptible
            || self.mean_ratio().is_some_and(|r| r > 1.0 + tolerance)
    }

    /// True if the pattern improved: fewer perceptible episodes, or the
    /// mean shrank by more than `tolerance`.
    pub fn improved(&self, tolerance: f64) -> bool {
        self.candidate_perceptible < self.baseline_perceptible
            || self.mean_ratio().is_some_and(|r| r < 1.0 - tolerance)
    }
}

/// The aligned comparison of two sessions.
///
/// ```
/// use lagalyzer_core::prelude::*;
/// use lagalyzer_sim::{apps, runner};
///
/// let baseline = AnalysisSession::new(
///     runner::simulate_session(&apps::jedit(), 0, 1),
///     AnalysisConfig::default(),
/// );
/// let candidate = AnalysisSession::new(
///     runner::simulate_session(&apps::jedit(), 1, 1),
///     AnalysisConfig::default(),
/// );
/// let diff = SessionDiff::between(&baseline, &candidate);
/// // Same application, same pattern library: nothing appears or vanishes.
/// assert!(diff.appeared.is_empty());
/// assert!(diff.disappeared.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct SessionDiff {
    /// Patterns present in both sessions.
    pub common: Vec<PatternDelta>,
    /// Patterns only in the candidate (new behaviour), with episode count
    /// and perceptible count.
    pub appeared: Vec<(ShapeSignature, u64, u64)>,
    /// Patterns only in the baseline (removed behaviour).
    pub disappeared: Vec<(ShapeSignature, u64, u64)>,
}

impl SessionDiff {
    /// Diffs `candidate` against `baseline`.
    pub fn between(baseline: &AnalysisSession, candidate: &AnalysisSession) -> SessionDiff {
        SessionDiff::from_patterns(&baseline.mine_patterns(), &candidate.mine_patterns())
    }

    /// Diffs two already-mined pattern sets.
    pub fn from_patterns(baseline: &PatternSet, candidate: &PatternSet) -> SessionDiff {
        let base: std::collections::HashMap<&ShapeSignature, _> = baseline
            .patterns()
            .iter()
            .map(|p| (p.signature(), p))
            .collect();
        let cand: std::collections::HashMap<&ShapeSignature, _> = candidate
            .patterns()
            .iter()
            .map(|p| (p.signature(), p))
            .collect();

        let mut common = Vec::new();
        let mut appeared = Vec::new();
        let mut disappeared = Vec::new();
        for (sig, cp) in &cand {
            match base.get(*sig) {
                Some(bp) => common.push(PatternDelta {
                    signature: (*sig).clone(),
                    baseline_episodes: bp.count(),
                    candidate_episodes: cp.count(),
                    baseline_mean: bp.stats().mean(),
                    candidate_mean: cp.stats().mean(),
                    baseline_perceptible: bp.perceptible_count(),
                    candidate_perceptible: cp.perceptible_count(),
                }),
                None => appeared.push(((*sig).clone(), cp.count(), cp.perceptible_count())),
            }
        }
        for (sig, bp) in &base {
            if !cand.contains_key(*sig) {
                disappeared.push(((*sig).clone(), bp.count(), bp.perceptible_count()));
            }
        }
        // Deterministic ordering: worst regressions first, then by name.
        common.sort_by(|a, b| {
            let ra = a.mean_ratio().unwrap_or(1.0);
            let rb = b.mean_ratio().unwrap_or(1.0);
            rb.partial_cmp(&ra)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.signature.cmp(&b.signature))
        });
        appeared.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        disappeared.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        SessionDiff {
            common,
            appeared,
            disappeared,
        }
    }

    /// The regressions among common patterns, worst first.
    pub fn regressions(&self, tolerance: f64) -> Vec<&PatternDelta> {
        self.common
            .iter()
            .filter(|d| d.regressed(tolerance))
            .collect()
    }

    /// The improvements among common patterns.
    pub fn improvements(&self, tolerance: f64) -> Vec<&PatternDelta> {
        self.common
            .iter()
            .filter(|d| d.improved(tolerance))
            .collect()
    }

    /// A one-line summary for logs and CLIs.
    pub fn summary(&self, tolerance: f64) -> String {
        format!(
            "{} common patterns ({} regressed, {} improved), {} appeared, {} disappeared",
            self.common.len(),
            self.regressions(tolerance).len(),
            self.improvements(tolerance).len(),
            self.appeared.len(),
            self.disappeared.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    /// Builds a session; each spec is (class name, durations).
    fn session(specs: &[(&str, &[u64])]) -> AnalysisSession {
        let meta = SessionMeta {
            application: "D".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(100),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut cursor = 0u64;
        let mut id = 0u32;
        for (name, durations) in specs {
            for &dur in *durations {
                let m = b.symbols_mut().method(name, "run");
                let mut t = IntervalTreeBuilder::new();
                t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
                t.leaf(
                    IntervalKind::Listener,
                    Some(m),
                    ms(cursor + 1),
                    ms(cursor + dur - 1),
                )
                .unwrap();
                t.exit(ms(cursor + dur)).unwrap();
                b.push_episode(
                    EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
                        .tree(t.finish().unwrap())
                        .build()
                        .unwrap(),
                )
                .unwrap();
                id += 1;
                cursor += dur + 5;
            }
        }
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn aligns_common_appeared_disappeared() {
        let baseline = session(&[("stay.S", &[50, 60]), ("gone.G", &[40])]);
        let candidate = session(&[("stay.S", &[55, 65]), ("new.N", &[30])]);
        let diff = SessionDiff::between(&baseline, &candidate);
        assert_eq!(diff.common.len(), 1);
        assert!(diff.common[0].signature.as_str().contains("stay.S"));
        assert_eq!(diff.appeared.len(), 1);
        assert!(diff.appeared[0].0.as_str().contains("new.N"));
        assert_eq!(diff.disappeared.len(), 1);
        assert!(diff.disappeared[0].0.as_str().contains("gone.G"));
    }

    #[test]
    fn regression_detection() {
        let baseline = session(&[("p.P", &[50, 50])]);
        let candidate = session(&[("p.P", &[150, 150])]);
        let diff = SessionDiff::between(&baseline, &candidate);
        let delta = &diff.common[0];
        assert!((delta.mean_ratio().unwrap() - 3.0).abs() < 1e-9);
        assert!(delta.regressed(0.2));
        assert!(!delta.improved(0.2));
        assert_eq!(diff.regressions(0.2).len(), 1);
        assert!(diff.improvements(0.2).is_empty());
    }

    #[test]
    fn improvement_detection() {
        let baseline = session(&[("p.P", &[200, 300])]);
        let candidate = session(&[("p.P", &[50, 60])]);
        let diff = SessionDiff::between(&baseline, &candidate);
        let delta = &diff.common[0];
        assert!(delta.improved(0.2));
        assert!(!delta.regressed(0.2));
        assert_eq!(delta.baseline_perceptible, 2);
        assert_eq!(delta.candidate_perceptible, 0);
    }

    #[test]
    fn perceptible_increase_is_regression_even_with_similar_mean() {
        // One more episode crosses the threshold while the mean barely
        // moves — still a perceptible regression.
        let baseline = session(&[("p.P", &[95, 95, 95, 95])]);
        let candidate = session(&[("p.P", &[101, 95, 95, 95])]);
        let diff = SessionDiff::between(&baseline, &candidate);
        assert!(diff.common[0].regressed(0.2));
    }

    #[test]
    fn identical_sessions_are_clean() {
        let a = session(&[("p.P", &[50, 60]), ("q.Q", &[120])]);
        let b = session(&[("p.P", &[50, 60]), ("q.Q", &[120])]);
        let diff = SessionDiff::between(&a, &b);
        assert_eq!(diff.common.len(), 2);
        assert!(diff.appeared.is_empty());
        assert!(diff.disappeared.is_empty());
        assert!(diff.regressions(0.05).is_empty());
        assert!(diff.improvements(0.05).is_empty());
        assert!(diff
            .summary(0.05)
            .starts_with("2 common patterns (0 regressed, 0 improved)"));
    }

    #[test]
    fn zero_baseline_mean_ratio_is_none() {
        let delta = PatternDelta {
            signature: ShapeSignature::of_tree(
                &{
                    let mut t = IntervalTreeBuilder::new();
                    t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
                    t.exit(ms(0)).unwrap();
                    t.finish().unwrap()
                },
                &SymbolTable::new(),
            ),
            baseline_episodes: 1,
            candidate_episodes: 1,
            baseline_mean: DurationNs::ZERO,
            candidate_mean: DurationNs::from_millis(5),
            baseline_perceptible: 0,
            candidate_perceptible: 0,
        };
        assert!(delta.mean_ratio().is_none());
        assert!(!delta.regressed(0.1));
    }

    #[test]
    fn ordering_worst_regression_first() {
        let baseline = session(&[("a.A", &[100]), ("b.B", &[100])]);
        let candidate = session(&[("a.A", &[200]), ("b.B", &[400])]);
        let diff = SessionDiff::between(&baseline, &candidate);
        assert!(diff.common[0].signature.as_str().contains("b.B"));
    }
}
