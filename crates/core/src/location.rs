//! Location analysis: where episode time is spent (the paper's Fig 6).
//!
//! Two independent partitions per episode set:
//!
//! * **application vs runtime library** — from the call-stack samples of
//!   the GUI thread, classified by the fully qualified class name of the
//!   executing method;
//! * **GC and native** — from the explicit GC and native intervals in the
//!   trace, as fractions of total episode time.

use lagalyzer_model::{CodeOrigin, DurationNs, Episode, IntervalKind, OriginClassifier};

use crate::session::AnalysisSession;

/// The Fig 6 time shares for one episode set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LocationStats {
    /// Share of GUI-thread samples executing runtime-library code.
    pub library: f64,
    /// Share of GUI-thread samples executing application code.
    pub application: f64,
    /// Share of episode time inside garbage collections.
    pub gc: f64,
    /// Share of episode time inside native calls.
    pub native: f64,
}

impl LocationStats {
    /// Computes the shares over `episodes` using the given classifier.
    pub fn of<'a, I>(
        session: &AnalysisSession,
        episodes: I,
        classifier: &OriginClassifier,
    ) -> LocationStats
    where
        I: IntoIterator<Item = &'a Episode>,
    {
        let symbols = session.trace().symbols();
        let mut lib_samples = 0u64;
        let mut app_samples = 0u64;
        let mut total_time = DurationNs::ZERO;
        let mut gc_time = DurationNs::ZERO;
        let mut native_time = DurationNs::ZERO;
        for episode in episodes {
            total_time += episode.duration();
            gc_time += episode.tree().outermost_kind_time(IntervalKind::Gc);
            native_time += episode.tree().outermost_kind_time(IntervalKind::Native);
            for snap in episode.samples() {
                // LagAlyzer supports multiple dispatch threads (paper §V):
                // each episode is attributed to the thread that dispatched
                // it, which is the GUI thread in single-EDT toolkits.
                let Some(ts) = snap.thread(episode.thread()) else {
                    continue;
                };
                match ts.top_origin(symbols, classifier) {
                    CodeOrigin::RuntimeLibrary => lib_samples += 1,
                    CodeOrigin::Application => app_samples += 1,
                }
            }
        }
        let samples = (lib_samples + app_samples).max(1) as f64;
        LocationStats {
            library: lib_samples as f64 / samples,
            application: app_samples as f64 / samples,
            gc: gc_time.fraction_of(total_time.max(DurationNs::from_nanos(1))),
            native: native_time.fraction_of(total_time.max(DurationNs::from_nanos(1))),
        }
    }

    /// Shares over all traced episodes (upper Fig 6 graph).
    pub fn of_all(session: &AnalysisSession, classifier: &OriginClassifier) -> LocationStats {
        LocationStats::of(session, session.episodes(), classifier)
    }

    /// Shares over perceptible episodes (lower Fig 6 graph).
    pub fn of_perceptible(
        session: &AnalysisSession,
        classifier: &OriginClassifier,
    ) -> LocationStats {
        let perceptible: Vec<&Episode> = session.perceptible_episodes().collect();
        LocationStats::of(session, perceptible, classifier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    /// An episode of 1000 ms with given GC/native child spans and samples
    /// whose top frames alternate between library and app as requested.
    fn build_session(
        gc_ms: u64,
        native_ms: u64,
        lib_samples: usize,
        app_samples: usize,
    ) -> AnalysisSession {
        let meta = SessionMeta {
            application: "L".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(10),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let lib = b.symbols_mut().method("javax.swing.JList", "paint");
        let app = b.symbols_mut().method("org.app.Model", "work");
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        let mut cursor = 10;
        if gc_ms > 0 {
            t.leaf(IntervalKind::Gc, None, ms(cursor), ms(cursor + gc_ms))
                .unwrap();
            cursor += gc_ms + 5;
        }
        if native_ms > 0 {
            t.leaf(
                IntervalKind::Native,
                Some(lib),
                ms(cursor),
                ms(cursor + native_ms),
            )
            .unwrap();
        }
        t.exit(ms(1000)).unwrap();
        let mut eb = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(t.finish().unwrap());
        let mut at = 500;
        for i in 0..(lib_samples + app_samples) {
            let frame = if i < lib_samples {
                StackFrame::java(lib)
            } else {
                StackFrame::java(app)
            };
            eb = eb.sample(SampleSnapshot::new(
                ms(at),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Runnable,
                    vec![frame],
                )],
            ));
            at += 10;
        }
        b.push_episode(eb.build().unwrap()).unwrap();
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn sample_partition() {
        let s = build_session(0, 0, 3, 1);
        let stats = LocationStats::of_all(&s, &OriginClassifier::java_default());
        assert!((stats.library - 0.75).abs() < 1e-12);
        assert!((stats.application - 0.25).abs() < 1e-12);
        assert!((stats.library + stats.application - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interval_partition() {
        let s = build_session(200, 300, 1, 1);
        let stats = LocationStats::of_all(&s, &OriginClassifier::java_default());
        assert!((stats.gc - 0.2).abs() < 1e-9, "gc {}", stats.gc);
        assert!((stats.native - 0.3).abs() < 1e-9, "native {}", stats.native);
    }

    #[test]
    fn no_samples_yields_zero_shares() {
        let s = build_session(100, 0, 0, 0);
        let stats = LocationStats::of_all(&s, &OriginClassifier::java_default());
        assert_eq!(stats.library, 0.0);
        assert_eq!(stats.application, 0.0);
        assert!(stats.gc > 0.0);
    }

    #[test]
    fn perceptible_scope_differs_from_all() {
        // One slow episode full of GC, one fast with none: the perceptible
        // view must show a higher GC share.
        let meta = SessionMeta {
            application: "L".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(10),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.leaf(IntervalKind::Gc, None, ms(10), ms(400)).unwrap();
        t.exit(ms(500)).unwrap();
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(600)).unwrap();
        t.exit(ms(650)).unwrap();
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(1), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        let s = AnalysisSession::new(b.finish(), AnalysisConfig::default());
        let classifier = OriginClassifier::java_default();
        let all = LocationStats::of_all(&s, &classifier);
        let perceptible = LocationStats::of_perceptible(&s, &classifier);
        assert!(perceptible.gc > all.gc);
        assert!((perceptible.gc - 390.0 / 500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_episode_set() {
        let s = build_session(0, 0, 1, 1);
        let stats = LocationStats::of(&s, [], &OriginClassifier::java_default());
        assert_eq!(stats, LocationStats::default());
    }
}
