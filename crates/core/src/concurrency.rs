//! Concurrency analysis: average runnable threads (the paper's Fig 7).
//!
//! Each call-stack sample records every thread's state; counting the
//! runnable ones per sample and averaging yields the concurrency measure:
//! exactly 1 means only the GUI thread was runnable, below 1 means the GUI
//! thread itself was sometimes blocked, above 1 means background threads
//! competed for the CPU.

use lagalyzer_model::Episode;

use crate::session::AnalysisSession;

/// Average number of runnable threads per sample over `episodes`.
/// Returns `None` when no samples exist in the set.
pub fn concurrency_over<'a, I>(episodes: I) -> Option<f64>
where
    I: IntoIterator<Item = &'a Episode>,
{
    let mut samples = 0u64;
    let mut runnable = 0u64;
    for episode in episodes {
        for snap in episode.samples() {
            samples += 1;
            runnable += snap.runnable_count() as u64;
        }
    }
    (samples > 0).then(|| runnable as f64 / samples as f64)
}

/// The Fig 7 pair for one session: concurrency over all episodes and over
/// perceptible episodes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConcurrencyStats {
    /// Average runnable threads over all traced episodes.
    pub all: f64,
    /// Average runnable threads over perceptible episodes.
    pub perceptible: f64,
}

/// Computes the Fig 7 statistics for one session. Sets with no samples
/// report 0.
pub fn concurrency_stats(session: &AnalysisSession) -> ConcurrencyStats {
    let perceptible: Vec<&Episode> = session.perceptible_episodes().collect();
    ConcurrencyStats {
        all: concurrency_over(session.episodes()).unwrap_or(0.0),
        perceptible: concurrency_over(perceptible.iter().copied()).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn episode(id: u32, start: u64, dur: u64, runnable_per_sample: &[usize]) -> Episode {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(start)).unwrap();
        t.exit(ms(start + dur)).unwrap();
        let mut eb = EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
            .tree(t.finish().unwrap());
        for (i, &n) in runnable_per_sample.iter().enumerate() {
            let mut threads = Vec::new();
            for j in 0..3 {
                let state = if j < n {
                    ThreadState::Runnable
                } else {
                    ThreadState::Waiting
                };
                threads.push(ThreadSample::new(
                    ThreadId::from_raw(j as u32),
                    state,
                    vec![],
                ));
            }
            eb = eb.sample(SampleSnapshot::new(ms(start + 1 + i as u64), threads));
        }
        eb.build().unwrap()
    }

    fn session(episodes: Vec<Episode>) -> AnalysisSession {
        let meta = SessionMeta {
            application: "C".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(100),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        for e in episodes {
            b.push_episode(e).unwrap();
        }
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn averages_runnable_counts() {
        let s = session(vec![episode(0, 0, 50, &[1, 2, 3])]);
        let c = concurrency_stats(&s);
        assert!((c.all - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perceptible_scope_separates() {
        let s = session(vec![
            episode(0, 0, 50, &[2, 2]),    // fast: 2 runnable
            episode(1, 100, 300, &[1, 0]), // slow: 0.5 runnable
        ]);
        let c = concurrency_stats(&s);
        assert!((c.all - 1.25).abs() < 1e-12, "all {}", c.all);
        assert!((c.perceptible - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_samples_reports_zero() {
        let s = session(vec![episode(0, 0, 50, &[])]);
        let c = concurrency_stats(&s);
        assert_eq!(c.all, 0.0);
        assert_eq!(c.perceptible, 0.0);
        assert_eq!(concurrency_over(s.episodes()), None);
    }

    #[test]
    fn empty_episode_iterator_reports_none() {
        // No episodes at all — distinct from "episodes without samples".
        assert_eq!(concurrency_over(std::iter::empty()), None);
    }

    #[test]
    fn zero_sample_episodes_do_not_dilute_the_average() {
        // Episodes without samples contribute nothing to either side of
        // the average — the measure is per *sample*, not per episode.
        let with = episode(0, 0, 50, &[2, 2]);
        let without_a = episode(1, 100, 50, &[]);
        let without_b = episode(2, 200, 50, &[]);
        let mixed = concurrency_over([&without_a, &with, &without_b]).unwrap();
        let alone = concurrency_over([&with]).unwrap();
        assert!((mixed - alone).abs() < 1e-12);
        assert!((mixed - 2.0).abs() < 1e-12);
        // All-empty sets still report None, like an empty iterator.
        assert_eq!(concurrency_over([&without_a, &without_b]), None);
    }

    #[test]
    fn mixed_set_matches_hand_computed_fig7_value() {
        // Hand-computed Fig 7 average: 7 samples across three episodes
        // with runnable counts 1,2,3 | 0,1 | 3,3 -> 13/7.
        let s = session(vec![
            episode(0, 0, 50, &[1, 2, 3]),
            episode(1, 100, 50, &[0, 1]),
            episode(2, 200, 50, &[3, 3]),
        ]);
        let got = concurrency_over(s.episodes()).unwrap();
        assert!((got - 13.0 / 7.0).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn below_one_means_gui_blocked() {
        let s = session(vec![episode(0, 0, 200, &[0, 0, 1, 1])]);
        let c = concurrency_stats(&s);
        assert!(c.perceptible < 1.0);
        assert!((c.perceptible - 0.5).abs() < 1e-12);
    }
}
