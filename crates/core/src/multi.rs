//! Multi-trace pattern analysis.
//!
//! LagAlyzer "integrates multiple traces in its analysis" (paper §VI):
//! because shape signatures are canonical strings over resolved names,
//! patterns can be merged across sessions, letting a developer see whether
//! a slow pattern recurs in every session (a stable problem) or only in
//! one (an environmental fluke).

use std::collections::HashMap;

use lagalyzer_model::DurationNs;

use crate::occurrence::Occurrence;
use crate::patterns::PatternSet;
use crate::session::{AnalysisConfig, AnalysisSession};
use crate::shape::ShapeSignature;

/// One pattern merged across several sessions.
#[derive(Clone, Debug)]
pub struct MultiPattern {
    signature: ShapeSignature,
    /// Per-session episode counts, indexed like the input sessions; zero
    /// when the session never exhibited the pattern.
    episodes_per_session: Vec<u64>,
    /// Per-session perceptible counts.
    perceptible_per_session: Vec<u64>,
    total_lag: DurationNs,
    max_lag: DurationNs,
}

impl MultiPattern {
    /// The shared structural signature.
    pub fn signature(&self) -> &ShapeSignature {
        &self.signature
    }

    /// Episode counts per session.
    pub fn episodes_per_session(&self) -> &[u64] {
        &self.episodes_per_session
    }

    /// Perceptible episode counts per session.
    pub fn perceptible_per_session(&self) -> &[u64] {
        &self.perceptible_per_session
    }

    /// Total episodes across sessions.
    pub fn total_episodes(&self) -> u64 {
        self.episodes_per_session.iter().sum()
    }

    /// Total perceptible episodes across sessions.
    pub fn total_perceptible(&self) -> u64 {
        self.perceptible_per_session.iter().sum()
    }

    /// Number of sessions in which the pattern occurred at all.
    pub fn session_coverage(&self) -> usize {
        self.episodes_per_session.iter().filter(|&&n| n > 0).count()
    }

    /// True if the pattern was perceptible in every session it occurred in
    /// — a *stable* performance problem worth a developer's attention.
    pub fn consistently_perceptible(&self) -> bool {
        self.total_perceptible() > 0
            && self
                .episodes_per_session
                .iter()
                .zip(&self.perceptible_per_session)
                .all(|(&eps, &perc)| eps == 0 || perc > 0)
    }

    /// The pattern's occurrence class over the merged episode population.
    pub fn occurrence(&self) -> Occurrence {
        let total = self.total_episodes();
        let perceptible = self.total_perceptible();
        if perceptible == 0 {
            Occurrence::Never
        } else if perceptible == total {
            Occurrence::Always
        } else if perceptible == 1 {
            Occurrence::Once
        } else {
            Occurrence::Sometimes
        }
    }

    /// Total lag across all sessions.
    pub fn total_lag(&self) -> DurationNs {
        self.total_lag
    }

    /// The worst single episode across all sessions.
    pub fn max_lag(&self) -> DurationNs {
        self.max_lag
    }
}

/// Patterns merged across sessions.
///
/// ```
/// use lagalyzer_core::prelude::*;
/// use lagalyzer_sim::{apps, runner};
///
/// let sessions: Vec<AnalysisSession> = (0..2)
///     .map(|i| AnalysisSession::new(
///         runner::simulate_session(&apps::crossword_sage(), i, 1),
///         AnalysisConfig::default(),
///     ))
///     .collect();
/// let multi = MultiPatternSet::mine(&sessions);
/// assert_eq!(multi.sessions(), 2);
/// assert!(multi.recurring().count() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct MultiPatternSet {
    patterns: Vec<MultiPattern>,
    sessions: usize,
}

impl MultiPatternSet {
    /// Mines each session and merges the resulting pattern sets by
    /// signature. Sessions may come from different applications, but the
    /// merge is only meaningful within one application (as in the paper's
    /// four-sessions-per-app methodology).
    pub fn mine(sessions: &[AnalysisSession]) -> MultiPatternSet {
        MultiPatternSet::mine_with_jobs(sessions, 1)
    }

    /// Like [`MultiPatternSet::mine`], but shards the *sessions* over up
    /// to `jobs` worker threads (each session is mined serially within its
    /// shard). Per-session pattern sets are reassembled in session order
    /// before the merge, so the result is byte-identical to the serial
    /// path for any `jobs`.
    pub fn mine_with_jobs(sessions: &[AnalysisSession], jobs: usize) -> MultiPatternSet {
        let per_session: Vec<PatternSet> =
            crate::parallel::map_shards(sessions.len(), jobs, |range| {
                sessions[range]
                    .iter()
                    .map(AnalysisSession::mine_patterns)
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        MultiPatternSet::merge(&per_session)
    }

    /// Mines raw decoded traces — the corpus-wide mining entry point:
    /// wraps each trace in an [`AnalysisSession`] and runs
    /// [`MultiPatternSet::mine_with_jobs`], so mining a corpus's
    /// [`par_decode`](lagalyzer_trace::CorpusReader) output is
    /// byte-identical to mining the same sessions loaded from N separate
    /// files.
    pub fn mine_traces_with_jobs(
        traces: Vec<lagalyzer_model::SessionTrace>,
        config: AnalysisConfig,
        jobs: usize,
    ) -> MultiPatternSet {
        let sessions: Vec<AnalysisSession> = traces
            .into_iter()
            .map(|t| AnalysisSession::new(t, config))
            .collect();
        MultiPatternSet::mine_with_jobs(&sessions, jobs)
    }

    /// Merges already-mined pattern sets (one per session, in order).
    pub fn merge(sets: &[PatternSet]) -> MultiPatternSet {
        let n = sets.len();
        let mut merged: HashMap<ShapeSignature, MultiPattern> = HashMap::new();
        for (i, set) in sets.iter().enumerate() {
            for p in set.patterns() {
                let entry = merged
                    .entry(p.signature().clone())
                    .or_insert_with(|| MultiPattern {
                        signature: p.signature().clone(),
                        episodes_per_session: vec![0; n],
                        perceptible_per_session: vec![0; n],
                        total_lag: DurationNs::ZERO,
                        max_lag: DurationNs::ZERO,
                    });
                entry.episodes_per_session[i] += p.count();
                entry.perceptible_per_session[i] += p.perceptible_count();
                entry.total_lag += p.stats().total;
                entry.max_lag = entry.max_lag.max(p.stats().max);
            }
        }
        let mut patterns: Vec<MultiPattern> = merged.into_values().collect();
        patterns.sort_by(|a, b| {
            b.total_episodes()
                .cmp(&a.total_episodes())
                .then_with(|| a.signature.cmp(&b.signature))
        });
        MultiPatternSet {
            patterns,
            sessions: n,
        }
    }

    /// Merged patterns, most episodes first.
    pub fn patterns(&self) -> &[MultiPattern] {
        &self.patterns
    }

    /// Number of distinct merged patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if no session contained structured episodes.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Number of merged sessions.
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Patterns present in every session — the application's recurring
    /// behaviours.
    pub fn recurring(&self) -> impl Iterator<Item = &MultiPattern> {
        let n = self.sessions;
        self.patterns
            .iter()
            .filter(move |p| p.session_coverage() == n)
    }

    /// The stable performance problems: perceptible in every session they
    /// occur in, sorted by total lag.
    pub fn stable_problems(&self) -> Vec<&MultiPattern> {
        let mut out: Vec<&MultiPattern> = self
            .patterns
            .iter()
            .filter(|p| p.consistently_perceptible())
            .collect();
        out.sort_by_key(|p| std::cmp::Reverse(p.total_lag()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    /// One session: each spec is (class name, durations).
    fn session(specs: &[(&str, &[u64])]) -> AnalysisSession {
        let meta = SessionMeta {
            application: "M".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(100),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut cursor = 0u64;
        let mut id = 0u32;
        for (name, durations) in specs {
            for &dur in *durations {
                let m = b.symbols_mut().method(name, "run");
                let mut t = IntervalTreeBuilder::new();
                t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
                t.leaf(
                    IntervalKind::Listener,
                    Some(m),
                    ms(cursor + 1),
                    ms(cursor + dur - 1),
                )
                .unwrap();
                t.exit(ms(cursor + dur)).unwrap();
                b.push_episode(
                    EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
                        .tree(t.finish().unwrap())
                        .build()
                        .unwrap(),
                )
                .unwrap();
                id += 1;
                cursor += dur + 5;
            }
        }
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn merges_by_signature_across_sessions() {
        let s1 = session(&[("a.A", &[200, 50]), ("b.B", &[30])]);
        let s2 = session(&[("a.A", &[300]), ("c.C", &[40])]);
        let multi = MultiPatternSet::mine(&[s1, s2]);
        assert_eq!(multi.len(), 3);
        assert_eq!(multi.sessions(), 2);
        let a = multi
            .patterns()
            .iter()
            .find(|p| p.signature().as_str().contains("a.A"))
            .unwrap();
        assert_eq!(a.episodes_per_session(), &[2, 1]);
        assert_eq!(a.perceptible_per_session(), &[1, 1]);
        assert_eq!(a.total_episodes(), 3);
        assert_eq!(a.session_coverage(), 2);
        assert_eq!(a.max_lag(), DurationNs::from_millis(300));
        assert_eq!(a.total_lag(), DurationNs::from_millis(550));
    }

    #[test]
    fn recurring_requires_every_session() {
        let s1 = session(&[("a.A", &[50]), ("b.B", &[30])]);
        let s2 = session(&[("a.A", &[60])]);
        let multi = MultiPatternSet::mine(&[s1, s2]);
        let recurring: Vec<&str> = multi.recurring().map(|p| p.signature().as_str()).collect();
        assert_eq!(recurring.len(), 1);
        assert!(recurring[0].contains("a.A"));
    }

    #[test]
    fn stable_problems_are_perceptible_wherever_present() {
        let s1 = session(&[("stable.S", &[200]), ("flaky.F", &[250, 20])]);
        let s2 = session(&[("stable.S", &[150]), ("flaky.F", &[25])]);
        let multi = MultiPatternSet::mine(&[s1, s2]);
        let stable = multi.stable_problems();
        assert_eq!(stable.len(), 1);
        assert!(stable[0].signature().as_str().contains("stable.S"));
        assert!(stable[0].consistently_perceptible());
    }

    #[test]
    fn merged_occurrence_classes() {
        let s1 = session(&[
            ("always.A", &[200]),
            ("never.N", &[10]),
            ("mix.M", &[150, 10, 160]),
        ]);
        let s2 = session(&[("always.A", &[220]), ("once.O", &[120, 10])]);
        let multi = MultiPatternSet::mine(&[s1, s2]);
        let by_name = |n: &str| {
            multi
                .patterns()
                .iter()
                .find(|p| p.signature().as_str().contains(n))
                .unwrap()
                .occurrence()
        };
        assert_eq!(by_name("always.A"), Occurrence::Always);
        assert_eq!(by_name("never.N"), Occurrence::Never);
        assert_eq!(by_name("mix.M"), Occurrence::Sometimes);
        assert_eq!(by_name("once.O"), Occurrence::Once);
    }

    #[test]
    fn empty_inputs() {
        let multi = MultiPatternSet::merge(&[]);
        assert!(multi.is_empty());
        assert_eq!(multi.sessions(), 0);
        assert!(multi.stable_problems().is_empty());
    }

    #[test]
    fn simulated_sessions_share_most_patterns() {
        // Four sessions of the same app should share their big patterns
        // (the template library is identical given the same study seed).
        use lagalyzer_sim::{apps, runner};
        let sessions: Vec<AnalysisSession> = (0..2)
            .map(|i| {
                AnalysisSession::new(
                    runner::simulate_session(&apps::crossword_sage(), i, 7),
                    AnalysisConfig::default(),
                )
            })
            .collect();
        let multi = MultiPatternSet::mine(&sessions);
        let recurring = multi.recurring().count();
        assert!(
            recurring > 10,
            "expected shared patterns across sessions, got {recurring}"
        );
    }
}
