//! The parallel sharded analysis pipeline (re-export).
//!
//! The worker pool implementation lives in [`lagalyzer_model::parallel`]
//! so lower layers — notably `lagalyzer-trace`, which this crate depends
//! on — can shard work over the same pool without a dependency cycle.
//! `lagalyzer_core::parallel` remains the canonical import for analysis
//! code; everything re-exported here behaves exactly as before.

pub use lagalyzer_model::parallel::{
    available_jobs, effective_jobs, map_shards, map_shards_init, resolve_jobs, shard_ranges,
};
