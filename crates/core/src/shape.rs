//! Structural tree signatures (the paper's §II-D pattern definition).
//!
//! Two episodes are equivalent when their interval trees have the same
//! *structure*: the same interval types and symbolic information (class and
//! method names) in the same tree arrangement. Two things are deliberately
//! excluded from the comparison:
//!
//! * **GC nodes** — garbage collection may or may not be the fault of the
//!   surrounding interval, so ignoring GC lets a developer see whether a
//!   pattern always or rarely contains collections;
//! * **timing** — structurally equal episodes belong to the same pattern
//!   regardless of how long they took, which is what makes the
//!   always/sometimes/once/never occurrence analysis possible.
//!
//! The signature is rendered as a canonical string over resolved symbol
//! names, so signatures are stable across sessions (each session has its
//! own symbol-id assignment) and hash/compare without false positives.

use std::fmt;

use lagalyzer_model::{IntervalKind, IntervalTree, NodeId, SymbolTable};

/// A canonical structural signature of an episode's interval tree.
///
/// ```
/// use lagalyzer_model::prelude::*;
/// use lagalyzer_core::ShapeSignature;
///
/// # fn main() -> Result<(), ModelError> {
/// let mut symbols = SymbolTable::new();
/// let paint = symbols.method("javax.swing.JFrame", "paint");
/// let mut b = IntervalTreeBuilder::new();
/// b.enter(IntervalKind::Dispatch, None, TimeNs::ZERO)?;
/// b.leaf(IntervalKind::Paint, Some(paint), TimeNs::from_millis(1), TimeNs::from_millis(5))?;
/// b.exit(TimeNs::from_millis(6))?;
/// let tree = b.finish()?;
/// let sig = ShapeSignature::of_tree(&tree, &symbols);
/// assert_eq!(sig.as_str(), "D[P(javax.swing.JFrame.paint)]");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeSignature {
    key: String,
}

impl ShapeSignature {
    /// Computes the signature of a tree, excluding GC nodes and timing.
    pub fn of_tree(tree: &IntervalTree, symbols: &SymbolTable) -> Self {
        let mut key = String::with_capacity(tree.len() * 8);
        write_node(tree, tree.root(), symbols, &mut key);
        ShapeSignature { key }
    }

    /// The canonical string form.
    pub fn as_str(&self) -> &str {
        &self.key
    }
}

impl fmt::Debug for ShapeSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShapeSignature({})", self.key)
    }
}

impl fmt::Display for ShapeSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key)
    }
}

/// Serializes one node (and its non-GC descendants) into `out`.
fn write_node(tree: &IntervalTree, id: NodeId, symbols: &SymbolTable, out: &mut String) {
    let interval = tree.interval(id);
    debug_assert_ne!(interval.kind, IntervalKind::Gc, "GC nodes are skipped");
    out.push(interval.kind.tag() as char);
    if let Some(sym) = interval.symbol {
        out.push('(');
        out.push_str(symbols.resolve(sym.class).unwrap_or("?"));
        out.push('.');
        out.push_str(symbols.resolve(sym.method).unwrap_or("?"));
        out.push(')');
    }
    let children: Vec<NodeId> = tree
        .children(id)
        .iter()
        .copied()
        .filter(|&c| tree.interval(c).kind != IntervalKind::Gc)
        .collect();
    if !children.is_empty() {
        out.push('[');
        for (i, child) in children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node(tree, *child, symbols, out);
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    /// Builds a dispatch tree from a closure operating on the builder.
    fn tree<F: FnOnce(&mut IntervalTreeBuilder, &mut SymbolTable)>(
        f: F,
    ) -> (IntervalTree, SymbolTable) {
        let mut symbols = SymbolTable::new();
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        f(&mut b, &mut symbols);
        b.exit(ms(10_000)).unwrap();
        (b.finish().unwrap(), symbols)
    }

    #[test]
    fn bare_dispatch_signature() {
        let (t, s) = tree(|_, _| {});
        assert_eq!(ShapeSignature::of_tree(&t, &s).as_str(), "D");
    }

    #[test]
    fn timing_is_ignored() {
        let (fast, s1) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        let (slow, s2) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.leaf(IntervalKind::Listener, Some(m), ms(100), ms(9000))
                .unwrap();
        });
        assert_eq!(
            ShapeSignature::of_tree(&fast, &s1),
            ShapeSignature::of_tree(&slow, &s2)
        );
    }

    #[test]
    fn gc_nodes_are_excluded() {
        let (without_gc, s1) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.leaf(IntervalKind::Native, Some(m), ms(1), ms(5)).unwrap();
        });
        let (with_gc, s2) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.enter(IntervalKind::Native, Some(m), ms(1)).unwrap();
            b.leaf(IntervalKind::Gc, None, ms(2), ms(3)).unwrap();
            b.exit(ms(5)).unwrap();
            // A sibling GC directly under the dispatch, too.
            b.leaf(IntervalKind::Gc, None, ms(6), ms(7)).unwrap();
        });
        assert_eq!(
            ShapeSignature::of_tree(&without_gc, &s1),
            ShapeSignature::of_tree(&with_gc, &s2)
        );
    }

    #[test]
    fn symbols_distinguish_patterns() {
        let (a, s1) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        let (b2, s2) = tree(|b, sym| {
            let m = sym.method("a.B", "other");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        assert_ne!(
            ShapeSignature::of_tree(&a, &s1),
            ShapeSignature::of_tree(&b2, &s2)
        );
    }

    #[test]
    fn kinds_distinguish_patterns() {
        let (a, s1) = tree(|b, _| {
            b.leaf(IntervalKind::Paint, None, ms(1), ms(2)).unwrap();
        });
        let (b2, s2) = tree(|b, _| {
            b.leaf(IntervalKind::Listener, None, ms(1), ms(2)).unwrap();
        });
        assert_ne!(
            ShapeSignature::of_tree(&a, &s1),
            ShapeSignature::of_tree(&b2, &s2)
        );
    }

    #[test]
    fn child_order_matters() {
        let (ab, s1) = tree(|b, _| {
            b.leaf(IntervalKind::Paint, None, ms(1), ms(2)).unwrap();
            b.leaf(IntervalKind::Native, None, ms(3), ms(4)).unwrap();
        });
        let (ba, s2) = tree(|b, _| {
            b.leaf(IntervalKind::Native, None, ms(1), ms(2)).unwrap();
            b.leaf(IntervalKind::Paint, None, ms(3), ms(4)).unwrap();
        });
        assert_ne!(
            ShapeSignature::of_tree(&ab, &s1),
            ShapeSignature::of_tree(&ba, &s2)
        );
    }

    #[test]
    fn nesting_matters() {
        let (nested, s1) = tree(|b, _| {
            b.enter(IntervalKind::Listener, None, ms(1)).unwrap();
            b.leaf(IntervalKind::Paint, None, ms(2), ms(3)).unwrap();
            b.exit(ms(4)).unwrap();
        });
        let (flat, s2) = tree(|b, _| {
            b.leaf(IntervalKind::Listener, None, ms(1), ms(2)).unwrap();
            b.leaf(IntervalKind::Paint, None, ms(3), ms(4)).unwrap();
        });
        assert_ne!(
            ShapeSignature::of_tree(&nested, &s1),
            ShapeSignature::of_tree(&flat, &s2)
        );
    }

    #[test]
    fn signature_is_stable_across_symbol_tables() {
        // Same logical structure, different interning order.
        let (a, s1) = tree(|b, sym| {
            let _noise = sym.intern("unrelated.Class");
            let m = sym.method("x.Y", "z");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        let (b2, s2) = tree(|b, sym| {
            let m = sym.method("x.Y", "z");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        assert_eq!(
            ShapeSignature::of_tree(&a, &s1),
            ShapeSignature::of_tree(&b2, &s2)
        );
    }

    #[test]
    fn display_renders_key() {
        let (t, s) = tree(|b, _| {
            b.leaf(IntervalKind::Async, None, ms(1), ms(2)).unwrap();
        });
        let sig = ShapeSignature::of_tree(&t, &s);
        assert_eq!(sig.to_string(), "D[A]");
        assert_eq!(format!("{sig:?}"), "ShapeSignature(D[A])");
    }
}
