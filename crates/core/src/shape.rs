//! Structural tree signatures (the paper's §II-D pattern definition).
//!
//! Two episodes are equivalent when their interval trees have the same
//! *structure*: the same interval types and symbolic information (class and
//! method names) in the same tree arrangement. Two things are deliberately
//! excluded from the comparison:
//!
//! * **GC nodes** — garbage collection may or may not be the fault of the
//!   surrounding interval, so ignoring GC lets a developer see whether a
//!   pattern always or rarely contains collections;
//! * **timing** — structurally equal episodes belong to the same pattern
//!   regardless of how long they took, which is what makes the
//!   always/sometimes/once/never occurrence analysis possible.
//!
//! # The two-level scheme
//!
//! The signature exists at two levels:
//!
//! 1. **Per-session shape ids** (the mining hot path). Inside one session
//!    every episode's tree is serialized by [`write_shape_tokens`] into a
//!    compact byte stream over raw [`SymbolId`]s — no name resolution, no
//!    string formatting — and hash-consed by a
//!    [`ShapeInterner`](crate::intern::ShapeInterner) into a dense
//!    [`ShapeId`](crate::intern::ShapeId). Equal token streams mean equal
//!    structure (the encoding is injective: symbol ids are fixed-width, so
//!    the stream parses unambiguously), and within one session equal
//!    symbol *ids* mean equal symbol *names*, because a [`SymbolTable`]
//!    interns injectively. Bucketing by `ShapeId` is an array index.
//! 2. **Canonical strings** (the session boundary). Each session assigns
//!    symbol ids independently, so shape ids and tokens are meaningless
//!    across sessions. Everything cross-session — the pattern browser,
//!    [`diff`](crate::diff), [`multi`](crate::multi)-trace merging,
//!    stable-pattern matching — uses this [`ShapeSignature`]: the token
//!    stream rendered once per *pattern* (not per episode) against the
//!    session's own `SymbolTable`, via
//!    [`ShapeSignature::from_tokens`]. The rendering is stable across
//!    sessions and identical to what [`ShapeSignature::of_tree`] produces
//!    directly from the tree.
//!
//! [`SymbolId`]: lagalyzer_model::SymbolId

use std::fmt;

use lagalyzer_model::{IntervalKind, IntervalTree, NodeId, SymbolTable};

/// A canonical structural signature of an episode's interval tree.
///
/// ```
/// use lagalyzer_model::prelude::*;
/// use lagalyzer_core::ShapeSignature;
///
/// # fn main() -> Result<(), ModelError> {
/// let mut symbols = SymbolTable::new();
/// let paint = symbols.method("javax.swing.JFrame", "paint");
/// let mut b = IntervalTreeBuilder::new();
/// b.enter(IntervalKind::Dispatch, None, TimeNs::ZERO)?;
/// b.leaf(IntervalKind::Paint, Some(paint), TimeNs::from_millis(1), TimeNs::from_millis(5))?;
/// b.exit(TimeNs::from_millis(6))?;
/// let tree = b.finish()?;
/// let sig = ShapeSignature::of_tree(&tree, &symbols);
/// assert_eq!(sig.as_str(), "D[P(javax.swing.JFrame.paint)]");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeSignature {
    key: String,
}

impl ShapeSignature {
    /// Computes the signature of a tree, excluding GC nodes and timing.
    pub fn of_tree(tree: &IntervalTree, symbols: &SymbolTable) -> Self {
        let mut key = String::with_capacity(rendered_len_bound(tree, symbols));
        write_node(tree, tree.root(), symbols, &mut key);
        ShapeSignature { key }
    }

    /// Renders a [`write_shape_tokens`] stream into the canonical string,
    /// resolving symbol ids through `symbols` (which must be the table the
    /// tokens were built against). Produces exactly what
    /// [`ShapeSignature::of_tree`] produces on the originating tree.
    pub fn from_tokens(tokens: &[u8], symbols: &SymbolTable) -> Self {
        let expected = tokens_rendered_len(tokens, symbols);
        let mut key = String::with_capacity(expected);
        // Structural bytes (kind tags, `[`, `,`, `]`) are ASCII and render
        // as themselves, and none of them is `(` — so from any structural
        // position the next `(` starts a symbol group, and whole
        // structural runs copy over verbatim.
        let mut i = 0;
        while i < tokens.len() {
            let run = tokens[i..]
                .iter()
                .position(|&b| b == b'(')
                .map_or(tokens.len(), |p| i + p);
            // SAFETY-free: the run is all ASCII by the grammar above.
            key.push_str(std::str::from_utf8(&tokens[i..run]).expect("structural bytes are ASCII"));
            if run == tokens.len() {
                break;
            }
            let (class, method) = read_symbol_pair(tokens, run);
            key.push('(');
            key.push_str(symbols.resolve(class).unwrap_or("?"));
            key.push('.');
            key.push_str(symbols.resolve(method).unwrap_or("?"));
            key.push(')');
            i = run + SYMBOL_GROUP_LEN;
        }
        debug_assert_eq!(key.len(), expected, "length pre-pass must be exact");
        ShapeSignature { key }
    }

    /// The canonical string form.
    pub fn as_str(&self) -> &str {
        &self.key
    }
}

impl fmt::Debug for ShapeSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShapeSignature({})", self.key)
    }
}

impl fmt::Display for ShapeSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key)
    }
}

/// Byte length of one `(` class-id method-id `)` token group.
const SYMBOL_GROUP_LEN: usize = 1 + 4 + 4 + 1;

/// Serializes the shape of `tree` into `out` as a compact token stream
/// over raw symbol ids, excluding GC subtrees and all timing. Returns
/// `true` if the tree contains at least one GC interval (which the
/// stream, by construction, does not mention).
///
/// Token grammar, byte for byte:
///
/// * one [`IntervalKind::tag`] byte per non-GC node (`D`, `L`, `P`, `N`,
///   `A`);
/// * if the node carries a symbol: `(`, the class [`SymbolId`] and the
///   method [`SymbolId`] as 4-byte little-endian words, `)` — fixed
///   width, so the stream is self-delimiting and the encoding injective;
/// * if the node has non-GC children: `[`, the children's streams
///   separated by `,`, `]`.
///
/// Structural bytes mirror the canonical string rendering, so
/// [`ShapeSignature::from_tokens`] only has to resolve the symbol groups.
///
/// The caller owns `out` so the hot path can reuse one scratch buffer
/// across episodes (`out` is appended to, not cleared).
///
/// [`SymbolId`]: lagalyzer_model::SymbolId
/// [`IntervalKind::tag`]: lagalyzer_model::IntervalKind::tag
pub fn write_shape_tokens(tree: &IntervalTree, out: &mut Vec<u8>) -> bool {
    // The node array is in preorder with siblings in start-time order
    // (builder invariant, see `IntervalTree::nodes`), so one linear scan
    // visits nodes in exactly the order the signature grammar needs — no
    // recursion, no per-node child-list chasing. The stored depths drive
    // the structural bytes: between consecutive *emitted* nodes, a +1
    // depth step opens the parent's child list (`[`), and a drop of `k`
    // closes `k` lists (`]` × k) before the sibling separator (`,`). A
    // step can never exceed +1: an emitted node's parent has no GC
    // ancestor either, and in preorder it sits between any shallower
    // predecessor and its child.
    let nodes = tree.nodes();
    debug_assert_ne!(
        nodes[0].interval.kind,
        IntervalKind::Gc,
        "the root is never GC"
    );
    let mut contains_gc = false;
    let mut prev_depth = 0u32;
    let mut i = 0usize;
    while i < nodes.len() {
        let node = &nodes[i];
        if node.interval.kind == IntervalKind::Gc {
            // Skipping the GC node skips its whole (contiguous) subtree,
            // so any GC interval in the tree is either seen here or sits
            // below one that is: the flag equals `contains_kind(Gc)`.
            contains_gc = true;
            let gc_depth = node.depth;
            i += 1;
            while i < nodes.len() && nodes[i].depth > gc_depth {
                i += 1;
            }
            continue;
        }
        if i > 0 {
            if node.depth > prev_depth {
                debug_assert_eq!(node.depth, prev_depth + 1);
                out.push(b'[');
            } else {
                for _ in node.depth..prev_depth {
                    out.push(b']');
                }
                out.push(b',');
            }
        }
        out.push(node.interval.kind.tag());
        if let Some(sym) = node.interval.symbol {
            out.push(b'(');
            out.extend_from_slice(&sym.class.as_raw().to_le_bytes());
            out.extend_from_slice(&sym.method.as_raw().to_le_bytes());
            out.push(b')');
        }
        prev_depth = node.depth;
        i += 1;
    }
    for _ in 0..prev_depth {
        out.push(b']');
    }
    contains_gc
}

fn read_symbol_pair(
    tokens: &[u8],
    at: usize,
) -> (lagalyzer_model::SymbolId, lagalyzer_model::SymbolId) {
    let word = |o: usize| {
        u32::from_le_bytes(
            tokens[o..o + 4]
                .try_into()
                .expect("truncated symbol group in shape tokens"),
        )
    };
    debug_assert_eq!(tokens[at + SYMBOL_GROUP_LEN - 1], b')');
    (
        lagalyzer_model::SymbolId::from_raw(word(at + 1)),
        lagalyzer_model::SymbolId::from_raw(word(at + 5)),
    )
}

/// Exact rendered length of a token stream (pre-pass for a single
/// allocation in [`ShapeSignature::from_tokens`]).
fn tokens_rendered_len(tokens: &[u8], symbols: &SymbolTable) -> usize {
    // Same group-jumping walk as `from_tokens`: structural runs count as
    // their own length, each 10-byte symbol group renders as
    // `(class.method)`.
    let mut len = 0;
    let mut i = 0;
    while i < tokens.len() {
        let run = tokens[i..]
            .iter()
            .position(|&b| b == b'(')
            .map_or(tokens.len(), |p| i + p);
        len += run - i;
        if run == tokens.len() {
            break;
        }
        let (class, method) = read_symbol_pair(tokens, run);
        len += 3 // '(', '.', ')'
            + symbols.resolve(class).unwrap_or("?").len()
            + symbols.resolve(method).unwrap_or("?").len();
        i = run + SYMBOL_GROUP_LEN;
    }
    len
}

/// An upper bound on the rendered signature length, from summed symbol
/// name lengths.
///
/// The old heuristic (`tree.len() * 8`) undersized any tree with real
/// fully-qualified class names (e.g. `javax.swing.JFrame.paint` alone is
/// 24 bytes), forcing reallocation while rendering. Per node the string
/// holds one kind tag plus at most one comma and (amortizing a parent's
/// brackets over itself) two brackets — 4 structural bytes — plus, for
/// symbol-bearing nodes, `(`, `.`, `)` and the two resolved names. GC
/// nodes are counted even though they never render, which keeps this a
/// cheap flat loop; the result is a tight upper bound, so rendering never
/// reallocates.
fn rendered_len_bound(tree: &IntervalTree, symbols: &SymbolTable) -> usize {
    tree.iter()
        .map(|(_, node)| {
            4 + node.interval.symbol.map_or(0, |sym| {
                3 + symbols.resolve(sym.class).unwrap_or("?").len()
                    + symbols.resolve(sym.method).unwrap_or("?").len()
            })
        })
        .sum()
}

/// Serializes one node (and its non-GC descendants) into `out`.
fn write_node(tree: &IntervalTree, id: NodeId, symbols: &SymbolTable, out: &mut String) {
    let interval = tree.interval(id);
    debug_assert_ne!(interval.kind, IntervalKind::Gc, "GC nodes are skipped");
    out.push(interval.kind.tag() as char);
    if let Some(sym) = interval.symbol {
        out.push('(');
        out.push_str(symbols.resolve(sym.class).unwrap_or("?"));
        out.push('.');
        out.push_str(symbols.resolve(sym.method).unwrap_or("?"));
        out.push(')');
    }
    let mut wrote_child = false;
    for &child in tree.children(id) {
        if tree.interval(child).kind == IntervalKind::Gc {
            continue;
        }
        out.push(if wrote_child { ',' } else { '[' });
        wrote_child = true;
        write_node(tree, child, symbols, out);
    }
    if wrote_child {
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    /// Builds a dispatch tree from a closure operating on the builder.
    fn tree<F: FnOnce(&mut IntervalTreeBuilder, &mut SymbolTable)>(
        f: F,
    ) -> (IntervalTree, SymbolTable) {
        let mut symbols = SymbolTable::new();
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        f(&mut b, &mut symbols);
        b.exit(ms(10_000)).unwrap();
        (b.finish().unwrap(), symbols)
    }

    /// `from_tokens` over `write_shape_tokens` output.
    fn via_tokens(t: &IntervalTree, s: &SymbolTable) -> ShapeSignature {
        let mut tokens = Vec::new();
        write_shape_tokens(t, &mut tokens);
        ShapeSignature::from_tokens(&tokens, s)
    }

    #[test]
    fn bare_dispatch_signature() {
        let (t, s) = tree(|_, _| {});
        assert_eq!(ShapeSignature::of_tree(&t, &s).as_str(), "D");
        assert_eq!(via_tokens(&t, &s).as_str(), "D");
    }

    #[test]
    fn timing_is_ignored() {
        let (fast, s1) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        let (slow, s2) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.leaf(IntervalKind::Listener, Some(m), ms(100), ms(9000))
                .unwrap();
        });
        assert_eq!(
            ShapeSignature::of_tree(&fast, &s1),
            ShapeSignature::of_tree(&slow, &s2)
        );
    }

    #[test]
    fn gc_nodes_are_excluded() {
        let (without_gc, s1) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.leaf(IntervalKind::Native, Some(m), ms(1), ms(5)).unwrap();
        });
        let (with_gc, s2) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.enter(IntervalKind::Native, Some(m), ms(1)).unwrap();
            b.leaf(IntervalKind::Gc, None, ms(2), ms(3)).unwrap();
            b.exit(ms(5)).unwrap();
            // A sibling GC directly under the dispatch, too.
            b.leaf(IntervalKind::Gc, None, ms(6), ms(7)).unwrap();
        });
        assert_eq!(
            ShapeSignature::of_tree(&without_gc, &s1),
            ShapeSignature::of_tree(&with_gc, &s2)
        );
    }

    #[test]
    fn symbols_distinguish_patterns() {
        let (a, s1) = tree(|b, sym| {
            let m = sym.method("a.B", "c");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        let (b2, s2) = tree(|b, sym| {
            let m = sym.method("a.B", "other");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        assert_ne!(
            ShapeSignature::of_tree(&a, &s1),
            ShapeSignature::of_tree(&b2, &s2)
        );
    }

    #[test]
    fn kinds_distinguish_patterns() {
        let (a, s1) = tree(|b, _| {
            b.leaf(IntervalKind::Paint, None, ms(1), ms(2)).unwrap();
        });
        let (b2, s2) = tree(|b, _| {
            b.leaf(IntervalKind::Listener, None, ms(1), ms(2)).unwrap();
        });
        assert_ne!(
            ShapeSignature::of_tree(&a, &s1),
            ShapeSignature::of_tree(&b2, &s2)
        );
    }

    #[test]
    fn child_order_matters() {
        let (ab, s1) = tree(|b, _| {
            b.leaf(IntervalKind::Paint, None, ms(1), ms(2)).unwrap();
            b.leaf(IntervalKind::Native, None, ms(3), ms(4)).unwrap();
        });
        let (ba, s2) = tree(|b, _| {
            b.leaf(IntervalKind::Native, None, ms(1), ms(2)).unwrap();
            b.leaf(IntervalKind::Paint, None, ms(3), ms(4)).unwrap();
        });
        assert_ne!(
            ShapeSignature::of_tree(&ab, &s1),
            ShapeSignature::of_tree(&ba, &s2)
        );
    }

    #[test]
    fn nesting_matters() {
        let (nested, s1) = tree(|b, _| {
            b.enter(IntervalKind::Listener, None, ms(1)).unwrap();
            b.leaf(IntervalKind::Paint, None, ms(2), ms(3)).unwrap();
            b.exit(ms(4)).unwrap();
        });
        let (flat, s2) = tree(|b, _| {
            b.leaf(IntervalKind::Listener, None, ms(1), ms(2)).unwrap();
            b.leaf(IntervalKind::Paint, None, ms(3), ms(4)).unwrap();
        });
        assert_ne!(
            ShapeSignature::of_tree(&nested, &s1),
            ShapeSignature::of_tree(&flat, &s2)
        );
    }

    #[test]
    fn signature_is_stable_across_symbol_tables() {
        // Same logical structure, different interning order.
        let (a, s1) = tree(|b, sym| {
            let _noise = sym.intern("unrelated.Class");
            let m = sym.method("x.Y", "z");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        let (b2, s2) = tree(|b, sym| {
            let m = sym.method("x.Y", "z");
            b.leaf(IntervalKind::Listener, Some(m), ms(1), ms(2))
                .unwrap();
        });
        assert_eq!(
            ShapeSignature::of_tree(&a, &s1),
            ShapeSignature::of_tree(&b2, &s2)
        );
        // The token streams differ (different symbol ids), but their
        // canonical renderings agree — the two-level scheme's invariant.
        let mut ta = Vec::new();
        let mut tb = Vec::new();
        write_shape_tokens(&a, &mut ta);
        write_shape_tokens(&b2, &mut tb);
        assert_ne!(ta, tb);
        assert_eq!(
            ShapeSignature::from_tokens(&ta, &s1),
            ShapeSignature::from_tokens(&tb, &s2)
        );
    }

    #[test]
    fn display_renders_key() {
        let (t, s) = tree(|b, _| {
            b.leaf(IntervalKind::Async, None, ms(1), ms(2)).unwrap();
        });
        let sig = ShapeSignature::of_tree(&t, &s);
        assert_eq!(sig.to_string(), "D[A]");
        assert_eq!(format!("{sig:?}"), "ShapeSignature(D[A])");
    }

    #[test]
    fn token_rendering_matches_of_tree_on_complex_trees() {
        let (t, s) = tree(|b, sym| {
            let paint = sym.method("javax.swing.JComponent", "paintComponent");
            let listener = sym.method("org.example.app.ActionDispatcher", "actionPerformed");
            b.enter(IntervalKind::Listener, Some(listener), ms(1))
                .unwrap();
            b.leaf(IntervalKind::Gc, None, ms(2), ms(3)).unwrap();
            b.enter(IntervalKind::Paint, Some(paint), ms(4)).unwrap();
            b.leaf(IntervalKind::Native, None, ms(5), ms(6)).unwrap();
            b.exit(ms(7)).unwrap();
            b.exit(ms(8)).unwrap();
            b.leaf(IntervalKind::Async, None, ms(9), ms(10)).unwrap();
        });
        let direct = ShapeSignature::of_tree(&t, &s);
        let rendered = via_tokens(&t, &s);
        assert_eq!(direct, rendered);
        assert_eq!(
            direct.as_str(),
            "D[L(org.example.app.ActionDispatcher.actionPerformed)\
             [P(javax.swing.JComponent.paintComponent)[N]],A]"
        );
    }

    #[test]
    fn token_writer_reports_gc_like_contains_kind() {
        let (with_gc, _) = tree(|b, _| {
            b.enter(IntervalKind::Native, None, ms(1)).unwrap();
            b.leaf(IntervalKind::Gc, None, ms(2), ms(3)).unwrap();
            b.exit(ms(4)).unwrap();
        });
        let (without_gc, _) = tree(|b, _| {
            b.leaf(IntervalKind::Native, None, ms(1), ms(2)).unwrap();
        });
        let mut scratch = Vec::new();
        assert_eq!(
            write_shape_tokens(&with_gc, &mut scratch),
            with_gc.contains_kind(IntervalKind::Gc)
        );
        scratch.clear();
        assert_eq!(
            write_shape_tokens(&without_gc, &mut scratch),
            without_gc.contains_kind(IntervalKind::Gc)
        );
    }

    #[test]
    fn presize_bound_prevents_reallocation() {
        // NetBeans-scale names: long fully-qualified classes that broke
        // the old `tree.len() * 8` guess.
        let (t, s) = tree(|b, sym| {
            for i in 0..16 {
                let m = sym.method(
                    &format!("org.netbeans.modules.editor.completion.CompletionImpl{i}"),
                    "processKeyEventNotification",
                );
                b.enter(IntervalKind::Listener, Some(m), ms(i as u64 + 1))
                    .unwrap();
            }
            for i in 0..16 {
                b.exit(ms(100 + i)).unwrap();
            }
        });
        let sig = ShapeSignature::of_tree(&t, &s);
        let bound = rendered_len_bound(&t, &s);
        assert!(
            sig.as_str().len() <= bound,
            "bound {bound} must cover rendered length {}",
            sig.as_str().len()
        );
        assert!(
            sig.as_str().len() > t.len() * 8,
            "this tree must defeat the old heuristic for the test to bite"
        );
    }
}
