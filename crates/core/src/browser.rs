//! The pattern browser (the paper's §II-E).
//!
//! Presents a table of patterns with episode counts and min / average /
//! max / total lag, lets the developer hide patterns without perceptible
//! episodes, and supports selecting a pattern to list its episodes (the
//! first of which the GUI shows as an episode sketch).

use lagalyzer_model::{DurationNs, Episode};

use crate::occurrence::Occurrence;
use crate::patterns::{Pattern, PatternSet};
use crate::session::AnalysisSession;

/// Sort orders for the pattern table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortBy {
    /// Most episodes first (the default).
    Count,
    /// Largest total lag first.
    TotalLag,
    /// Largest maximum lag first.
    MaxLag,
    /// Most perceptible episodes first.
    PerceptibleCount,
}

/// One row of the pattern table.
#[derive(Clone, Debug)]
pub struct BrowserRow<'a> {
    /// Position in the current view (0-based).
    pub rank: usize,
    /// The pattern behind this row.
    pub pattern: &'a Pattern,
    /// The pattern's occurrence class.
    pub occurrence: Occurrence,
}

/// An interactive view over a mined [`PatternSet`].
pub struct PatternBrowser<'a> {
    /// Absent when the patterns were mined from persisted summaries (the
    /// warm path) — episode listings are then unavailable, but the table
    /// renders identically because a warm set is clean by construction.
    session: Option<&'a AnalysisSession>,
    patterns: &'a PatternSet,
    perceptible_only: bool,
    sort: SortBy,
}

impl<'a> PatternBrowser<'a> {
    /// Opens a browser over `patterns` mined from `session`.
    pub fn new(session: &'a AnalysisSession, patterns: &'a PatternSet) -> Self {
        PatternBrowser {
            session: Some(session),
            patterns,
            perceptible_only: false,
            sort: SortBy::Count,
        }
    }

    /// Opens a browser over `patterns` alone — the warm path has no
    /// decoded session. [`episodes_of`](Self::episodes_of) and
    /// [`first_episode`](Self::first_episode) must not be called on such
    /// a browser.
    pub fn of_patterns(patterns: &'a PatternSet) -> Self {
        PatternBrowser {
            session: None,
            patterns,
            perceptible_only: false,
            sort: SortBy::Count,
        }
    }

    /// Shows only patterns with at least one perceptible episode.
    pub fn perceptible_only(&mut self, on: bool) -> &mut Self {
        self.perceptible_only = on;
        self
    }

    /// Changes the sort order.
    pub fn sort_by(&mut self, sort: SortBy) -> &mut Self {
        self.sort = sort;
        self
    }

    /// The rows of the current view.
    pub fn rows(&self) -> Vec<BrowserRow<'a>> {
        let mut rows: Vec<&Pattern> = self
            .patterns
            .patterns()
            .iter()
            .filter(|p| !self.perceptible_only || p.perceptible_count() > 0)
            .collect();
        match self.sort {
            SortBy::Count => rows.sort_by_key(|p| std::cmp::Reverse(p.count())),
            SortBy::TotalLag => rows.sort_by_key(|p| std::cmp::Reverse(p.stats().total)),
            SortBy::MaxLag => rows.sort_by_key(|p| std::cmp::Reverse(p.stats().max)),
            SortBy::PerceptibleCount => {
                rows.sort_by_key(|p| std::cmp::Reverse(p.perceptible_count()));
            }
        }
        rows.into_iter()
            .enumerate()
            .map(|(rank, pattern)| BrowserRow {
                rank,
                pattern,
                occurrence: Occurrence::of_pattern(pattern),
            })
            .collect()
    }

    /// The episodes of one pattern, in dispatch order — the list the
    /// developer reveals by selecting a row.
    pub fn episodes_of(&self, pattern: &Pattern) -> Vec<&'a Episode> {
        let session = self
            .session
            .expect("episode listing needs a decoded session");
        pattern
            .episode_indices()
            .iter()
            .map(|&i| &session.episodes()[i])
            .collect()
    }

    /// The first episode of a pattern — the one the GUI sketches when a
    /// pattern is selected.
    pub fn first_episode(&self, pattern: &Pattern) -> &'a Episode {
        let session = self
            .session
            .expect("episode listing needs a decoded session");
        &session.episodes()[pattern.episode_indices()[0]]
    }

    /// Renders the current view as a plain-text table (used by the CLI and
    /// handy in tests).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("rank  episodes  perceptible  min        avg        max        total      occurrence  signature\n");
        for row in self.rows() {
            let s = row.pattern.stats();
            out.push_str(&format!(
                "{:<5} {:<9} {:<12} {:<10} {:<10} {:<10} {:<10} {:<11} {}\n",
                row.rank,
                s.count,
                row.pattern.perceptible_count(),
                fmt_dur(s.min),
                fmt_dur(s.mean()),
                fmt_dur(s.max),
                fmt_dur(s.total),
                row.occurrence,
                truncate(row.pattern.signature().as_str(), 60),
            ));
        }
        if self.session.is_some_and(AnalysisSession::is_salvaged) || self.patterns.salvaged() {
            out.push_str(
                "note: trace salvaged from a damaged file; pattern population may be incomplete\n",
            );
        }
        if let Some(check) = self.session.and_then(AnalysisSession::check_outcome) {
            if !check.is_clean() {
                out.push_str(&format!(
                    "note: semantic check reported {} error(s), {} warning(s), {} note(s); run `lagalyzer check` for details\n",
                    check.errors, check.warnings, check.notes
                ));
            }
        }
        out
    }
}

fn fmt_dur(d: DurationNs) -> String {
    d.to_string()
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        format!("{}…", &s[..max])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn build_session() -> AnalysisSession {
        let meta = SessionMeta {
            application: "B".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(60),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut cursor = 0u64;
        let mut id = 0u32;
        // Pattern A: 3 fast episodes. Pattern B: 2 episodes, one slow.
        for (name, durs) in [("a.A", vec![10u64, 11, 12]), ("b.B", vec![500, 20])] {
            for dur in durs {
                let m = b.symbols_mut().method(name, "run");
                let mut t = IntervalTreeBuilder::new();
                t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
                t.leaf(
                    IntervalKind::Listener,
                    Some(m),
                    ms(cursor + 1),
                    ms(cursor + dur - 1),
                )
                .unwrap();
                t.exit(ms(cursor + dur)).unwrap();
                b.push_episode(
                    EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
                        .tree(t.finish().unwrap())
                        .build()
                        .unwrap(),
                )
                .unwrap();
                cursor += dur + 10;
                id += 1;
            }
        }
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn default_view_sorted_by_count() {
        let session = build_session();
        let patterns = session.mine_patterns();
        let browser = PatternBrowser::new(&session, &patterns);
        let rows = browser.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].pattern.count(), 3);
        assert_eq!(rows[1].pattern.count(), 2);
        assert_eq!(rows[0].rank, 0);
    }

    #[test]
    fn perceptible_filter_elides_fast_patterns() {
        let session = build_session();
        let patterns = session.mine_patterns();
        let mut browser = PatternBrowser::new(&session, &patterns);
        browser.perceptible_only(true);
        let rows = browser.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].pattern.perceptible_count(), 1);
        assert_eq!(rows[0].occurrence, Occurrence::Once);
    }

    #[test]
    fn sort_orders() {
        let session = build_session();
        let patterns = session.mine_patterns();
        let mut browser = PatternBrowser::new(&session, &patterns);
        browser.sort_by(SortBy::TotalLag);
        let rows = browser.rows();
        // Pattern B's 520 ms total beats pattern A's 33 ms.
        assert_eq!(rows[0].pattern.count(), 2);
        browser.sort_by(SortBy::MaxLag);
        assert_eq!(
            browser.rows()[0].pattern.stats().max,
            DurationNs::from_millis(500)
        );
        browser.sort_by(SortBy::PerceptibleCount);
        assert_eq!(browser.rows()[0].pattern.perceptible_count(), 1);
    }

    #[test]
    fn episode_listing_and_first() {
        let session = build_session();
        let patterns = session.mine_patterns();
        let browser = PatternBrowser::new(&session, &patterns);
        let slow_pattern = browser
            .rows()
            .into_iter()
            .find(|r| r.pattern.perceptible_count() > 0)
            .unwrap()
            .pattern;
        let episodes = browser.episodes_of(slow_pattern);
        assert_eq!(episodes.len(), 2);
        assert!(episodes[0].start() < episodes[1].start());
        let first = browser.first_episode(slow_pattern);
        assert_eq!(first.id(), episodes[0].id());
        assert_eq!(first.duration(), DurationNs::from_millis(500));
    }

    #[test]
    fn table_renders() {
        let session = build_session();
        let patterns = session.mine_patterns();
        let browser = PatternBrowser::new(&session, &patterns);
        let table = browser.to_table();
        assert!(table.contains("episodes"));
        assert!(table.contains("a.A"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn truncate_helper() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("0123456789abc", 10), "0123456789…");
    }
}
