//! Occurrence classification of patterns (the paper's Fig 4).
//!
//! For each pattern: are its episodes perceptibly slow **always**,
//! **sometimes**, **once**, or **never**? Singleton patterns with a
//! perceptible episode classify as *always* (paper §IV-B).

use crate::patterns::{Pattern, PatternSet};

/// The Fig 4 occurrence classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Occurrence {
    /// All episodes of the pattern are perceptible — a deterministic
    /// problem, probably quick to understand.
    Always,
    /// Some but not all episodes are perceptible — possibly
    /// non-deterministic, possibly hard to understand.
    Sometimes,
    /// Exactly one episode is perceptible — often the pattern's first,
    /// pointing at initialization activity such as class loading.
    Once,
    /// No episode is perceptible.
    Never,
}

impl Occurrence {
    /// All classes in Fig 4 order.
    pub const ALL: [Occurrence; 4] = [
        Occurrence::Always,
        Occurrence::Sometimes,
        Occurrence::Once,
        Occurrence::Never,
    ];

    /// Display label as used in the figure.
    pub const fn label(self) -> &'static str {
        match self {
            Occurrence::Always => "always",
            Occurrence::Sometimes => "sometimes",
            Occurrence::Once => "once",
            Occurrence::Never => "never",
        }
    }

    /// Classifies one pattern.
    pub fn of_pattern(pattern: &Pattern) -> Occurrence {
        let perceptible = pattern.perceptible_count();
        let count = pattern.count();
        if perceptible == 0 {
            Occurrence::Never
        } else if perceptible == count {
            // Includes perceptible singletons, per the paper.
            Occurrence::Always
        } else if perceptible == 1 {
            Occurrence::Once
        } else {
            Occurrence::Sometimes
        }
    }
}

impl std::fmt::Display for Occurrence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-class pattern counts for one session (one Fig 4 bar).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OccurrenceBreakdown {
    /// Patterns whose episodes are always perceptible.
    pub always: u64,
    /// Patterns with several (but not all) perceptible episodes.
    pub sometimes: u64,
    /// Patterns with exactly one perceptible episode.
    pub once: u64,
    /// Patterns with no perceptible episode.
    pub never: u64,
}

impl OccurrenceBreakdown {
    /// Classifies every pattern in `set`.
    pub fn of(set: &PatternSet) -> OccurrenceBreakdown {
        let mut out = OccurrenceBreakdown::default();
        for p in set.patterns() {
            match Occurrence::of_pattern(p) {
                Occurrence::Always => out.always += 1,
                Occurrence::Sometimes => out.sometimes += 1,
                Occurrence::Once => out.once += 1,
                Occurrence::Never => out.never += 1,
            }
        }
        out
    }

    /// Total patterns classified.
    pub fn total(&self) -> u64 {
        self.always + self.sometimes + self.once + self.never
    }

    /// Class shares in Fig 4 order `[always, sometimes, once, never]`,
    /// each in `[0, 1]`.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total().max(1) as f64;
        [
            self.always as f64 / t,
            self.sometimes as f64 / t,
            self.once as f64 / t,
            self.never as f64 / t,
        ]
    }

    /// Fraction of patterns that are consistently slow or fast (always +
    /// never) — the paper reports 96% on average.
    pub fn consistent_fraction(&self) -> f64 {
        let t = self.total().max(1) as f64;
        (self.always + self.never) as f64 / t
    }

    /// Fraction of patterns with at least one perceptible episode — the
    /// paper reports 22% on average.
    pub fn ever_perceptible_fraction(&self) -> f64 {
        let t = self.total().max(1) as f64;
        (self.always + self.sometimes + self.once) as f64 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{AnalysisConfig, AnalysisSession};
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    /// One pattern per spec: (name, list of episode durations in ms).
    fn session_with(specs: &[(&str, &[u64])]) -> AnalysisSession {
        let meta = SessionMeta {
            application: "O".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(1000),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut cursor = 0u64;
        let mut id = 0u32;
        // Interleave specs round-robin so grouping does the work.
        let max_len = specs.iter().map(|(_, d)| d.len()).max().unwrap_or(0);
        for round in 0..max_len {
            for (name, durations) in specs {
                let Some(&dur) = durations.get(round) else {
                    continue;
                };
                let m = b.symbols_mut().method(name, "run");
                let mut t = IntervalTreeBuilder::new();
                t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
                t.leaf(
                    IntervalKind::Listener,
                    Some(m),
                    ms(cursor + 1),
                    ms(cursor + dur - 1),
                )
                .unwrap();
                t.exit(ms(cursor + dur)).unwrap();
                b.push_episode(
                    EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
                        .tree(t.finish().unwrap())
                        .build()
                        .unwrap(),
                )
                .unwrap();
                id += 1;
                cursor += dur + 10;
            }
        }
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn four_classes_classified() {
        let s = session_with(&[
            ("always.A", &[200, 300, 150]),
            ("sometimes.S", &[200, 50, 150, 40]),
            ("once.O", &[200, 50, 40]),
            ("never.N", &[50, 40, 30]),
        ]);
        let set = s.mine_patterns();
        let breakdown = OccurrenceBreakdown::of(&set);
        assert_eq!(
            breakdown,
            OccurrenceBreakdown {
                always: 1,
                sometimes: 1,
                once: 1,
                never: 1,
            }
        );
        assert_eq!(breakdown.total(), 4);
    }

    #[test]
    fn perceptible_singleton_is_always() {
        let s = session_with(&[("single.S", &[250])]);
        let set = s.mine_patterns();
        assert_eq!(
            Occurrence::of_pattern(&set.patterns()[0]),
            Occurrence::Always
        );
    }

    #[test]
    fn imperceptible_singleton_is_never() {
        let s = session_with(&[("single.S", &[25])]);
        let set = s.mine_patterns();
        assert_eq!(
            Occurrence::of_pattern(&set.patterns()[0]),
            Occurrence::Never
        );
    }

    #[test]
    fn two_perceptible_of_three_is_sometimes() {
        let s = session_with(&[("p.P", &[200, 200, 50])]);
        let set = s.mine_patterns();
        assert_eq!(
            Occurrence::of_pattern(&set.patterns()[0]),
            Occurrence::Sometimes
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let s = session_with(&[
            ("a.A", &[200]),
            ("b.B", &[50]),
            ("c.C", &[50, 200]),
            ("d.D", &[10, 20]),
        ]);
        let breakdown = OccurrenceBreakdown::of(&s.mine_patterns());
        let fr = breakdown.fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_fractions() {
        let s = session_with(&[
            ("a.A", &[200, 300]),   // always
            ("b.B", &[10, 20]),     // never
            ("c.C", &[200, 10, 5]), // once
        ]);
        let breakdown = OccurrenceBreakdown::of(&s.mine_patterns());
        assert!((breakdown.consistent_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((breakdown.ever_perceptible_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(Occurrence::Always.to_string(), "always");
        assert_eq!(Occurrence::Never.label(), "never");
        assert_eq!(Occurrence::ALL.len(), 4);
    }

    #[test]
    fn empty_breakdown() {
        let b = OccurrenceBreakdown::default();
        assert_eq!(b.total(), 0);
        assert_eq!(b.fractions(), [0.0; 4]);
        assert_eq!(b.consistent_fraction(), 0.0);
    }
}
