//! The analysis session: one ingested trace plus analysis configuration.

use lagalyzer_model::{DurationNs, Episode, SessionTrace};

use crate::patterns::PatternSet;

/// Configuration shared by all analyses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Episodes at or above this duration are perceptible (paper: 100 ms).
    pub perceptible_threshold: DurationNs,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            perceptible_threshold: DurationNs::PERCEPTIBLE_DEFAULT,
        }
    }
}

/// How the session's trace was obtained.
///
/// A salvaged trace is one recovered from a damaged file by the
/// lenient decoder (`lagalyzer_trace::read_bytes_salvage`); its episode
/// population may be incomplete, so analyses derived from it carry this
/// flag into their result tables and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Provenance {
    /// Decoded strictly; the trace is complete and verified.
    #[default]
    Clean,
    /// Recovered by salvage decoding; parts of the trace were dropped.
    Salvaged {
        /// Number of skip events the salvager recorded.
        skips: u64,
        /// Number of episodes known to be lost to damage.
        episodes_lost: u64,
    },
}

impl Provenance {
    /// True when the trace was recovered from a damaged file.
    pub fn is_salvaged(&self) -> bool {
        matches!(self, Provenance::Salvaged { .. })
    }
}

/// The recorded outcome of a semantic `check` pass over the session's
/// trace (diagnostic counts by severity; see the `lagalyzer-check`
/// crate). Attached via [`AnalysisSession::record_check`] so reports can
/// say not only *that* the trace was salvaged but whether its decoded
/// content also violated analysis invariants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Error-severity diagnostics (violated analysis invariants).
    pub errors: u64,
    /// Warning-severity diagnostics (weakened assumptions).
    pub warnings: u64,
    /// Note-severity diagnostics (informational).
    pub notes: u64,
}

impl CheckOutcome {
    /// True when the check pass reported nothing at all.
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warnings == 0 && self.notes == 0
    }
}

/// One trace loaded for analysis.
///
/// LagAlyzer is an offline tool: the complete trace must exist before
/// analysis starts (paper §II-A), which is exactly what this type
/// represents. All analyses take an `&AnalysisSession`.
#[derive(Clone, Debug)]
pub struct AnalysisSession {
    trace: SessionTrace,
    config: AnalysisConfig,
    provenance: Provenance,
    excluded_episodes: u64,
    check_outcome: Option<CheckOutcome>,
}

impl AnalysisSession {
    /// Ingests a trace with the given configuration.
    pub fn new(trace: SessionTrace, config: AnalysisConfig) -> Self {
        AnalysisSession {
            trace,
            config,
            provenance: Provenance::Clean,
            excluded_episodes: 0,
            check_outcome: None,
        }
    }

    /// Ingests a trace while recording how it was obtained.
    pub fn with_provenance(
        trace: SessionTrace,
        config: AnalysisConfig,
        provenance: Provenance,
    ) -> Self {
        AnalysisSession {
            trace,
            config,
            provenance,
            excluded_episodes: 0,
            check_outcome: None,
        }
    }

    /// Ingests a trace from which an ingest-time filter excluded
    /// `excluded_episodes` episodes before decoding (skip-decode
    /// filtering); analyses see only what survived, but reports can say
    /// how much was left out.
    pub fn with_exclusions(
        trace: SessionTrace,
        config: AnalysisConfig,
        provenance: Provenance,
        excluded_episodes: u64,
    ) -> Self {
        AnalysisSession {
            trace,
            config,
            provenance,
            excluded_episodes,
            check_outcome: None,
        }
    }

    /// Episodes an ingest-time filter excluded before decoding; zero for
    /// unfiltered sessions.
    pub fn excluded_episodes(&self) -> u64 {
        self.excluded_episodes
    }

    /// Records the outcome of a semantic check pass over this trace so
    /// downstream reports can surface it (`analyze --check`).
    pub fn record_check(&mut self, outcome: CheckOutcome) {
        self.check_outcome = Some(outcome);
    }

    /// The recorded check outcome, if a check pass ran.
    pub fn check_outcome(&self) -> Option<CheckOutcome> {
        self.check_outcome
    }

    /// How this session's trace was obtained.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// True when the trace was recovered from a damaged file.
    pub fn is_salvaged(&self) -> bool {
        self.provenance.is_salvaged()
    }

    /// The underlying trace.
    pub fn trace(&self) -> &SessionTrace {
        &self.trace
    }

    /// The analysis configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The perceptibility threshold in effect.
    pub fn perceptible_threshold(&self) -> DurationNs {
        self.config.perceptible_threshold
    }

    /// True if `episode` is perceptible under this session's threshold.
    pub fn is_perceptible(&self, episode: &Episode) -> bool {
        episode.is_perceptible(self.config.perceptible_threshold)
    }

    /// All traced episodes.
    pub fn episodes(&self) -> &[Episode] {
        self.trace.episodes()
    }

    /// The perceptible episodes.
    pub fn perceptible_episodes(&self) -> impl Iterator<Item = &Episode> {
        self.trace
            .perceptible_episodes(self.config.perceptible_threshold)
    }

    /// Mines the episode patterns of this session (paper §II-C/§II-D).
    pub fn mine_patterns(&self) -> PatternSet {
        PatternSet::mine(self)
    }

    /// Mines the episode patterns on up to `jobs` worker threads; the
    /// result is byte-identical to [`AnalysisSession::mine_patterns`]
    /// (see [`crate::parallel`]).
    pub fn mine_patterns_with_jobs(&self, jobs: usize) -> PatternSet {
        PatternSet::mine_with_jobs(self, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::prelude::*;

    fn tiny_trace() -> SessionTrace {
        let meta = SessionMeta {
            application: "T".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(10),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        for (i, dur) in [50u64, 150].iter().enumerate() {
            let start = i as u64 * 1000;
            let mut t = IntervalTreeBuilder::new();
            t.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(start))
                .unwrap();
            t.exit(TimeNs::from_millis(start + dur)).unwrap();
            b.push_episode(
                EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
                    .tree(t.finish().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn default_config_uses_100ms() {
        assert_eq!(
            AnalysisConfig::default().perceptible_threshold,
            DurationNs::from_millis(100)
        );
    }

    #[test]
    fn perceptible_filtering_respects_config() {
        let session = AnalysisSession::new(tiny_trace(), AnalysisConfig::default());
        assert_eq!(session.perceptible_episodes().count(), 1);
        let lax = AnalysisSession::new(
            tiny_trace(),
            AnalysisConfig {
                perceptible_threshold: DurationNs::from_millis(10),
            },
        );
        assert_eq!(lax.perceptible_episodes().count(), 2);
    }

    #[test]
    fn provenance_defaults_to_clean_and_is_carried() {
        let clean = AnalysisSession::new(tiny_trace(), AnalysisConfig::default());
        assert_eq!(clean.provenance(), Provenance::Clean);
        assert!(!clean.is_salvaged());
        let salvaged = AnalysisSession::with_provenance(
            tiny_trace(),
            AnalysisConfig::default(),
            Provenance::Salvaged {
                skips: 3,
                episodes_lost: 1,
            },
        );
        assert!(salvaged.is_salvaged());
        assert_eq!(
            salvaged.provenance(),
            Provenance::Salvaged {
                skips: 3,
                episodes_lost: 1,
            }
        );
    }

    #[test]
    fn exclusions_default_to_zero_and_are_carried() {
        let plain = AnalysisSession::new(tiny_trace(), AnalysisConfig::default());
        assert_eq!(plain.excluded_episodes(), 0);
        let filtered = AnalysisSession::with_exclusions(
            tiny_trace(),
            AnalysisConfig::default(),
            Provenance::Clean,
            5,
        );
        assert_eq!(filtered.excluded_episodes(), 5);
        assert!(!filtered.is_salvaged());
    }

    #[test]
    fn check_outcome_defaults_to_none_and_is_carried() {
        let mut session = AnalysisSession::new(tiny_trace(), AnalysisConfig::default());
        assert_eq!(session.check_outcome(), None);
        session.record_check(CheckOutcome {
            errors: 0,
            warnings: 2,
            notes: 1,
        });
        let outcome = session.check_outcome().unwrap();
        assert_eq!(outcome.warnings, 2);
        assert!(!outcome.is_clean());
        assert!(CheckOutcome::default().is_clean());
    }

    #[test]
    fn accessors() {
        let session = AnalysisSession::new(tiny_trace(), AnalysisConfig::default());
        assert_eq!(session.episodes().len(), 2);
        assert_eq!(session.trace().meta().application, "T");
        assert!(session.is_perceptible(&session.episodes()[1]));
        assert!(!session.is_perceptible(&session.episodes()[0]));
    }
}
