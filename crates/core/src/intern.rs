//! Hash-consed shape interning: dense per-session ids for shape tokens.
//!
//! Pattern mining groups episodes by tree structure. The grouping key used
//! to be the canonical signature *string* (resolved symbol names, rendered
//! per episode), which put a heap allocation, name resolution, formatting,
//! and SipHash on the mining hot path. The [`ShapeInterner`] replaces that
//! with hash-consing: the compact token stream produced by
//! [`crate::shape::write_shape_tokens`] (raw [`SymbolId`]s, no name
//! resolution) is interned once, and every later episode with the same
//! shape maps to the same dense [`ShapeId`] via a single [`FxHasher`] pass
//! plus one memcmp. Buckets are keyed by the 64-bit hash itself through an
//! identity hasher, so no re-hashing happens inside the map; collisions
//! are resolved by explicit chains and byte comparison, never by trusting
//! the hash.
//!
//! `ShapeId`s are **per-interner**: two sessions assign symbol ids (and
//! hence shape tokens and shape ids) independently. Anything that crosses
//! a session boundary — the pattern browser, session diffs, multi-trace
//! merging — goes through the canonical string rendering
//! ([`ShapeInterner::render`]), produced once per *pattern* rather than
//! once per episode. See [`crate::shape`] for the two-level scheme.
//!
//! [`SymbolId`]: lagalyzer_model::SymbolId

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use lagalyzer_model::SymbolTable;

use crate::shape::ShapeSignature;

/// A dense, per-interner id for one distinct shape token stream.
///
/// Ids start at zero and increase by one per fresh shape, so they double
/// as indices into side tables (that is what makes pattern bucketing an
/// array index instead of a hash lookup). They are meaningless outside
/// the [`ShapeInterner`] that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ShapeId(u32);

impl ShapeId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> ShapeId {
        ShapeId(u32::try_from(index).expect("more than u32::MAX distinct shapes"))
    }
}

/// The multiplier from the Fx family of hash functions.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A single-pass Fx-style hasher (the rustc `FxHash` recurrence), written
/// here so the hot path needs neither SipHash nor a new dependency.
///
/// Not DoS-resistant — fine for shape tokens, which are derived data, and
/// for [`ShapeInterner`], which never trusts the hash (it compares bytes).
#[derive(Clone, Default, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes per multiply; the tail word carries its length
        // so "ab" and "ab\0" hash differently.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            tail[7] = rem.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes a token stream in one pass, mixing in the length up front.
///
/// Long streams (deep trees) are folded through four independent Fx
/// lanes, 32 bytes per round: the Fx recurrence is a serial
/// rotate–xor–multiply chain, so a single lane is latency-bound at one
/// multiply per 8 bytes, while four lanes keep the multiplier busy. The
/// lanes are combined through the same recurrence, and the sub-32-byte
/// tail goes through the plain [`FxHasher`] word loop.
pub fn hash_tokens(tokens: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(tokens.len() as u64);
    let mut rest = tokens;
    if rest.len() >= 32 {
        let mut lanes = [h.hash; 4];
        // Distinct seeds per lane so a 32-byte block of equal words does
        // not collapse the lanes into one.
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = lane.wrapping_add(FX_SEED.rotate_left(i as u32 * 16));
        }
        while rest.len() >= 32 {
            let (block, tail) = rest.split_at(32);
            for (i, lane) in lanes.iter_mut().enumerate() {
                let word = u64::from_le_bytes(
                    block[i * 8..i * 8 + 8]
                        .try_into()
                        .expect("8-byte lane word"),
                );
                *lane = (lane.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
            }
            rest = tail;
        }
        h.hash = 0;
        for lane in lanes {
            h.add(lane);
        }
    }
    h.write(rest);
    h.finish()
}

/// A hasher that passes pre-computed `u64` keys through unchanged.
///
/// The interner's buckets are keyed by [`hash_tokens`] output; re-hashing
/// a hash would only burn cycles.
#[derive(Clone, Default, Debug)]
pub struct IdentityHasher {
    hash: u64,
}

impl Hasher for IdentityHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher only hashes u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.hash = v;
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

type IdentityBuild = BuildHasherDefault<IdentityHasher>;

/// A hash-consing interner for shape token streams.
///
/// ```
/// use lagalyzer_core::intern::ShapeInterner;
///
/// let mut interner = ShapeInterner::new();
/// let (a, fresh_a) = interner.intern(b"D[P]");
/// let (b, fresh_b) = interner.intern(b"D[P]");
/// let (c, _) = interner.intern(b"D[L]");
/// assert_eq!(a, b);
/// assert!(fresh_a && !fresh_b);
/// assert_ne!(a, c);
/// assert_eq!(interner.tokens(a), b"D[P]");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ShapeInterner {
    /// Token stream per [`ShapeId`], in interning order.
    shapes: Vec<Box<[u8]>>,
    /// Hash → candidate ids. Chains are almost always length 1; hash
    /// equality is never trusted, membership is decided by byte equality.
    buckets: HashMap<u64, Vec<ShapeId>, IdentityBuild>,
}

impl ShapeInterner {
    /// Creates an empty interner.
    pub fn new() -> ShapeInterner {
        ShapeInterner::default()
    }

    /// Number of distinct shapes interned.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Interns `tokens`, returning its dense id and whether the shape was
    /// new to this interner.
    pub fn intern(&mut self, tokens: &[u8]) -> (ShapeId, bool) {
        self.intern_hashed(hash_tokens(tokens), tokens)
    }

    /// Interning with a caller-supplied hash (the testable core of
    /// [`ShapeInterner::intern`]; colliding hashes must still intern
    /// correctly).
    fn intern_hashed(&mut self, hash: u64, tokens: &[u8]) -> (ShapeId, bool) {
        let chain = self.buckets.entry(hash).or_default();
        for &id in chain.iter() {
            if &*self.shapes[id.index()] == tokens {
                return (id, false);
            }
        }
        let id = ShapeId::from_index(self.shapes.len());
        self.shapes.push(tokens.into());
        chain.push(id);
        (id, true)
    }

    /// The token stream behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn tokens(&self, id: ShapeId) -> &[u8] {
        &self.shapes[id.index()]
    }

    /// Renders `id` as the canonical signature string, resolving symbol
    /// ids through `symbols` (which must be the table the tokens were
    /// built against). This is the session boundary: everything
    /// cross-session compares these strings, not ids.
    pub fn render(&self, id: ShapeId, symbols: &SymbolTable) -> ShapeSignature {
        ShapeSignature::from_tokens(self.tokens(id), symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::write_shape_tokens;
    use lagalyzer_model::prelude::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = ShapeInterner::new();
        let (a, fa) = i.intern(b"D");
        let (b, fb) = i.intern(b"D[P]");
        let (a2, fa2) = i.intern(b"D");
        assert!(fa && fb && !fa2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn empty_tokens_intern() {
        // A structureless shape ("" would be a bare root with no
        // children in some encodings) must round-trip like any other.
        let mut i = ShapeInterner::new();
        let (id, fresh) = i.intern(b"");
        assert!(fresh);
        assert_eq!(i.tokens(id), b"");
        assert_eq!(i.intern(b""), (id, false));
    }

    #[test]
    fn colliding_hashes_still_separate_shapes() {
        // Force every shape into one bucket: correctness must come from
        // the byte comparison, not from hash quality.
        let mut i = ShapeInterner::new();
        let (a, _) = i.intern_hashed(42, b"D[P]");
        let (b, fresh_b) = i.intern_hashed(42, b"D[L]");
        let (c, fresh_c) = i.intern_hashed(42, b"D[P]");
        assert_ne!(a, b, "distinct tokens must get distinct ids");
        assert!(fresh_b);
        assert_eq!(a, c);
        assert!(!fresh_c);
        assert_eq!(i.tokens(a), b"D[P]");
        assert_eq!(i.tokens(b), b"D[L]");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn fx_hash_distinguishes_tail_lengths() {
        assert_ne!(hash_tokens(b"ab"), hash_tokens(b"ab\0"));
        assert_ne!(hash_tokens(b""), hash_tokens(b"\0"));
        assert_eq!(hash_tokens(b"D[P]"), hash_tokens(b"D[P]"));
    }

    #[test]
    fn render_matches_of_tree() {
        let mut symbols = SymbolTable::new();
        let m = symbols.method("javax.swing.JFrame", "paint");
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, TimeNs::ZERO).unwrap();
        b.leaf(
            IntervalKind::Paint,
            Some(m),
            TimeNs::from_millis(1),
            TimeNs::from_millis(5),
        )
        .unwrap();
        b.exit(TimeNs::from_millis(6)).unwrap();
        let tree = b.finish().unwrap();

        let mut tokens = Vec::new();
        write_shape_tokens(&tree, &mut tokens);
        let mut i = ShapeInterner::new();
        let (id, _) = i.intern(&tokens);
        assert_eq!(
            i.render(id, &symbols),
            ShapeSignature::of_tree(&tree, &symbols)
        );
    }

    #[test]
    fn gc_exclusion_parity_with_string_signatures() {
        // Two trees that differ only by GC nodes intern to the same id,
        // exactly as their string signatures are equal.
        let build = |with_gc: bool| {
            let mut symbols = SymbolTable::new();
            let m = symbols.method("a.B", "c");
            let mut b = IntervalTreeBuilder::new();
            b.enter(IntervalKind::Dispatch, None, TimeNs::ZERO).unwrap();
            b.enter(IntervalKind::Native, Some(m), TimeNs::from_millis(1))
                .unwrap();
            if with_gc {
                b.leaf(
                    IntervalKind::Gc,
                    None,
                    TimeNs::from_millis(2),
                    TimeNs::from_millis(3),
                )
                .unwrap();
            }
            b.exit(TimeNs::from_millis(5)).unwrap();
            b.exit(TimeNs::from_millis(6)).unwrap();
            (b.finish().unwrap(), symbols)
        };
        let (plain, s1) = build(false);
        let (gc, s2) = build(true);
        let mut tokens_plain = Vec::new();
        let mut tokens_gc = Vec::new();
        assert!(!write_shape_tokens(&plain, &mut tokens_plain));
        assert!(write_shape_tokens(&gc, &mut tokens_gc));
        let mut i = ShapeInterner::new();
        let (a, _) = i.intern(&tokens_plain);
        let (b, fresh) = i.intern(&tokens_gc);
        assert_eq!(a, b, "GC nodes must not split shapes");
        assert!(!fresh);
        assert_eq!(
            ShapeSignature::of_tree(&plain, &s1),
            ShapeSignature::of_tree(&gc, &s2)
        );
    }
}
