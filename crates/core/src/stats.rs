//! Overall session statistics — one Table III row.

use lagalyzer_model::DurationNs;

use crate::session::AnalysisSession;

/// The Table III columns for one session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionStats {
    /// End-to-end session time ("E2E").
    pub end_to_end: DurationNs,
    /// Fraction of end-to-end time spent handling requests ("In-Eps").
    pub in_episode_fraction: f64,
    /// Episodes filtered out by the tracer ("< 3ms").
    pub short_count: u64,
    /// Traced episodes ("≥ 3ms").
    pub traced_count: u64,
    /// Perceptible episodes ("≥ 100ms").
    pub perceptible_count: u64,
    /// Perceptible episodes per minute of in-episode time ("Long/min").
    pub long_per_minute: f64,
    /// Distinct patterns ("Dist").
    pub distinct_patterns: u64,
    /// Episodes covered by patterns ("#Eps").
    pub episodes_in_patterns: u64,
    /// Fraction of singleton patterns ("One-Ep").
    pub singleton_fraction: f64,
    /// Mean dispatch-descendant count over patterns ("Descs").
    pub mean_tree_size: f64,
    /// Mean interval-tree depth over patterns ("Depth").
    pub mean_tree_depth: f64,
}

impl SessionStats {
    /// Computes the full row for one session.
    pub fn compute(session: &AnalysisSession) -> SessionStats {
        SessionStats::compute_with_jobs(session, 1)
    }

    /// Computes the full row on up to `jobs` worker threads. Pattern
    /// mining and the perceptible-episode count are sharded over episodes;
    /// both merges are exact, so the row is byte-identical to
    /// [`SessionStats::compute`] for any `jobs`.
    pub fn compute_with_jobs(session: &AnalysisSession, jobs: usize) -> SessionStats {
        let trace = session.trace();
        let patterns = session.mine_patterns_with_jobs(jobs);
        let perceptible_count: u64 =
            crate::parallel::map_shards(session.episodes().len(), jobs, |range| {
                session.episodes()[range]
                    .iter()
                    .filter(|e| session.is_perceptible(e))
                    .count() as u64
            })
            .into_iter()
            .sum();
        let in_episode = trace.in_episode_time();
        let in_minutes = in_episode.as_secs_f64() / 60.0;
        SessionStats {
            end_to_end: trace.meta().end_to_end,
            in_episode_fraction: trace.in_episode_fraction(),
            short_count: trace.short_episode_count(),
            traced_count: trace.episodes().len() as u64,
            perceptible_count,
            long_per_minute: if in_minutes > 0.0 {
                perceptible_count as f64 / in_minutes
            } else {
                0.0
            },
            distinct_patterns: patterns.len() as u64,
            episodes_in_patterns: patterns.covered_episodes(),
            singleton_fraction: patterns.singleton_fraction(),
            mean_tree_size: patterns.mean_tree_size(),
            mean_tree_depth: patterns.mean_tree_depth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn build_session() -> AnalysisSession {
        let meta = SessionMeta {
            application: "S".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(60),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let m = b.symbols_mut().method("a.A", "run");
        let mut cursor = 0u64;
        // Three structured episodes of one pattern (one perceptible), one
        // bare episode, 100 filtered-out shorts worth 150 ms.
        for (i, dur) in [50u64, 120, 60].iter().enumerate() {
            let mut t = IntervalTreeBuilder::new();
            t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
            t.leaf(
                IntervalKind::Listener,
                Some(m),
                ms(cursor + 1),
                ms(cursor + dur - 1),
            )
            .unwrap();
            t.exit(ms(cursor + dur)).unwrap();
            b.push_episode(
                EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
                    .tree(t.finish().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
            cursor += dur + 100;
        }
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
        t.exit(ms(cursor + 10)).unwrap();
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(3), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        b.add_short_episodes(100, DurationNs::from_millis(150));
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn row_matches_hand_computation() {
        let stats = SessionStats::compute(&build_session());
        assert_eq!(stats.end_to_end, DurationNs::from_secs(60));
        assert_eq!(stats.short_count, 100);
        assert_eq!(stats.traced_count, 4);
        assert_eq!(stats.perceptible_count, 1);
        assert_eq!(stats.distinct_patterns, 1);
        assert_eq!(stats.episodes_in_patterns, 3);
        assert_eq!(stats.singleton_fraction, 0.0);
        assert!((stats.mean_tree_size - 1.0).abs() < 1e-12);
        assert!((stats.mean_tree_depth - 1.0).abs() < 1e-12);
        // In-episode time: 50+120+60+10 traced + 150 short = 390 ms of 60 s.
        assert!((stats.in_episode_fraction - 0.39 / 60.0).abs() < 1e-9);
        // Long/min: 1 perceptible / (0.39s / 60) minutes.
        let expected = 1.0 / (0.39 / 60.0);
        assert!(
            (stats.long_per_minute - expected).abs() < 1e-6,
            "{} vs {expected}",
            stats.long_per_minute
        );
    }

    #[test]
    fn empty_session_is_all_zero() {
        let meta = SessionMeta {
            application: "E".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(1),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let trace = SessionTraceBuilder::new(meta, SymbolTable::new()).finish();
        let stats = SessionStats::compute(&AnalysisSession::new(trace, AnalysisConfig::default()));
        assert_eq!(stats.traced_count, 0);
        assert_eq!(stats.perceptible_count, 0);
        assert_eq!(stats.long_per_minute, 0.0);
        assert_eq!(stats.distinct_patterns, 0);
    }
}
