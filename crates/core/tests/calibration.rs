//! End-to-end calibration tests: the analyses, run on simulated sessions,
//! must land near the paper's published per-application numbers.
//!
//! These are the repository's most important tests: they tie the simulator
//! (substitute for the real applications + LiLa) to the analyzer (the
//! paper's contribution) and check the *shape* of every headline result.

use lagalyzer_core::aggregate;
use lagalyzer_core::occurrence::OccurrenceBreakdown;
use lagalyzer_core::prelude::*;
use lagalyzer_core::trigger::TriggerBreakdown;
use lagalyzer_model::OriginClassifier;
use lagalyzer_sim::{apps, runner};

fn analyze(profile: &lagalyzer_sim::AppProfile, seed: u64) -> Vec<AnalysisSession> {
    (0..2) // two sessions keep the test quick; the experiments use four
        .map(|i| {
            AnalysisSession::new(
                runner::simulate_session(profile, i, seed),
                AnalysisConfig::default(),
            )
        })
        .collect()
}

#[test]
fn table3_counts_track_targets() {
    for profile in [apps::jmol(), apps::gantt_project(), apps::free_mind()] {
        let sessions = analyze(&profile, 42);
        let rows: Vec<SessionStats> = sessions.iter().map(SessionStats::compute).collect();
        let avg = aggregate::AveragedStats::over(&rows);
        let t = &profile.scale;
        assert!(
            (avg.traced_count / t.traced_episodes as f64 - 1.0).abs() < 0.12,
            "{}: traced {} vs {}",
            profile.name,
            avg.traced_count,
            t.traced_episodes
        );
        assert!(
            (avg.perceptible_count / t.perceptible_episodes as f64 - 1.0).abs() < 0.45,
            "{}: perceptible {} vs {}",
            profile.name,
            avg.perceptible_count,
            t.perceptible_episodes
        );
        assert_eq!(avg.short_count as u64, t.short_episodes);
        assert!(
            (avg.in_episode_fraction - t.in_episode_fraction).abs() < 0.12,
            "{}: in-eps {} vs {}",
            profile.name,
            avg.in_episode_fraction,
            t.in_episode_fraction
        );
    }
}

#[test]
fn pattern_counts_track_targets() {
    for profile in [apps::argo_uml(), apps::swing_set()] {
        let sessions = analyze(&profile, 7);
        for s in &sessions {
            let patterns = s.mine_patterns();
            let target = profile.scale.distinct_patterns as f64;
            let actual = patterns.len() as f64;
            assert!(
                (actual / target - 1.0).abs() < 0.25,
                "{}: patterns {actual} vs {target}",
                profile.name
            );
            let singleton = patterns.singleton_fraction();
            assert!(
                (singleton - profile.scale.singleton_fraction).abs() < 0.2,
                "{}: singleton {singleton}",
                profile.name
            );
        }
    }
}

#[test]
fn fig3_pareto_shape_holds() {
    // Roughly 80% of episodes covered by 20% of the patterns.
    for profile in [apps::jmol(), apps::euclide()] {
        let sessions = analyze(&profile, 3);
        for s in &sessions {
            let coverage = s.mine_patterns().coverage_of_top(0.2);
            assert!(
                coverage > 0.6,
                "{}: top-20% patterns cover only {coverage:.2}",
                profile.name
            );
        }
    }
}

#[test]
fn fig4_occurrence_shape_holds() {
    // GanttProject: most patterns always slow; FreeMind: most never slow.
    let gantt = analyze(&apps::gantt_project(), 5);
    let gantt_occ = aggregate::sum_occurrences(
        &gantt
            .iter()
            .map(|s| OccurrenceBreakdown::of(&s.mine_patterns()))
            .collect::<Vec<_>>(),
    );
    let always_frac = gantt_occ.always as f64 / gantt_occ.total() as f64;
    assert!(always_frac > 0.4, "GanttProject always {always_frac:.2}");

    let freemind = analyze(&apps::free_mind(), 5);
    let fm_occ = aggregate::sum_occurrences(
        &freemind
            .iter()
            .map(|s| OccurrenceBreakdown::of(&s.mine_patterns()))
            .collect::<Vec<_>>(),
    );
    let never_frac = fm_occ.never as f64 / fm_occ.total() as f64;
    assert!(never_frac > 0.8, "FreeMind never {never_frac:.2}");
}

#[test]
fn fig5_trigger_shape_holds() {
    // JMol ~98% output; ArgoUML ~78% input; FindBugs large async;
    // Arabeske large unspecified.
    let jmol = analyze(&apps::jmol(), 9);
    let jb = aggregate::sum_triggers(
        &jmol
            .iter()
            .map(TriggerBreakdown::of_perceptible)
            .collect::<Vec<_>>(),
    );
    assert!(jb.fractions()[1] > 0.85, "JMol output {:?}", jb.fractions());

    let argo = analyze(&apps::argo_uml(), 9);
    let ab = aggregate::sum_triggers(
        &argo
            .iter()
            .map(TriggerBreakdown::of_perceptible)
            .collect::<Vec<_>>(),
    );
    assert!(
        ab.fractions()[0] > 0.6,
        "ArgoUML input {:?}",
        ab.fractions()
    );

    let findbugs = analyze(&apps::find_bugs(), 9);
    let fb = aggregate::sum_triggers(
        &findbugs
            .iter()
            .map(TriggerBreakdown::of_perceptible)
            .collect::<Vec<_>>(),
    );
    assert!(
        fb.fractions()[2] > 0.25,
        "FindBugs async {:?}",
        fb.fractions()
    );

    let arabeske = analyze(&apps::arabeske(), 9);
    let arb = aggregate::sum_triggers(
        &arabeske
            .iter()
            .map(TriggerBreakdown::of_perceptible)
            .collect::<Vec<_>>(),
    );
    assert!(
        arb.fractions()[3] > 0.35,
        "Arabeske unspecified {:?}",
        arb.fractions()
    );
}

#[test]
fn fig6_location_shape_holds() {
    let classifier = OriginClassifier::java_default();
    // Arabeske: GC dominates perceptible lag.
    let arabeske = analyze(&apps::arabeske(), 13);
    let loc = aggregate::mean_locations(
        &arabeske
            .iter()
            .map(|s| LocationStats::of_perceptible(s, &classifier))
            .collect::<Vec<_>>(),
    );
    assert!(loc.gc > 0.35, "Arabeske gc {:.2}", loc.gc);

    // JHotDraw: application code dominates.
    let jhot = analyze(&apps::jhot_draw(), 13);
    let loc = aggregate::mean_locations(
        &jhot
            .iter()
            .map(|s| LocationStats::of_perceptible(s, &classifier))
            .collect::<Vec<_>>(),
    );
    assert!(
        loc.application > 0.8,
        "JHotDraw application {:.2}",
        loc.application
    );

    // JFreeChart: a noticeable native share.
    let jfree = analyze(&apps::jfree_chart(), 13);
    let loc = aggregate::mean_locations(
        &jfree
            .iter()
            .map(|s| LocationStats::of_perceptible(s, &classifier))
            .collect::<Vec<_>>(),
    );
    assert!(loc.native > 0.1, "JFreeChart native {:.2}", loc.native);

    // Euclide: library time dominates (the Apple sleep is library code).
    let euclide = analyze(&apps::euclide(), 13);
    let loc = aggregate::mean_locations(
        &euclide
            .iter()
            .map(|s| LocationStats::of_perceptible(s, &classifier))
            .collect::<Vec<_>>(),
    );
    assert!(loc.library > 0.55, "Euclide library {:.2}", loc.library);
}

#[test]
fn fig7_concurrency_shape_holds() {
    // FindBugs exceeds one runnable thread during perceptible episodes;
    // Euclide stays below one (the GUI thread sleeps).
    let findbugs = analyze(&apps::find_bugs(), 17);
    let c =
        aggregate::mean_concurrency(&findbugs.iter().map(concurrency_stats).collect::<Vec<_>>());
    assert!(
        c.perceptible > 1.0,
        "FindBugs perceptible {:.2}",
        c.perceptible
    );

    let euclide = analyze(&apps::euclide(), 17);
    let c = aggregate::mean_concurrency(&euclide.iter().map(concurrency_stats).collect::<Vec<_>>());
    assert!(
        c.perceptible < 1.0,
        "Euclide perceptible {:.2}",
        c.perceptible
    );
    // All-episode concurrency is around 1.2 in the paper.
    assert!(
        (0.9..1.6).contains(&c.all),
        "Euclide all-episodes {:.2}",
        c.all
    );
}

#[test]
fn fig8_cause_shape_holds() {
    // Euclide: sleep dominates; jEdit: waits stand out; FreeMind: blocked.
    let euclide = analyze(&apps::euclide(), 21);
    let c = aggregate::mean_causes(
        &euclide
            .iter()
            .map(CauseStats::of_perceptible)
            .collect::<Vec<_>>(),
    );
    assert!(c.sleeping > 0.35, "Euclide sleeping {:.2}", c.sleeping);

    let jedit = analyze(&apps::jedit(), 21);
    let c = aggregate::mean_causes(
        &jedit
            .iter()
            .map(CauseStats::of_perceptible)
            .collect::<Vec<_>>(),
    );
    assert!(c.waiting > 0.12, "jEdit waiting {:.2}", c.waiting);

    let freemind = analyze(&apps::free_mind(), 21);
    let c = aggregate::mean_causes(
        &freemind
            .iter()
            .map(CauseStats::of_perceptible)
            .collect::<Vec<_>>(),
    );
    assert!(c.blocked > 0.05, "FreeMind blocked {:.2}", c.blocked);

    // Aggregated over ALL episodes there is almost no blocking (the
    // paper's contrast between the two Fig 8 graphs).
    let all = aggregate::mean_causes(&freemind.iter().map(CauseStats::of_all).collect::<Vec<_>>());
    assert!(
        all.blocked < 0.05,
        "FreeMind all-blocked {:.2}",
        all.blocked
    );
}

#[test]
fn sleep_samples_point_at_apple_toolkit() {
    // The paper traces every Thread.sleep to Apple's combo-box blink.
    let sessions = analyze(&apps::euclide(), 23);
    let mut sleeping = 0;
    for s in &sessions {
        let symbols = s.trace().symbols();
        let gui = s.trace().meta().gui_thread;
        for e in s.episodes() {
            for snap in e.samples() {
                let Some(ts) = snap.thread(gui) else { continue };
                if ts.state == lagalyzer_model::ThreadState::Sleeping {
                    sleeping += 1;
                    let top = ts.top_frame().expect("sleeping samples have frames");
                    let class = symbols.resolve(top.method.class).unwrap();
                    assert!(class.starts_with("com.apple."), "sleep frame in {class}");
                }
            }
        }
    }
    assert!(
        sleeping > 10,
        "expected many sleeping samples, got {sleeping}"
    );
}
