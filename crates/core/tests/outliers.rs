//! Ground-truth validation of outlier detection and cause attribution.
//!
//! The sim's `scenarios::ground_truths()` inject a known cause (lock
//! contention, GC storm, slow I/O) into a recorded minority of one
//! pattern's episodes. These tests assert the analyzer's precision and
//! recall against that recorded truth — the attribution must *name the
//! injected cause*, not merely run — plus the determinism contracts:
//! byte-identical JSON across jobs counts and invariance of detection
//! under reordering.

use std::collections::BTreeSet;

use lagalyzer_core::outliers::{detect, CauseCode, OutlierConfig, OutlierReport};
use lagalyzer_core::prelude::*;
use lagalyzer_model::prelude::*;
use lagalyzer_sim::scenarios::{ground_truths, lock_contention};
use proptest::prelude::*;

fn report_for(trace: SessionTrace, jobs: usize) -> (AnalysisSession, OutlierReport) {
    let session = AnalysisSession::new(trace, AnalysisConfig::default());
    let patterns = session.mine_patterns_with_jobs(jobs);
    let report =
        OutlierReport::analyze_with_jobs(&session, &patterns, &OutlierConfig::default(), jobs);
    (session, report)
}

#[test]
fn injected_scenarios_attributed_with_high_precision_and_recall() {
    for gt in ground_truths() {
        let expected: BTreeSet<u32> = gt.injected.iter().map(|id| id.as_raw()).collect();
        let expected_cause = CauseCode::from_code(gt.expected_cause).unwrap();
        let (_, report) = report_for(gt.trace, 1);

        let flagged: BTreeSet<u32> = report
            .findings()
            .iter()
            .map(|f| f.episode_id.as_raw())
            .collect();
        let hits = flagged.intersection(&expected).count() as f64;
        let precision = hits / (flagged.len().max(1)) as f64;
        let recall = hits / (expected.len().max(1)) as f64;
        assert!(
            precision >= 0.9 && recall >= 0.9,
            "{}: precision {precision} recall {recall} (flagged {flagged:?}, expected {expected:?})",
            gt.title
        );

        // Every correctly flagged episode must name the injected cause as
        // its top attribution, with a delta explaining most of the excess.
        for f in report.findings() {
            if !expected.contains(&f.episode_id.as_raw()) {
                continue;
            }
            assert_eq!(
                f.cause,
                expected_cause,
                "{}: episode {} attributed {} not {}",
                gt.title,
                f.episode_id,
                f.cause.code(),
                gt.expected_cause
            );
            assert!(
                f.cause_delta.as_nanos() * 2 > f.excess.as_nanos(),
                "{}: cause delta {} explains under half the excess {}",
                gt.title,
                f.cause_delta,
                f.excess
            );
        }
    }
}

#[test]
fn lock_contention_names_the_culprit_thread_and_frame() {
    let gt = lock_contention();
    let (session, report) = report_for(gt.trace, 1);
    assert_eq!(report.len(), gt.injected.len());
    for f in report.findings() {
        let culprit = f.culprit.as_ref().expect("lock outlier has a culprit");
        assert_eq!(culprit.thread, ThreadId::from_raw(7));
        assert!(culprit.samples > 0);
        let frame = culprit.frame.expect("culprit has frame evidence");
        assert_eq!(
            session.trace().symbols().render(frame),
            "com.app.CacheLock.rebuild"
        );
    }
    assert_eq!(report.dominant_cause(), Some(CauseCode::Lock));
    let text = report.render_text(session.trace().symbols());
    assert!(text.contains("OC-LOCK"), "{text}");
    assert!(text.contains("com.app.CacheLock.rebuild"), "{text}");
}

#[test]
fn report_json_is_byte_identical_across_jobs() {
    for gt in ground_truths() {
        let mut renders = Vec::new();
        for jobs in 1..=8 {
            let (session, report) = report_for(gt.trace.clone(), jobs);
            renders.push(report.render_json(session.trace().symbols()));
        }
        for r in &renders[1..] {
            assert_eq!(
                r, &renders[0],
                "{}: jobs changed the report bytes",
                gt.title
            );
        }
        // The JSON names the expected cause for every injected episode.
        assert!(
            renders[0].contains(&format!("\"cause\":\"{}\"", gt.expected_cause)),
            "{}: {}",
            gt.title,
            renders[0]
        );
    }
}

#[test]
fn control_pattern_and_homogeneous_sessions_stay_quiet() {
    for gt in ground_truths() {
        let (_, report) = report_for(gt.trace, 2);
        // No finding may point at a control episode (ids >= 28).
        for f in report.findings() {
            assert!(
                f.episode_id.as_raw() < 28,
                "{}: control episode {} flagged",
                gt.title,
                f.episode_id
            );
        }
    }
}

#[test]
fn empty_and_tiny_sessions_produce_empty_reports() {
    let meta = SessionMeta {
        application: "Empty".into(),
        session: SessionId::from_raw(0),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(1),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let trace = SessionTraceBuilder::new(meta, SymbolTable::new()).finish();
    let (session, report) = report_for(trace, 4);
    assert!(report.is_empty());
    assert_eq!(report.patterns_scanned, 0);
    assert_eq!(report.episodes_considered, 0);
    let json = report.render_json(session.trace().symbols());
    assert!(json.contains("\"flagged\":0"), "{json}");
    assert!(report.summary().contains("none flagged"));
}

#[test]
fn spans_attach_by_episode_id() {
    let gt = lock_contention();
    let (session, mut report) = report_for(gt.trace, 1);
    report.attach_spans(|id| {
        Some((
            u64::from(id.as_raw()) * 100,
            u64::from(id.as_raw()) * 100 + 50,
        ))
    });
    for f in report.findings() {
        assert_eq!(
            f.bytes,
            Some((
                u64::from(f.episode_id.as_raw()) * 100,
                u64::from(f.episode_id.as_raw()) * 100 + 50
            ))
        );
    }
    let json = report.render_json(session.trace().symbols());
    assert!(
        json.contains("\"bytes\":{\"start\":500,\"end\":550}"),
        "{json}"
    );
}

fn duration_vec() -> impl Strategy<Value = Vec<DurationNs>> {
    proptest::collection::vec(1u64..2_000, 4..64)
        .prop_map(|v| v.into_iter().map(DurationNs::from_millis).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Detection depends only on the duration multiset and each member's
    /// own value: permuting the input permutes the output accordingly.
    #[test]
    fn detection_invariant_under_reordering(
        durations in duration_vec(),
        seed in any::<u64>(),
    ) {
        let config = OutlierConfig::default();
        let flagged: BTreeSet<u64> = detect(&durations, &config)
            .into_iter()
            .map(|i| durations[i].as_nanos())
            .collect();
        // Deterministic shuffle driven by the seed.
        let mut permuted = durations.clone();
        let mut state = seed | 1;
        for i in (1..permuted.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            permuted.swap(i, (state >> 33) as usize % (i + 1));
        }
        let flagged_permuted: BTreeSet<u64> = detect(&permuted, &config)
            .into_iter()
            .map(|i| permuted[i].as_nanos())
            .collect();
        prop_assert_eq!(flagged, flagged_permuted);
    }

    /// Homogeneous patterns (identical durations) never flag anything,
    /// whatever the config's scale knobs.
    #[test]
    fn homogeneous_patterns_flag_nothing(
        dur in 1u64..5_000,
        count in 4usize..64,
        mad_k in 0.5f64..10.0,
    ) {
        let config = OutlierConfig { mad_k, ..OutlierConfig::default() };
        let durations = vec![DurationNs::from_millis(dur); count];
        prop_assert!(detect(&durations, &config).is_empty());
    }

    /// The full report is byte-identical for any jobs count on simulated
    /// sessions too, not just the scripted scenarios.
    #[test]
    fn simulated_session_report_stable_across_jobs(
        seed in 0u64..64,
        jobs in 2usize..8,
    ) {
        let profile = lagalyzer_sim::apps::standard_suite()
            .into_iter()
            .next()
            .expect("suite is non-empty");
        let trace = lagalyzer_sim::simulate_session(&profile, 0, seed);
        let (session_a, report_a) = report_for(trace.clone(), 1);
        let (session_b, report_b) = report_for(trace, jobs);
        prop_assert_eq!(
            report_a.render_json(session_a.trace().symbols()),
            report_b.render_json(session_b.trace().symbols())
        );
    }
}
