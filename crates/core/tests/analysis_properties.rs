//! Property-based tests over the analyses' invariants (DESIGN.md §6).

use lagalyzer_core::occurrence::{Occurrence, OccurrenceBreakdown};
use lagalyzer_core::prelude::*;
use lagalyzer_core::trigger::TriggerBreakdown;
use lagalyzer_model::prelude::*;
use lagalyzer_model::OriginClassifier;
use proptest::prelude::*;

fn ms(v: u64) -> TimeNs {
    TimeNs::from_millis(v)
}

/// A random episode spec: which of 6 shapes, duration, and whether to
/// inject a GC child.
#[derive(Clone, Debug)]
struct EpSpec {
    shape: u8,
    dur_ms: u64,
    gc: bool,
    states: Vec<u8>,
}

fn ep_spec() -> impl Strategy<Value = EpSpec> {
    (
        0u8..6,
        5u64..600,
        any::<bool>(),
        proptest::collection::vec(0u8..4, 0..6),
    )
        .prop_map(|(shape, dur_ms, gc, states)| EpSpec {
            shape,
            dur_ms,
            gc,
            states,
        })
}

fn build_session(specs: &[EpSpec]) -> AnalysisSession {
    let meta = SessionMeta {
        application: "Prop".into(),
        session: SessionId::from_raw(0),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(3600),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
    let lib = b.symbols_mut().method("javax.swing.JPanel", "paint");
    let app = b.symbols_mut().method("org.app.Main", "work");
    let mut cursor = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let start = cursor;
        let end = start + spec.dur_ms;
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(start)).unwrap();
        let inner_end = start + spec.dur_ms - 1;
        let inner_start = start + 1;
        if inner_end > inner_start {
            match spec.shape {
                0 => {
                    // bare dispatch
                }
                1 => {
                    t.leaf(
                        IntervalKind::Listener,
                        Some(app),
                        ms(inner_start),
                        ms(inner_end),
                    )
                    .unwrap();
                }
                2 => {
                    t.leaf(
                        IntervalKind::Paint,
                        Some(lib),
                        ms(inner_start),
                        ms(inner_end),
                    )
                    .unwrap();
                }
                3 => {
                    // async with non-paint work
                    t.enter(IntervalKind::Async, None, ms(inner_start)).unwrap();
                    if inner_end > inner_start + 2 {
                        t.leaf(
                            IntervalKind::Native,
                            Some(lib),
                            ms(inner_start + 1),
                            ms(inner_end - 1),
                        )
                        .unwrap();
                    }
                    t.exit(ms(inner_end)).unwrap();
                }
                4 => {
                    // repaint-manager shape: async(paint)
                    t.enter(IntervalKind::Async, None, ms(inner_start)).unwrap();
                    if inner_end > inner_start + 2 {
                        t.leaf(
                            IntervalKind::Paint,
                            Some(lib),
                            ms(inner_start + 1),
                            ms(inner_end - 1),
                        )
                        .unwrap();
                    }
                    t.exit(ms(inner_end)).unwrap();
                }
                _ => {
                    t.leaf(
                        IntervalKind::Native,
                        Some(lib),
                        ms(inner_start),
                        ms(inner_end),
                    )
                    .unwrap();
                }
            }
            if spec.gc && spec.dur_ms > 4 {
                // A trailing sibling GC inside the dispatch window; keep it
                // after the inner child by using the last millisecond.
                t.leaf(IntervalKind::Gc, None, ms(end - 1), ms(end))
                    .unwrap();
            }
        }
        t.exit(ms(end)).unwrap();
        let mut eb = EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
            .tree(t.finish().unwrap());
        for (k, &state_sel) in spec.states.iter().enumerate() {
            let at =
                start + 1 + (k as u64 * spec.dur_ms.saturating_sub(2)) / (spec.states.len() as u64);
            let state = ThreadState::ALL[state_sel as usize];
            let frame = if state_sel % 2 == 0 { lib } else { app };
            eb = eb.sample(SampleSnapshot::new(
                ms(at.min(end)),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    state,
                    vec![StackFrame::java(frame)],
                )],
            ));
        }
        b.push_episode(eb.build().unwrap()).unwrap();
        cursor = end + 3;
    }
    AnalysisSession::new(b.finish(), AnalysisConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pattern mining is a partition of the structured episodes.
    #[test]
    fn mining_partitions_episodes(specs in proptest::collection::vec(ep_spec(), 0..40)) {
        let session = build_session(&specs);
        let set = session.mine_patterns();
        let covered: u64 = set.patterns().iter().map(lagalyzer_core::Pattern::count).sum();
        prop_assert_eq!(covered, set.covered_episodes());
        prop_assert_eq!(
            set.covered_episodes() + set.structureless_episodes(),
            session.episodes().len() as u64
        );
        let mut seen = std::collections::HashSet::new();
        for p in set.patterns() {
            prop_assert!(p.count() > 0);
            for &idx in p.episode_indices() {
                prop_assert!(seen.insert(idx));
            }
        }
    }

    /// Injecting a GC child never changes an episode's pattern signature.
    #[test]
    fn gc_injection_preserves_signatures(specs in proptest::collection::vec(ep_spec(), 1..20)) {
        let with_gc: Vec<EpSpec> = specs.iter().cloned().map(|mut s| { s.gc = true; s }).collect();
        let without_gc: Vec<EpSpec> = specs.iter().cloned().map(|mut s| { s.gc = false; s }).collect();
        let a = build_session(&with_gc);
        let b = build_session(&without_gc);
        let syms_a = a.trace().symbols();
        let syms_b = b.trace().symbols();
        for (ea, eb) in a.episodes().iter().zip(b.episodes()) {
            let sig_a = ShapeSignature::of_tree(ea.tree(), syms_a);
            let sig_b = ShapeSignature::of_tree(eb.tree(), syms_b);
            prop_assert_eq!(sig_a, sig_b);
        }
    }

    /// Trigger classification is total and stable under GC injection.
    #[test]
    fn trigger_total_and_gc_stable(specs in proptest::collection::vec(ep_spec(), 1..20)) {
        let with_gc: Vec<EpSpec> = specs.iter().cloned().map(|mut s| { s.gc = true; s }).collect();
        let a = build_session(&specs);
        let b = build_session(&with_gc);
        for (ea, eb) in a.episodes().iter().zip(b.episodes()) {
            prop_assert_eq!(Trigger::of_episode(ea), Trigger::of_episode(eb));
        }
        let breakdown = TriggerBreakdown::of_all(&a);
        prop_assert_eq!(breakdown.total(), a.episodes().len() as u64);
    }

    /// The repaint-manager shape always classifies as output, plain async
    /// never does.
    #[test]
    fn repaint_manager_reclassification(dur in 10u64..500) {
        let rm = build_session(&[EpSpec { shape: 4, dur_ms: dur, gc: false, states: vec![] }]);
        prop_assert_eq!(Trigger::of_episode(&rm.episodes()[0]), Trigger::Output);
        let plain = build_session(&[EpSpec { shape: 3, dur_ms: dur, gc: false, states: vec![] }]);
        prop_assert_eq!(Trigger::of_episode(&plain.episodes()[0]), Trigger::Asynchronous);
    }

    /// Occurrence classes partition the patterns, and the breakdown counts
    /// match per-pattern classification.
    #[test]
    fn occurrence_partitions_patterns(specs in proptest::collection::vec(ep_spec(), 0..40)) {
        let session = build_session(&specs);
        let set = session.mine_patterns();
        let breakdown = OccurrenceBreakdown::of(&set);
        prop_assert_eq!(breakdown.total(), set.len() as u64);
        let mut counts = [0u64; 4];
        for p in set.patterns() {
            let i = match Occurrence::of_pattern(p) {
                Occurrence::Always => 0,
                Occurrence::Sometimes => 1,
                Occurrence::Once => 2,
                Occurrence::Never => 3,
            };
            counts[i] += 1;
        }
        prop_assert_eq!(
            counts,
            [breakdown.always, breakdown.sometimes, breakdown.once, breakdown.never]
        );
    }

    /// All reported fractions live in [0, 1] and complementary pairs sum
    /// to one.
    #[test]
    fn fractions_are_sane(specs in proptest::collection::vec(ep_spec(), 0..40)) {
        let session = build_session(&specs);
        let classifier = OriginClassifier::java_default();
        let loc = LocationStats::of_all(&session, &classifier);
        for v in [loc.library, loc.application, loc.gc, loc.native] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        let has_samples = session.episodes().iter().any(|e| !e.samples().is_empty());
        if has_samples {
            prop_assert!((loc.library + loc.application - 1.0).abs() < 1e-9);
        }
        let causes = CauseStats::of_all(&session);
        let sum = causes.blocked + causes.waiting + causes.sleeping + causes.runnable;
        if has_samples {
            prop_assert!((sum - 1.0).abs() < 1e-9, "{sum}");
        }
        let con = concurrency_stats(&session);
        prop_assert!(con.all >= 0.0);
        prop_assert!(con.perceptible >= 0.0);
    }

    /// The coverage curve is monotone, ends at (1, 1), and coverage_of_top
    /// agrees with it.
    #[test]
    fn coverage_curve_invariants(specs in proptest::collection::vec(ep_spec(), 1..40)) {
        let session = build_session(&specs);
        let set = session.mine_patterns();
        let curve = set.cumulative_coverage();
        prop_assume!(!curve.is_empty());
        for w in curve.windows(2) {
            prop_assert!(w[0].0 < w[1].0 + 1e-12);
            prop_assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        let (lx, ly) = *curve.last().unwrap();
        prop_assert!((lx - 1.0).abs() < 1e-9);
        prop_assert!((ly - 1.0).abs() < 1e-9);
        prop_assert!((set.coverage_of_top(1.0) - 1.0).abs() < 1e-9);
    }

    /// SessionStats is consistent with its inputs.
    #[test]
    fn stats_consistency(specs in proptest::collection::vec(ep_spec(), 0..40)) {
        let session = build_session(&specs);
        let stats = SessionStats::compute(&session);
        prop_assert_eq!(stats.traced_count, session.episodes().len() as u64);
        prop_assert_eq!(
            stats.perceptible_count,
            session.perceptible_episodes().count() as u64
        );
        let set = session.mine_patterns();
        prop_assert_eq!(stats.distinct_patterns, set.len() as u64);
        prop_assert_eq!(stats.episodes_in_patterns, set.covered_episodes());
        prop_assert!((0.0..=1.0).contains(&stats.singleton_fraction));
    }
}
