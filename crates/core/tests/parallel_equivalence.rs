//! Property tests: the sharded-parallel pipeline is byte-identical to the
//! serial analyses on simulator-generated sessions, for any jobs count and
//! any chunking of the episode stream.

use lagalyzer_core::patterns::{PatternSet, PatternTable};
use lagalyzer_core::prelude::*;
use lagalyzer_sim::{apps, runner};
use proptest::prelude::*;

/// Small/medium/large profiles so shard counts exercise uneven ranges.
fn profile_for(index: u8) -> lagalyzer_sim::profile::AppProfile {
    match index % 4 {
        0 => apps::crossword_sage(),
        1 => apps::jedit(),
        2 => apps::free_mind(),
        _ => apps::jmol(),
    }
}

fn session_for(profile_index: u8, seed: u64) -> AnalysisSession {
    AnalysisSession::new(
        runner::simulate_session(&profile_for(profile_index), 0, seed),
        AnalysisConfig::default(),
    )
}

/// Field-by-field equality of two pattern sets, including per-pattern
/// episode index lists and lag statistics.
fn assert_sets_identical(a: &PatternSet, b: &PatternSet) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    prop_assert_eq!(a.covered_episodes(), b.covered_episodes());
    prop_assert_eq!(a.structureless_episodes(), b.structureless_episodes());
    for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
        prop_assert_eq!(pa.signature(), pb.signature());
        prop_assert_eq!(pa.episode_indices(), pb.episode_indices());
        prop_assert_eq!(pa.count(), pb.count());
        prop_assert_eq!(pa.stats().total, pb.stats().total);
        prop_assert_eq!(pa.stats().min, pb.stats().min);
        prop_assert_eq!(pa.stats().max, pb.stats().max);
        prop_assert_eq!(pa.perceptible_count(), pb.perceptible_count());
        prop_assert_eq!(pa.first_is_perceptible(), pb.first_is_perceptible());
        prop_assert_eq!(pa.gc_episode_count(), pb.gc_episode_count());
        prop_assert_eq!(pa.tree_size(), pb.tree_size());
        prop_assert_eq!(pa.tree_depth(), pb.tree_depth());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mining with any worker count yields the exact same pattern table as
    /// the serial scan.
    #[test]
    fn parallel_mining_is_byte_identical(
        profile_index in 0u8..4,
        seed in 1u64..1000,
        jobs in 2usize..9,
    ) {
        let session = session_for(profile_index, seed);
        let serial = session.mine_patterns();
        let parallel = session.mine_patterns_with_jobs(jobs);
        assert_sets_identical(&serial, &parallel)?;
    }

    /// The Table III row is identical under parallelism, including every
    /// f64-valued field.
    #[test]
    fn parallel_stats_are_byte_identical(
        profile_index in 0u8..4,
        seed in 1u64..1000,
        jobs in 2usize..9,
    ) {
        let session = session_for(profile_index, seed);
        let serial = SessionStats::compute(&session);
        let parallel = SessionStats::compute_with_jobs(&session, jobs);
        prop_assert_eq!(serial, parallel);
    }

    /// Scanning the episode list in arbitrary chunks and merging the
    /// shard-local tables reproduces the whole-session scan — the invariant
    /// the streaming decoder relies on to feed shards while reading.
    #[test]
    fn chunked_table_merge_matches_whole_scan(
        profile_index in 0u8..4,
        seed in 1u64..1000,
        chunk in 1usize..200,
    ) {
        let session = session_for(profile_index, seed);
        let symbols = session.trace().symbols();
        let threshold = session.config().perceptible_threshold;
        let mut merged = PatternTable::new();
        let mut base = 0;
        for chunk_episodes in session.episodes().chunks(chunk) {
            let mut table = PatternTable::new();
            table.scan_episodes(chunk_episodes, base, threshold);
            merged.merge(table);
            base += chunk_episodes.len();
        }
        assert_sets_identical(&session.mine_patterns(), &merged.into_pattern_set(symbols))?;
    }
}
