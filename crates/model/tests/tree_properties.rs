//! Property-based tests for interval-tree invariants.

use lagalyzer_model::prelude::*;
use proptest::prelude::*;

/// A random well-formed event script: a root dispatch enclosing a random
/// sequence of properly nested enters/exits with monotone times.
#[derive(Clone, Debug)]
enum Ev {
    Enter(IntervalKind),
    Exit,
}

fn kind_strategy() -> impl Strategy<Value = IntervalKind> {
    prop_oneof![
        Just(IntervalKind::Listener),
        Just(IntervalKind::Paint),
        Just(IntervalKind::Native),
        Just(IntervalKind::Async),
        Just(IntervalKind::Gc),
    ]
}

fn script_strategy() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        prop_oneof![3 => kind_strategy().prop_map(Ev::Enter), 2 => Just(Ev::Exit)],
        0..60,
    )
}

/// Replays a script inside a dispatch root, ignoring exits that would
/// escape the root and closing whatever remains open at the end. Also
/// returns the node count for cross-checking.
fn build_tree(script: &[Ev]) -> IntervalTree {
    let mut b = IntervalTreeBuilder::new();
    let mut t = 0u64;
    let mut depth = 0usize;
    b.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(t))
        .unwrap();
    for ev in script {
        t += 1;
        match ev {
            Ev::Enter(kind) => {
                b.enter(*kind, None, TimeNs::from_millis(t)).unwrap();
                depth += 1;
            }
            Ev::Exit => {
                if depth > 0 {
                    b.exit(TimeNs::from_millis(t)).unwrap();
                    depth -= 1;
                }
            }
        }
    }
    while depth > 0 {
        t += 1;
        b.exit(TimeNs::from_millis(t)).unwrap();
        depth -= 1;
    }
    t += 1;
    b.exit(TimeNs::from_millis(t)).unwrap();
    b.finish().unwrap()
}

proptest! {
    /// Any tree produced by the builder passes the structural validator.
    #[test]
    fn builder_output_validates(script in script_strategy()) {
        let tree = build_tree(&script);
        prop_assert!(tree.validate().is_ok());
    }

    /// Children are enclosed by parents and siblings do not overlap.
    #[test]
    fn proper_nesting_holds(script in script_strategy()) {
        let tree = build_tree(&script);
        for (id, node) in tree.iter() {
            if let Some(p) = node.parent {
                prop_assert!(tree.interval(p).encloses(&node.interval));
                prop_assert!(tree.depth(id) == tree.depth(p) + 1);
            }
            let children = tree.children(id);
            for pair in children.windows(2) {
                let a = tree.interval(pair[0]);
                let b = tree.interval(pair[1]);
                prop_assert!(!a.overlaps(b));
                prop_assert!(a.start <= b.start);
            }
        }
    }

    /// Pre-order traversal visits every node exactly once and starts at the
    /// root.
    #[test]
    fn pre_order_is_a_permutation(script in script_strategy()) {
        let tree = build_tree(&script);
        let visited: Vec<NodeId> = tree.pre_order().collect();
        prop_assert_eq!(visited.len(), tree.len());
        prop_assert_eq!(visited[0], tree.root());
        let mut sorted = visited.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), tree.len());
    }

    /// Pre-order equals arena order (the builder appends in enter order).
    #[test]
    fn pre_order_matches_arena_order(script in script_strategy()) {
        let tree = build_tree(&script);
        let visited: Vec<u32> = tree.pre_order().map(lagalyzer_model::NodeId::as_raw).collect();
        let expected: Vec<u32> = (0..tree.len() as u32).collect();
        prop_assert_eq!(visited, expected);
    }

    /// descendant_count(root) is always len() - 1.
    #[test]
    fn descendant_count_consistent(script in script_strategy()) {
        let tree = build_tree(&script);
        prop_assert_eq!(tree.descendant_count(tree.root()), tree.len() - 1);
    }

    /// The deepest node at any instant inside the root contains that
    /// instant, and no child of it does.
    #[test]
    fn deepest_at_is_deepest(script in script_strategy(), probe in 0u64..200) {
        let tree = build_tree(&script);
        let t = TimeNs::from_millis(probe);
        match tree.deepest_at(t) {
            None => prop_assert!(!tree.root_interval().contains(t)),
            Some(id) => {
                prop_assert!(tree.interval(id).contains(t));
                for &c in tree.children(id) {
                    prop_assert!(!tree.interval(c).contains(t));
                }
            }
        }
    }

    /// outermost_kind_time never exceeds the root duration for any kind.
    #[test]
    fn kind_time_bounded_by_root(script in script_strategy()) {
        let tree = build_tree(&script);
        let root = tree.root_interval().duration();
        for kind in IntervalKind::ALL {
            prop_assert!(tree.outermost_kind_time(kind) <= root);
        }
    }

    /// max_depth is the maximum over per-node depths and consistent with
    /// parent chains.
    #[test]
    fn max_depth_consistent(script in script_strategy()) {
        let tree = build_tree(&script);
        let mut observed = 0;
        for (id, _) in tree.iter() {
            // Walk the parent chain to recompute depth independently.
            let mut d = 0;
            let mut cur = id;
            while let Some(p) = tree.parent(cur) {
                d += 1;
                cur = p;
            }
            prop_assert_eq!(d, tree.depth(id));
            observed = observed.max(d);
        }
        prop_assert_eq!(observed, tree.max_depth());
    }
}

proptest! {
    /// Episodes accept only in-window samples regardless of sample order.
    #[test]
    fn episode_samples_sorted_and_bounded(
        times in proptest::collection::vec(0u64..500, 0..20)
    ) {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(0)).unwrap();
        b.exit(TimeNs::from_millis(500)).unwrap();
        let mut eb = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(b.finish().unwrap());
        for t in &times {
            eb = eb.sample(SampleSnapshot::new(TimeNs::from_millis(*t), vec![]));
        }
        let e = eb.build().unwrap();
        prop_assert_eq!(e.samples().len(), times.len());
        for pair in e.samples().windows(2) {
            prop_assert!(pair[0].time <= pair[1].time);
        }
    }
}
