//! Properly nested interval trees.
//!
//! LagAlyzer represents the activity of each thread as a tree of nested
//! intervals (paper §II-A). Intervals of a given thread are guaranteed to be
//! properly nested — they either nest or do not overlap at all — because all
//! interval types except GC correspond to method calls and returns, and GC
//! is stop-the-world. [`IntervalTreeBuilder`] enforces that invariant while
//! consuming enter/exit events; [`IntervalTree`] is the immutable result.
//!
//! The tree is stored in a flat arena indexed by [`NodeId`]. Nodes appear in
//! the arena in *pre-order* (enter order), which makes pre-order traversal —
//! the traversal the paper's trigger classification (§IV-C) relies on — a
//! simple linear scan.

use std::fmt;

use crate::error::ModelError;
use crate::ids::NodeId;
use crate::interval::{Interval, IntervalKind};
use crate::symbols::{MethodRef, SymbolTable};
use crate::time::{DurationNs, TimeNs};

/// One node of an interval tree.
///
/// Children are not stored per node: nodes live in a pre-order arena with
/// parent pointers, so each node's children are exactly the later nodes
/// that point back at it, in arena order. [`IntervalTree`] derives that
/// relation once into a shared children arena (see
/// [`IntervalTree::children`]) — keeping the node itself flat is what lets
/// a decoded episode materialize its whole tree with two child-table
/// allocations instead of one `Vec` per node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalNode {
    /// The interval at this node.
    pub interval: Interval,
    /// Parent node; `None` for the root.
    pub parent: Option<NodeId>,
    /// Depth of this node; the root has depth 0.
    pub depth: u32,
}

/// An immutable, properly nested interval tree.
///
/// ```
/// use lagalyzer_model::prelude::*;
/// # fn main() -> Result<(), ModelError> {
/// let mut b = IntervalTreeBuilder::new();
/// b.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(0))?;
/// b.enter(IntervalKind::Listener, None, TimeNs::from_millis(1))?;
/// b.exit(TimeNs::from_millis(4))?;
/// b.enter(IntervalKind::Paint, None, TimeNs::from_millis(5))?;
/// b.exit(TimeNs::from_millis(9))?;
/// b.exit(TimeNs::from_millis(10))?;
/// let tree = b.finish()?;
/// assert_eq!(tree.len(), 3);
/// assert_eq!(tree.children(tree.root()).len(), 2);
/// assert_eq!(tree.max_depth(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalTree {
    nodes: Vec<IntervalNode>,
    /// Children arena in CSR layout: node `n`'s children are
    /// `child_ids[child_start[n] as usize..child_start[n + 1] as usize]`,
    /// in arena (= start-time) order. Derived from the parent pointers —
    /// two allocations for the whole tree instead of one list per node.
    child_ids: Vec<NodeId>,
    child_start: Vec<u32>,
}

/// Derives the CSR children table from parent pointers via a counting
/// sort: nodes are visited in arena order, so each parent's children land
/// in arena order too. Parent ids outside the arena are ignored (possible
/// only through [`IntervalTree::from_nodes_unchecked`]).
fn derive_children(nodes: &[IntervalNode]) -> (Vec<NodeId>, Vec<u32>) {
    let n = nodes.len();
    let mut child_start = vec![0u32; n + 1];
    let in_range = |p: NodeId| p.index() < n;
    for node in nodes {
        if let Some(p) = node.parent.filter(|&p| in_range(p)) {
            child_start[p.index() + 1] += 1;
        }
    }
    for i in 0..n {
        child_start[i + 1] += child_start[i];
    }
    let mut child_ids = vec![NodeId::from_raw(0); child_start[n] as usize];
    // Fill buckets front to back, using `child_start[p]` as the write
    // cursor; afterwards each slot holds its bucket's *end*, so shift the
    // table right by one to restore the starts.
    for (i, node) in nodes.iter().enumerate() {
        if let Some(p) = node.parent.filter(|&p| in_range(p)) {
            let cursor = &mut child_start[p.index()];
            child_ids[*cursor as usize] =
                NodeId::from_raw(u32::try_from(i).expect("node index overflows u32"));
            *cursor += 1;
        }
    }
    for i in (1..=n).rev() {
        child_start[i] = child_start[i - 1];
    }
    child_start[0] = 0;
    (child_ids, child_start)
}

impl IntervalTree {
    /// Assembles a tree directly from nodes, **without** validating the
    /// nesting, ordering, or parent/child invariants that
    /// [`IntervalTreeBuilder`] enforces. Children are derived from the
    /// parent pointers (each node's children are the nodes pointing back
    /// at it, in arena order); parent ids outside the arena are treated as
    /// parentless.
    ///
    /// This exists for tooling that must *represent* invalid data rather
    /// than reject it — most importantly the `lagalyzer-check` semantic
    /// checker, whose rules need trees that violate proper nesting,
    /// sibling ordering, or episode bounds in order to diagnose them.
    /// Analyses assume builder-validated trees; do not feed unchecked
    /// trees into them.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty (even invalid trees have a root).
    pub fn from_nodes_unchecked(nodes: Vec<IntervalNode>) -> IntervalTree {
        assert!(!nodes.is_empty(), "an interval tree must have a root node");
        let (child_ids, child_start) = derive_children(&nodes);
        IntervalTree {
            nodes,
            child_ids,
            child_start,
        }
    }

    /// The root node id.
    ///
    /// Every finished tree has exactly one root at index 0.
    pub fn root(&self) -> NodeId {
        NodeId::from_raw(0)
    }

    /// The root interval (for episode trees, the dispatch interval).
    pub fn root_interval(&self) -> &Interval {
        &self.nodes[0].interval
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Trees are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &IntervalNode {
        &self.nodes[id.index()]
    }

    /// Borrow a node, returning `None` for foreign ids.
    pub fn get(&self, id: NodeId) -> Option<&IntervalNode> {
        self.nodes.get(id.index())
    }

    /// All nodes in **preorder**: index `i` is `NodeId::from_raw(i)`,
    /// every subtree occupies a contiguous range, and siblings appear in
    /// start-time order. This is a builder invariant — nodes are pushed
    /// on `enter`, and enters arrive in start-time order — that linear
    /// traversals (e.g. shape-token emission) rely on to avoid chasing
    /// per-node child lists.
    pub fn nodes(&self) -> &[IntervalNode] {
        &self.nodes
    }

    /// The interval at `id`.
    pub fn interval(&self, id: NodeId) -> &Interval {
        &self.node(id).interval
    }

    /// Children of `id`, in start-time order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.child_ids[self.child_start[i] as usize..self.child_start[i + 1] as usize]
    }

    /// Parent of `id`, `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: NodeId) -> u32 {
        self.node(id).depth
    }

    /// Number of descendants of `id` (excluding `id` itself).
    ///
    /// The paper's Table III "Descs" column is `descendant_count(root)`.
    ///
    /// Preorder makes this a contiguous-run length, not a traversal: the
    /// descendants of `id` are exactly the nodes that follow it while
    /// their depth stays greater (the root owns everything).
    pub fn descendant_count(&self, id: NodeId) -> usize {
        let index = id.index();
        let depth = self.nodes[index].depth;
        if depth == 0 {
            return self.nodes.len() - 1;
        }
        self.nodes[index + 1..]
            .iter()
            .take_while(|n| n.depth > depth)
            .count()
    }

    /// Maximum node depth in the tree. The paper's Table III "Depth" column
    /// is `max_depth()` of an episode's tree.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Iterates node ids in pre-order (enter order) over the whole tree.
    ///
    /// The builder appends nodes in enter order, so whole-tree pre-order
    /// is simply arena order — no traversal stack needed (the
    /// `pre_order_matches_arena_order` property test pins this invariant).
    pub fn pre_order(&self) -> PreOrder<'_> {
        PreOrder {
            tree: self,
            stack: Vec::new(),
            linear: Some(0..u32::try_from(self.nodes.len()).expect("node count fits u32")),
        }
    }

    /// Iterates node ids in pre-order over the subtree rooted at `id`.
    pub fn pre_order_from(&self, id: NodeId) -> PreOrder<'_> {
        PreOrder {
            tree: self,
            stack: vec![id],
            linear: None,
        }
    }

    /// Iterates all nodes as `(id, &node)` in arena (= pre-order) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &IntervalNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| {
            (
                NodeId::from_raw(u32::try_from(i).expect("node index overflows u32")),
                n,
            )
        })
    }

    /// Sum of durations of all nodes of the given `kind` that have no
    /// ancestor of the same `kind` (so nested same-kind time is not double
    /// counted). Used for the GC and native fractions of the paper's Fig 6.
    pub fn outermost_kind_time(&self, kind: IntervalKind) -> DurationNs {
        let mut total = DurationNs::ZERO;
        let mut stack: Vec<NodeId> = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if node.interval.kind == kind {
                total += node.interval.duration();
                // Do not descend: nested same-kind intervals are covered.
                continue;
            }
            stack.extend(self.children(id).iter().copied());
        }
        total
    }

    /// The deepest node whose interval contains instant `t`, if any.
    pub fn deepest_at(&self, t: TimeNs) -> Option<NodeId> {
        if !self.root_interval().contains(t) {
            return None;
        }
        let mut id = self.root();
        'descend: loop {
            for &child in self.children(id) {
                if self.interval(child).contains(t) {
                    id = child;
                    continue 'descend;
                }
            }
            return Some(id);
        }
    }

    /// True if any node in the tree has the given kind.
    pub fn contains_kind(&self, kind: IntervalKind) -> bool {
        self.nodes.iter().any(|n| n.interval.kind == kind)
    }

    /// Checks the proper-nesting invariant over the whole tree. Builders
    /// maintain it; this is a validation hook for decoded or hand-built
    /// trees and for property tests.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                let parent = &self.nodes[p.index()];
                if !parent.interval.encloses(&node.interval) {
                    return Err(ModelError::NonMonotonicTime {
                        previous: parent.interval.end,
                        at: node.interval.end,
                    });
                }
            } else if i != 0 {
                return Err(ModelError::MultipleRoots {
                    at: node.interval.start,
                });
            }
            let id = NodeId::from_raw(u32::try_from(i).expect("node index overflows u32"));
            for pair in self.children(id).windows(2) {
                let a = &self.nodes[pair[0].index()].interval;
                let b = &self.nodes[pair[1].index()].interval;
                if a.overlaps(b) || b.start < a.start {
                    return Err(ModelError::NonMonotonicTime {
                        previous: a.end,
                        at: b.start,
                    });
                }
            }
        }
        if self.nodes.is_empty() {
            return Err(ModelError::MissingRoot);
        }
        Ok(())
    }

    /// Renders an indented textual outline of the tree, resolving symbols
    /// through `symbols`. Useful in tests and the CLI.
    pub fn outline(&self, symbols: &SymbolTable) -> String {
        let mut out = String::new();
        for id in self.pre_order() {
            let node = self.node(id);
            for _ in 0..node.depth {
                out.push_str("  ");
            }
            out.push_str(node.interval.kind.name());
            if let Some(sym) = node.interval.symbol {
                out.push(' ');
                out.push_str(&symbols.render(sym));
            }
            out.push_str(&format!(" ({})\n", node.interval.duration()));
        }
        out
    }
}

/// Pre-order traversal over an [`IntervalTree`], produced by
/// [`IntervalTree::pre_order`].
#[derive(Clone, Debug)]
pub struct PreOrder<'a> {
    tree: &'a IntervalTree,
    stack: Vec<NodeId>,
    /// Whole-tree traversals walk the arena directly (arena order is
    /// pre-order by construction); subtree traversals use the stack.
    linear: Option<std::ops::Range<u32>>,
}

impl<'a> Iterator for PreOrder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if let Some(range) = &mut self.linear {
            return range.next().map(NodeId::from_raw);
        }
        let id = self.stack.pop()?;
        // Push children reversed so the leftmost child pops first.
        let children = self.tree.children(id);
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.linear {
            Some(range) => {
                let n = range.len();
                (n, Some(n))
            }
            None => (self.stack.len(), Some(self.tree.len())),
        }
    }
}

/// Incremental builder consuming enter/exit events in time order and
/// enforcing proper nesting.
///
/// See [`IntervalTree`] for an end-to-end example.
#[derive(Clone, Debug, Default)]
pub struct IntervalTreeBuilder {
    nodes: Vec<IntervalNode>,
    /// Stack of currently open nodes.
    open: Vec<NodeId>,
    last_event: Option<TimeNs>,
    root_closed: bool,
}

impl IntervalTreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        IntervalTreeBuilder::default()
    }

    /// Reserves room for `n` more nodes.
    ///
    /// Decoders that know an episode's interval count up front (from an
    /// extent index) call this so the node arena is sized in one
    /// allocation instead of growing geometrically mid-episode.
    pub fn reserve_nodes(&mut self, n: usize) {
        self.nodes.reserve(n);
    }

    /// Discards all building state, retaining allocations.
    ///
    /// A reused builder that hit a mid-episode error (a malformed exit, an
    /// unclosed interval) still holds the broken episode's nodes and open
    /// stack; `reset` returns it to a pristine state so the next episode
    /// cannot observe the failed one.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.open.clear();
        self.last_event = None;
        self.root_closed = false;
    }

    /// True if no interval is currently open.
    pub fn is_quiescent(&self) -> bool {
        self.open.is_empty()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    #[inline]
    fn check_monotone(&mut self, at: TimeNs) -> Result<(), ModelError> {
        if let Some(prev) = self.last_event {
            if at < prev {
                return Err(ModelError::NonMonotonicTime { previous: prev, at });
            }
        }
        self.last_event = Some(at);
        Ok(())
    }

    /// Opens a new interval of `kind` at time `at`.
    ///
    /// # Errors
    ///
    /// Fails if `at` precedes the previous event or if a second root is
    /// opened after the first root closed.
    #[inline]
    pub fn enter(
        &mut self,
        kind: IntervalKind,
        symbol: Option<MethodRef>,
        at: TimeNs,
    ) -> Result<NodeId, ModelError> {
        self.check_monotone(at)?;
        if self.open.is_empty() && self.root_closed {
            return Err(ModelError::MultipleRoots { at });
        }
        let parent = self.open.last().copied();
        // The open stack holds exactly the new node's proper ancestors, so
        // its length *is* the depth — no need to load the parent node.
        let depth = u32::try_from(self.open.len()).expect("more than u32::MAX open intervals");
        let id = NodeId::from_raw(
            u32::try_from(self.nodes.len()).expect("more than u32::MAX tree nodes"),
        );
        self.nodes.push(IntervalNode {
            // End is provisional until `exit`; start==end keeps the
            // invariant that intervals never invert.
            interval: Interval::new(kind, symbol, at, at),
            parent,
            depth,
        });
        self.open.push(id);
        Ok(id)
    }

    /// Closes the innermost open interval at time `at`.
    ///
    /// # Errors
    ///
    /// Fails if no interval is open or `at` precedes the previous event.
    #[inline]
    pub fn exit(&mut self, at: TimeNs) -> Result<NodeId, ModelError> {
        self.check_monotone(at)?;
        let id = self.open.pop().ok_or(ModelError::ExitWithoutEnter { at })?;
        self.nodes[id.index()].interval.end = at;
        if self.open.is_empty() {
            self.root_closed = true;
        }
        Ok(id)
    }

    /// Convenience: records a complete leaf interval `[start, end)` under
    /// the currently open interval.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`enter`](Self::enter) and
    /// [`exit`](Self::exit).
    pub fn leaf(
        &mut self,
        kind: IntervalKind,
        symbol: Option<MethodRef>,
        start: TimeNs,
        end: TimeNs,
    ) -> Result<NodeId, ModelError> {
        let id = self.enter(kind, symbol, start)?;
        self.exit(end)?;
        Ok(id)
    }

    /// Finishes the tree.
    ///
    /// # Errors
    ///
    /// Fails if intervals are still open or no root was recorded.
    pub fn finish(mut self) -> Result<IntervalTree, ModelError> {
        self.finish_reset()
    }

    /// Finishes the tree and resets the builder for the next one.
    ///
    /// This is the streaming-decode variant of
    /// [`finish`](Self::finish): decoders assembling thousands of
    /// episodes keep one builder alive and call this per episode, so the
    /// open-interval stack's allocation is reused instead of re-grown
    /// from empty every time. The node arena necessarily moves into the
    /// returned tree. On error the builder state is left untouched, so a
    /// lenient caller may keep feeding events.
    ///
    /// # Errors
    ///
    /// Fails if intervals are still open or no root was recorded.
    pub fn finish_reset(&mut self) -> Result<IntervalTree, ModelError> {
        if !self.open.is_empty() {
            return Err(ModelError::UnclosedIntervals {
                open: self.open.len(),
            });
        }
        if self.nodes.is_empty() {
            return Err(ModelError::MissingRoot);
        }
        let nodes = std::mem::take(&mut self.nodes);
        let (child_ids, child_start) = derive_children(&nodes);
        let tree = IntervalTree {
            nodes,
            child_ids,
            child_start,
        };
        self.last_event = None;
        self.root_closed = false;
        debug_assert!(tree.validate().is_ok());
        Ok(tree)
    }
}

impl fmt::Display for IntervalTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IntervalTree({} nodes, root {})",
            self.len(),
            self.root_interval()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    /// Builds the Fig 1 episode skeleton from the paper: a 1705 ms dispatch
    /// whose whole duration is a paint chain ending in a native DrawLine
    /// call that has a GC nested inside.
    fn figure1_tree() -> IntervalTree {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        b.enter(IntervalKind::Paint, None, ms(2)).unwrap(); // JFrame.paint
        b.enter(IntervalKind::Paint, None, ms(40)).unwrap(); // JLayeredPane.paint
        b.enter(IntervalKind::Paint, None, ms(120)).unwrap(); // JToolBar.paint
        b.enter(IntervalKind::Native, None, ms(430)).unwrap(); // DrawLine
        b.leaf(IntervalKind::Gc, None, ms(600), ms(1066)).unwrap();
        b.exit(ms(1273)).unwrap(); // native ends
        b.exit(ms(1467)).unwrap(); // toolbar
        b.exit(ms(1573)).unwrap(); // layered pane
        b.exit(ms(1700)).unwrap(); // frame
        b.exit(ms(1705)).unwrap(); // dispatch
        b.finish().unwrap()
    }

    #[test]
    fn figure1_shape() {
        let t = figure1_tree();
        assert_eq!(t.len(), 6);
        assert_eq!(t.max_depth(), 5);
        assert_eq!(t.descendant_count(t.root()), 5);
        assert_eq!(t.root_interval().duration(), DurationNs::from_millis(1705));
        assert!(t.contains_kind(IntervalKind::Gc));
        assert!(!t.contains_kind(IntervalKind::Listener));
    }

    #[test]
    fn pre_order_is_enter_order() {
        let t = figure1_tree();
        let kinds: Vec<IntervalKind> = t.pre_order().map(|id| t.interval(id).kind).collect();
        assert_eq!(
            kinds,
            vec![
                IntervalKind::Dispatch,
                IntervalKind::Paint,
                IntervalKind::Paint,
                IntervalKind::Paint,
                IntervalKind::Native,
                IntervalKind::Gc,
            ]
        );
    }

    #[test]
    fn pre_order_visits_siblings_left_to_right() {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        b.leaf(IntervalKind::Listener, None, ms(1), ms(2)).unwrap();
        b.leaf(IntervalKind::Paint, None, ms(3), ms(4)).unwrap();
        b.leaf(IntervalKind::Async, None, ms(5), ms(6)).unwrap();
        b.exit(ms(7)).unwrap();
        let t = b.finish().unwrap();
        let kinds: Vec<IntervalKind> = t.pre_order().map(|id| t.interval(id).kind).collect();
        assert_eq!(
            kinds,
            vec![
                IntervalKind::Dispatch,
                IntervalKind::Listener,
                IntervalKind::Paint,
                IntervalKind::Async,
            ]
        );
    }

    #[test]
    fn deepest_at_descends_to_leaf() {
        let t = figure1_tree();
        let gc = t.deepest_at(ms(700)).unwrap();
        assert_eq!(t.interval(gc).kind, IntervalKind::Gc);
        let native = t.deepest_at(ms(1100)).unwrap();
        assert_eq!(t.interval(native).kind, IntervalKind::Native);
        let dispatch = t.deepest_at(ms(1)).unwrap();
        assert_eq!(t.interval(dispatch).kind, IntervalKind::Dispatch);
        assert_eq!(t.deepest_at(ms(3000)), None);
    }

    #[test]
    fn outermost_kind_time_ignores_nesting() {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        b.enter(IntervalKind::Native, None, ms(10)).unwrap();
        // A native call nested in another native call must not double count.
        b.leaf(IntervalKind::Native, None, ms(20), ms(30)).unwrap();
        b.exit(ms(50)).unwrap();
        b.leaf(IntervalKind::Native, None, ms(60), ms(70)).unwrap();
        b.exit(ms(100)).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(
            t.outermost_kind_time(IntervalKind::Native),
            DurationNs::from_millis(50)
        );
        assert_eq!(t.outermost_kind_time(IntervalKind::Gc), DurationNs::ZERO);
    }

    #[test]
    fn finish_reset_reuses_builder_across_trees() {
        let mut b = IntervalTreeBuilder::new();
        // Times restart per episode, exactly as a decoder feeds them.
        for round in 0..3u64 {
            b.enter(IntervalKind::Dispatch, None, ms(round * 10))
                .unwrap();
            b.leaf(
                IntervalKind::Paint,
                None,
                ms(round * 10 + 1),
                ms(round * 10 + 2),
            )
            .unwrap();
            b.exit(ms(round * 10 + 5)).unwrap();
            let t = b.finish_reset().unwrap();
            assert_eq!(t.len(), 2);
            assert_eq!(t.root_interval().start, ms(round * 10));
            assert!(b.is_empty(), "reset must leave the builder empty");
            assert!(b.is_quiescent());
        }
        // A reset builder accepts a fresh root even though the previous
        // one closed.
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        b.exit(ms(1)).unwrap();
        assert!(b.finish_reset().is_ok());
    }

    #[test]
    fn finish_reset_errors_leave_state_intact() {
        let mut b = IntervalTreeBuilder::new();
        assert_eq!(b.finish_reset(), Err(ModelError::MissingRoot));
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        assert_eq!(
            b.finish_reset(),
            Err(ModelError::UnclosedIntervals { open: 1 })
        );
        // The open interval survives the failed finish and can be closed.
        b.exit(ms(5)).unwrap();
        assert_eq!(b.finish_reset().unwrap().len(), 1);
    }

    #[test]
    fn exit_without_enter_fails() {
        let mut b = IntervalTreeBuilder::new();
        assert_eq!(
            b.exit(ms(1)),
            Err(ModelError::ExitWithoutEnter { at: ms(1) })
        );
    }

    #[test]
    fn non_monotonic_time_fails() {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(10)).unwrap();
        assert!(matches!(
            b.enter(IntervalKind::Paint, None, ms(5)),
            Err(ModelError::NonMonotonicTime { .. })
        ));
    }

    #[test]
    fn unclosed_intervals_fail_finish() {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        assert_eq!(b.finish(), Err(ModelError::UnclosedIntervals { open: 1 }));
    }

    #[test]
    fn empty_builder_fails_finish() {
        assert_eq!(
            IntervalTreeBuilder::new().finish(),
            Err(ModelError::MissingRoot)
        );
    }

    #[test]
    fn second_root_fails() {
        let mut b = IntervalTreeBuilder::new();
        b.leaf(IntervalKind::Dispatch, None, ms(0), ms(1)).unwrap();
        assert_eq!(
            b.enter(IntervalKind::Dispatch, None, ms(2)),
            Err(ModelError::MultipleRoots { at: ms(2) })
        );
    }

    #[test]
    fn equal_timestamps_allowed() {
        // Zero-length intervals occur for instantaneous native calls.
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        b.leaf(IntervalKind::Native, None, ms(1), ms(1)).unwrap();
        b.exit(ms(1)).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_accepts_builder_output() {
        assert!(figure1_tree().validate().is_ok());
    }

    #[test]
    fn outline_renders_symbols_and_indentation() {
        let mut symbols = SymbolTable::new();
        let paint = symbols.method("javax.swing.JFrame", "paint");
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        b.leaf(IntervalKind::Paint, Some(paint), ms(1), ms(141))
            .unwrap();
        b.exit(ms(142)).unwrap();
        let t = b.finish().unwrap();
        let outline = t.outline(&symbols);
        assert!(outline.contains("Dispatch (142ms)"));
        assert!(outline.contains("  Paint javax.swing.JFrame.paint (140ms)"));
    }

    #[test]
    fn quiescence_tracking() {
        let mut b = IntervalTreeBuilder::new();
        assert!(b.is_quiescent());
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        assert!(!b.is_quiescent());
        b.exit(ms(1)).unwrap();
        assert!(b.is_quiescent());
    }
}
