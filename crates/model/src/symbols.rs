//! Interned symbolic information: class and method names.
//!
//! Traces refer to code locations (listener classes, paint methods, native
//! functions, stack frames) by name. To keep the in-memory representation
//! compact — NetBeans sessions reference tens of thousands of distinct
//! methods — names are interned once in a [`SymbolTable`] and referenced by
//! [`SymbolId`]. A [`MethodRef`] pairs a class symbol with a method symbol.
//!
//! The [`OriginClassifier`] decides whether a class belongs to the
//! application or to the runtime library, which drives the paper's Fig 6
//! (location) analysis. The default classifier mirrors the paper's
//! methodology: classification by fully qualified class-name prefix.

use std::collections::HashMap;
use std::fmt;

use crate::ids::SymbolId;

/// A reference to a `Class.method` pair via interned symbols.
///
/// ```
/// use lagalyzer_model::symbols::SymbolTable;
/// let mut t = SymbolTable::new();
/// let m = t.method("javax.swing.JFrame", "paint");
/// assert_eq!(t.render(m), "javax.swing.JFrame.paint");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MethodRef {
    /// Fully qualified class name symbol.
    pub class: SymbolId,
    /// Method name symbol.
    pub method: SymbolId,
}

/// Whether a code location belongs to the application under study or to the
/// runtime library shipped with the platform.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CodeOrigin {
    /// Application code (anything not matched by a library prefix).
    Application,
    /// Runtime library code (JDK, GUI toolkit, vendor extensions).
    RuntimeLibrary,
}

impl fmt::Display for CodeOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeOrigin::Application => write!(f, "application"),
            CodeOrigin::RuntimeLibrary => write!(f, "runtime library"),
        }
    }
}

/// An append-only interner for class and method names.
///
/// Interning the same string twice yields the same [`SymbolId`]; ids are
/// dense and start at zero, so they double as indices into side tables.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Creates an empty table with room for `capacity` symbols, so bulk
    /// construction (the simulator interns tens of thousands of method
    /// names per session) does not rehash repeatedly while growing.
    pub fn with_capacity(capacity: usize) -> Self {
        SymbolTable {
            names: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more symbols.
    pub fn reserve(&mut self, additional: usize) {
        self.names.reserve(additional);
        self.index.reserve(additional);
    }

    /// Drops excess capacity once construction is over, returning the
    /// table to its working-set size.
    pub fn shrink_to_fit(&mut self) {
        self.names.shrink_to_fit();
        self.index.shrink_to_fit();
    }

    /// Number of symbols the table can hold before its name storage must
    /// reallocate (the index may rehash earlier; this reports the dense
    /// side, which dominates memory).
    pub fn capacity(&self) -> usize {
        self.names.capacity()
    }

    /// Interns `name`, returning its stable id.
    ///
    /// ```
    /// use lagalyzer_model::symbols::SymbolTable;
    /// let mut t = SymbolTable::new();
    /// let a = t.intern("java.lang.String");
    /// let b = t.intern("java.lang.String");
    /// assert_eq!(a, b);
    /// ```
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        self.insert_new(name.to_owned())
    }

    /// Interns an owned `name`, reusing its allocation on a miss.
    pub fn intern_owned(&mut self, name: String) -> SymbolId {
        if let Some(&id) = self.index.get(name.as_str()) {
            return id;
        }
        self.insert_new(name)
    }

    fn insert_new(&mut self, name: String) -> SymbolId {
        let id = SymbolId::from_raw(
            u32::try_from(self.names.len()).expect("more than u32::MAX interned symbols"),
        );
        self.names.push(name.clone());
        self.index.insert(name, id);
        id
    }

    /// Interns a class/method pair as a [`MethodRef`].
    pub fn method(&mut self, class: &str, method: &str) -> MethodRef {
        MethodRef {
            class: self.intern(class),
            method: self.intern(method),
        }
    }

    /// Resolves an id back to its string.
    ///
    /// Returns `None` for ids not produced by this table.
    pub fn resolve(&self, id: SymbolId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Looks up an already interned name without interning it.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.index.get(name).copied()
    }

    /// Renders a [`MethodRef`] as `Class.method`.
    ///
    /// Unknown symbols render as `?`.
    pub fn render(&self, m: MethodRef) -> String {
        format!(
            "{}.{}",
            self.resolve(m.class).unwrap_or("?"),
            self.resolve(m.method).unwrap_or("?")
        )
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| {
            (
                SymbolId::from_raw(u32::try_from(i).expect("symbol index overflows u32")),
                n.as_str(),
            )
        })
    }
}

/// Builds a table from an iterator of names, reserving from the
/// iterator's `len()`-style size hint up front so construction performs a
/// single allocation instead of rehashing at every growth step.
///
/// ```
/// use lagalyzer_model::symbols::SymbolTable;
/// let t: SymbolTable = ["a.B", "c.D", "a.B"].into_iter().collect();
/// assert_eq!(t.len(), 2);
/// assert!(t.capacity() >= 3);
/// ```
impl<S: Into<String>> FromIterator<S> for SymbolTable {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let (lower, upper) = iter.size_hint();
        // Exact-size iterators (slices, vecs) report lower == upper == len.
        let mut table = SymbolTable::with_capacity(upper.unwrap_or(lower));
        for name in iter {
            table.intern_owned(name.into());
        }
        table
    }
}

impl<S: Into<String>> Extend<S> for SymbolTable {
    fn extend<I: IntoIterator<Item = S>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        self.reserve(iter.size_hint().0);
        for name in iter {
            self.intern_owned(name.into());
        }
    }
}

/// Classifies class names into application vs runtime-library code by
/// fully-qualified-name prefix, as in the paper's Fig 6 methodology.
///
/// ```
/// use lagalyzer_model::symbols::{CodeOrigin, OriginClassifier};
/// let c = OriginClassifier::java_default();
/// assert_eq!(c.classify_name("javax.swing.JList"), CodeOrigin::RuntimeLibrary);
/// assert_eq!(c.classify_name("org.argouml.Main"), CodeOrigin::Application);
/// ```
#[derive(Clone, Debug)]
pub struct OriginClassifier {
    library_prefixes: Vec<String>,
}

impl OriginClassifier {
    /// A classifier with an explicit set of runtime-library prefixes.
    pub fn new<I, S>(library_prefixes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        OriginClassifier {
            library_prefixes: library_prefixes.into_iter().map(Into::into).collect(),
        }
    }

    /// The default Java platform prefixes used in the paper's study: the
    /// JDK (`java.`, `javax.`, `sun.`, `com.sun.`, `jdk.`), and Apple's
    /// toolkit extensions (`com.apple.`, `apple.`), which host the combo-box
    /// blink `Thread.sleep` the paper tracks down in §IV-E.
    pub fn java_default() -> Self {
        OriginClassifier::new([
            "java.",
            "javax.",
            "sun.",
            "com.sun.",
            "jdk.",
            "com.apple.",
            "apple.",
        ])
    }

    /// Adds another library prefix.
    pub fn add_prefix(&mut self, prefix: &str) -> &mut Self {
        self.library_prefixes.push(prefix.to_owned());
        self
    }

    /// Classifies a fully qualified class name.
    pub fn classify_name(&self, class_name: &str) -> CodeOrigin {
        if self
            .library_prefixes
            .iter()
            .any(|p| class_name.starts_with(p.as_str()))
        {
            CodeOrigin::RuntimeLibrary
        } else {
            CodeOrigin::Application
        }
    }

    /// Classifies an interned class symbol; unknown symbols count as
    /// application code (conservative: never blames the library for code it
    /// cannot see).
    pub fn classify(&self, symbols: &SymbolTable, class: SymbolId) -> CodeOrigin {
        match symbols.resolve(class) {
            Some(name) => self.classify_name(name),
            None => CodeOrigin::Application,
        }
    }
}

impl Default for OriginClassifier {
    fn default() -> Self {
        OriginClassifier::java_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let a2 = t.intern("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.as_raw(), 0);
        assert_eq!(b.as_raw(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn capacity_is_reserved_and_shrinkable() {
        let mut t = SymbolTable::with_capacity(64);
        assert!(t.capacity() >= 64);
        let cap_before = t.capacity();
        for i in 0..64 {
            t.intern(&format!("sym{i}"));
        }
        assert_eq!(t.capacity(), cap_before, "pre-sized table must not grow");
        t.shrink_to_fit();
        assert!(t.capacity() >= t.len());
        // Shrinking must not disturb contents.
        assert_eq!(t.resolve(SymbolId::from_raw(7)), Some("sym7"));
        t.reserve(100);
        assert!(t.capacity() >= t.len() + 100);
    }

    #[test]
    fn from_iterator_pre_reserves_and_dedups() {
        let names: Vec<String> = (0..100).map(|i| format!("cls{}", i % 10)).collect();
        let t: SymbolTable = names.iter().map(String::as_str).collect();
        assert_eq!(t.len(), 10);
        assert!(t.capacity() >= 100, "exact size hint must be used");
        assert_eq!(t.lookup("cls3"), Some(SymbolId::from_raw(3)));
    }

    #[test]
    fn extend_and_intern_owned() {
        let mut t = SymbolTable::new();
        let a = t.intern_owned("alpha".to_owned());
        t.extend(["beta", "alpha", "gamma"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.intern_owned("alpha".to_owned()), a);
        assert_eq!(t.lookup("gamma"), Some(SymbolId::from_raw(2)));
    }

    #[test]
    fn resolve_and_lookup() {
        let mut t = SymbolTable::new();
        let id = t.intern("javax.swing.JToolBar");
        assert_eq!(t.resolve(id), Some("javax.swing.JToolBar"));
        assert_eq!(t.lookup("javax.swing.JToolBar"), Some(id));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.resolve(SymbolId::from_raw(99)), None);
    }

    #[test]
    fn method_ref_rendering() {
        let mut t = SymbolTable::new();
        let m = t.method("sun.java2d.loops.DrawLine", "DrawLine");
        assert_eq!(t.render(m), "sun.java2d.loops.DrawLine.DrawLine");
    }

    #[test]
    fn render_unknown_symbol() {
        let t = SymbolTable::new();
        let m = MethodRef {
            class: SymbolId::from_raw(7),
            method: SymbolId::from_raw(8),
        };
        assert_eq!(t.render(m), "?.?");
    }

    #[test]
    fn iter_in_order() {
        let mut t = SymbolTable::new();
        t.intern("x");
        t.intern("y");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn default_classifier_covers_jdk_and_apple() {
        let c = OriginClassifier::java_default();
        for lib in [
            "java.lang.Thread",
            "javax.swing.JComboBox",
            "sun.java2d.loops.DrawLine",
            "com.sun.java.swing.plaf.Foo",
            "com.apple.laf.AquaComboBoxUI",
            "apple.awt.CGraphicsDevice",
        ] {
            assert_eq!(c.classify_name(lib), CodeOrigin::RuntimeLibrary, "{lib}");
        }
        for app in ["org.jmol.Viewer", "net.sf.jedit.Buffer", "Main"] {
            assert_eq!(c.classify_name(app), CodeOrigin::Application, "{app}");
        }
    }

    #[test]
    fn custom_prefix_extends_library() {
        let mut c = OriginClassifier::java_default();
        assert_eq!(
            c.classify_name("org.netbeans.core.Platform"),
            CodeOrigin::Application
        );
        c.add_prefix("org.netbeans.");
        assert_eq!(
            c.classify_name("org.netbeans.core.Platform"),
            CodeOrigin::RuntimeLibrary
        );
    }

    #[test]
    fn classify_interned_symbol() {
        let mut t = SymbolTable::new();
        let lib = t.intern("javax.swing.JTree");
        let app = t.intern("ganttproject.GanttGraphicArea");
        let c = OriginClassifier::java_default();
        assert_eq!(c.classify(&t, lib), CodeOrigin::RuntimeLibrary);
        assert_eq!(c.classify(&t, app), CodeOrigin::Application);
        assert_eq!(
            c.classify(&t, SymbolId::from_raw(42)),
            CodeOrigin::Application
        );
    }
}
