//! Typed identifiers.
//!
//! Each entity in a trace is addressed by a dedicated newtype so that a
//! thread id can never be confused with an episode id at a call site.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from its raw index.
            pub const fn from_raw(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw index backing this id.
            pub const fn as_raw(self) -> u32 {
                self.0
            }

            /// The raw index as `usize`, for arena indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
    };
}

id_type!(
    /// Identifies a thread within one session trace.
    ///
    /// ```
    /// use lagalyzer_model::ids::ThreadId;
    /// assert_eq!(ThreadId::from_raw(3).to_string(), "t3");
    /// ```
    ThreadId,
    "t"
);

id_type!(
    /// Identifies an episode within one session trace, in dispatch order.
    ///
    /// ```
    /// use lagalyzer_model::ids::EpisodeId;
    /// assert_eq!(EpisodeId::from_raw(17).index(), 17);
    /// ```
    EpisodeId,
    "e"
);

id_type!(
    /// Identifies a node within one interval tree.
    ///
    /// ```
    /// use lagalyzer_model::ids::NodeId;
    /// assert_eq!(NodeId::from_raw(0).as_raw(), 0);
    /// ```
    NodeId,
    "n"
);

id_type!(
    /// Identifies an interned string in a [`crate::symbols::SymbolTable`].
    ///
    /// ```
    /// use lagalyzer_model::ids::SymbolId;
    /// assert_eq!(SymbolId::from_raw(5), SymbolId::from(5u32));
    /// ```
    SymbolId,
    "s"
);

id_type!(
    /// Identifies one recorded interactive session of an application.
    ///
    /// ```
    /// use lagalyzer_model::ids::SessionId;
    /// assert_eq!(SessionId::from_raw(1).to_string(), "session1");
    /// ```
    SessionId,
    "session"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = EpisodeId::from_raw(1);
        let b = EpisodeId::from_raw(2);
        assert!(a < b);
        let set: HashSet<EpisodeId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn debug_and_display_have_prefixes() {
        assert_eq!(format!("{:?}", ThreadId::from_raw(0)), "t0");
        assert_eq!(format!("{}", NodeId::from_raw(9)), "n9");
        assert_eq!(format!("{:?}", SymbolId::from_raw(2)), "s2");
    }

    #[test]
    fn raw_round_trip() {
        for raw in [0u32, 1, 42, u32::MAX] {
            assert_eq!(SessionId::from_raw(raw).as_raw(), raw);
        }
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ThreadId::default(), ThreadId::from_raw(0));
    }
}
