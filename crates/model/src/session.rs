//! Whole-session traces.
//!
//! A [`SessionTrace`] is the in-memory representation of one recorded
//! interactive session: metadata, the symbol table, every traced episode
//! (≥ filter threshold), the count of episodes the tracer filtered out,
//! and session-level garbage-collection events.

use crate::episode::Episode;
use crate::error::ModelError;
use crate::ids::{SessionId, ThreadId};
use crate::symbols::SymbolTable;
use crate::time::{DurationNs, TimeNs};

/// A session-level garbage collection event (start/end of one collection).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GcEvent {
    /// Collection start (all threads at safe point).
    pub start: TimeNs,
    /// Collection end (threads released).
    pub end: TimeNs,
    /// True for a major (full) collection, false for a minor one.
    pub major: bool,
}

impl GcEvent {
    /// The collection's duration.
    pub fn duration(&self) -> DurationNs {
        self.end - self.start
    }
}

/// Descriptive metadata about a recorded session.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SessionMeta {
    /// Application name (e.g. "JMol").
    pub application: String,
    /// Session identifier (the paper records four sessions per app).
    pub session: SessionId,
    /// The designated GUI (event dispatch) thread.
    pub gui_thread: ThreadId,
    /// End-to-end session duration (the paper's Table III "E2E" column).
    pub end_to_end: DurationNs,
    /// Tracer-side filter threshold; episodes shorter than this were
    /// dropped and only counted (paper: 3 ms).
    pub filter_threshold: DurationNs,
}

/// The complete trace of one interactive session.
#[derive(Clone, Debug)]
pub struct SessionTrace {
    meta: SessionMeta,
    symbols: SymbolTable,
    episodes: Vec<Episode>,
    /// Number of episodes shorter than the filter threshold, which the
    /// tracer dropped (Table III column "< 3ms").
    short_episode_count: u64,
    /// Total duration of the dropped episodes. The tracer measures every
    /// episode before deciding to drop it, so this is exact, and it keeps
    /// the "In-Eps" statistic honest even with a million dropped episodes.
    short_episode_time: DurationNs,
    gc_events: Vec<GcEvent>,
}

impl SessionTrace {
    /// Session metadata.
    pub fn meta(&self) -> &SessionMeta {
        &self.meta
    }

    /// The interned symbol table shared by all episodes.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// All traced episodes, in dispatch order.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Count of episodes dropped by the tracer-side filter.
    pub fn short_episode_count(&self) -> u64 {
        self.short_episode_count
    }

    /// Total duration of the episodes dropped by the tracer-side filter.
    pub fn short_episode_time(&self) -> DurationNs {
        self.short_episode_time
    }

    /// Session-level GC events, in time order.
    pub fn gc_events(&self) -> &[GcEvent] {
        &self.gc_events
    }

    /// Total time spent inside episodes (the numerator of Table III's
    /// "In-Eps" column): traced episode time plus the measured total time
    /// of the filtered-out short episodes.
    pub fn in_episode_time(&self) -> DurationNs {
        let traced: DurationNs = self.episodes.iter().map(Episode::duration).sum();
        traced + self.short_episode_time
    }

    /// Fraction of end-to-end time spent in episodes, in `[0, 1]`.
    pub fn in_episode_fraction(&self) -> f64 {
        self.in_episode_time()
            .fraction_of(self.meta.end_to_end)
            .min(1.0)
    }

    /// Episodes at or above the given perceptibility threshold.
    pub fn perceptible_episodes(&self, threshold: DurationNs) -> impl Iterator<Item = &Episode> {
        self.episodes
            .iter()
            .filter(move |e| e.is_perceptible(threshold))
    }
}

/// An ordered run of episodes assembled by one decode worker, merged
/// into a [`SessionTraceBuilder`] wholesale.
///
/// The parallel decode path shards a session's episodes into contiguous
/// ranges; each worker decodes its range into a fragment of its own,
/// enforcing dispatch ordering *locally* as it pushes. Because each
/// fragment is internally non-decreasing, the final merge only has to
/// compare fragment boundaries and can move every episode in one bulk
/// append ([`SessionTraceBuilder::append_fragment`]) instead of re-running
/// the per-episode order check a second time on one thread. The union of
/// the local checks and the boundary checks is exactly the set of
/// adjacent-pair comparisons the serial builder performs, so accepted and
/// rejected inputs are identical to pushing every episode serially.
#[derive(Debug, Default)]
pub struct EpisodeFragment {
    episodes: Vec<Episode>,
}

impl EpisodeFragment {
    /// An empty fragment.
    pub fn new() -> EpisodeFragment {
        EpisodeFragment::default()
    }

    /// An empty fragment with room for `n` episodes.
    pub fn with_capacity(n: usize) -> EpisodeFragment {
        EpisodeFragment {
            episodes: Vec::with_capacity(n),
        }
    }

    /// Appends an episode, enforcing dispatch ordering within the
    /// fragment.
    ///
    /// # Errors
    ///
    /// Fails if the episode starts before the previously pushed one.
    pub fn push(&mut self, episode: Episode) -> Result<(), ModelError> {
        if let Some(last) = self.episodes.last() {
            if episode.start() < last.start() {
                return Err(ModelError::EpisodeOrder {
                    previous: last.start(),
                    at: episode.start(),
                });
            }
        }
        self.episodes.push(episode);
        Ok(())
    }

    /// Appends an episode if it keeps the fragment ordered, dropping it
    /// otherwise; returns whether it was kept. This mirrors the salvage
    /// decoder's defensive per-episode drop.
    pub fn push_lenient(&mut self, episode: Episode) -> bool {
        self.push(episode).is_ok()
    }

    /// Number of episodes in the fragment.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// `true` when the fragment holds no episodes.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Dispatch time of the fragment's first episode.
    pub fn first_start(&self) -> Option<TimeNs> {
        self.episodes.first().map(Episode::start)
    }

    /// Dispatch time of the fragment's last episode.
    pub fn last_start(&self) -> Option<TimeNs> {
        self.episodes.last().map(Episode::start)
    }

    /// The episodes, in push order.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Consumes the fragment, yielding its episodes.
    pub fn into_episodes(self) -> Vec<Episode> {
        self.episodes
    }
}

/// Builder assembling a [`SessionTrace`], validating episode ordering.
#[derive(Debug)]
pub struct SessionTraceBuilder {
    meta: SessionMeta,
    symbols: SymbolTable,
    episodes: Vec<Episode>,
    short_episode_count: u64,
    short_episode_time: DurationNs,
    gc_events: Vec<GcEvent>,
}

impl SessionTraceBuilder {
    /// Starts a session trace with the given metadata and symbol table.
    pub fn new(meta: SessionMeta, symbols: SymbolTable) -> Self {
        SessionTraceBuilder {
            meta,
            symbols,
            episodes: Vec::new(),
            short_episode_count: 0,
            short_episode_time: DurationNs::ZERO,
            gc_events: Vec::new(),
        }
    }

    /// Mutable access to the symbol table while building.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Appends a traced episode.
    ///
    /// # Errors
    ///
    /// Fails if the episode starts before the previously added one.
    pub fn push_episode(&mut self, episode: Episode) -> Result<(), ModelError> {
        if let Some(last) = self.episodes.last() {
            if episode.start() < last.start() {
                return Err(ModelError::EpisodeOrder {
                    previous: last.start(),
                    at: episode.start(),
                });
            }
        }
        self.episodes.push(episode);
        Ok(())
    }

    /// Reserves room for `additional` more episodes, so a sharded merge
    /// can size the final vector once up front.
    pub fn reserve_episodes(&mut self, additional: usize) {
        self.episodes.reserve(additional);
    }

    /// Bulk-appends a worker-built [`EpisodeFragment`].
    ///
    /// The fragment enforced ordering internally as it was filled, so only
    /// the boundary — the builder's last episode against the fragment's
    /// first — needs checking here; the episodes then move in one
    /// `Vec::append`. Appending fragments in shard order accepts exactly
    /// the inputs [`push_episode`](Self::push_episode) would accept one
    /// episode at a time.
    ///
    /// # Errors
    ///
    /// Fails if the fragment's first episode starts before the builder's
    /// last one. The builder is unchanged on error.
    pub fn append_fragment(&mut self, fragment: EpisodeFragment) -> Result<(), ModelError> {
        if let (Some(last), Some(first)) = (self.episodes.last(), fragment.first_start()) {
            if first < last.start() {
                return Err(ModelError::EpisodeOrder {
                    previous: last.start(),
                    at: first,
                });
            }
        }
        let mut episodes = fragment.into_episodes();
        self.episodes.append(&mut episodes);
        Ok(())
    }

    /// Bulk-appends a fragment, dropping the prefix of episodes that start
    /// before the builder's last episode; returns how many were dropped.
    ///
    /// Because the fragment is internally non-decreasing, every episode
    /// after the first in-order one is in order too, so a prefix drop at
    /// the boundary reproduces exactly the per-episode drops a lenient
    /// serial loop (`let _ = push_episode(..)`) would make. Used by the
    /// salvage decode path, which tolerates out-of-order extents.
    pub fn append_fragment_lenient(&mut self, fragment: EpisodeFragment) -> usize {
        let floor = match self.episodes.last() {
            Some(last) => last.start(),
            None => {
                let len = fragment.len();
                let mut episodes = fragment.into_episodes();
                self.episodes.append(&mut episodes);
                debug_assert_eq!(len, self.episodes.len());
                return 0;
            }
        };
        let mut episodes = fragment.into_episodes();
        let keep_from = episodes.partition_point(|e| e.start() < floor);
        episodes.drain(..keep_from);
        self.episodes.append(&mut episodes);
        keep_from
    }

    /// Records that `n` more episodes with `total` combined duration were
    /// dropped by the tracer filter.
    pub fn add_short_episodes(&mut self, n: u64, total: DurationNs) {
        self.short_episode_count += n;
        self.short_episode_time += total;
    }

    /// Records a session-level GC event.
    pub fn push_gc(&mut self, gc: GcEvent) {
        self.gc_events.push(gc);
    }

    /// Finalizes the trace.
    pub fn finish(mut self) -> SessionTrace {
        self.gc_events.sort_by_key(|g| g.start);
        SessionTrace {
            meta: self.meta,
            symbols: self.symbols,
            episodes: self.episodes,
            short_episode_count: self.short_episode_count,
            short_episode_time: self.short_episode_time,
            gc_events: self.gc_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::EpisodeBuilder;
    use crate::ids::EpisodeId;
    use crate::interval::IntervalKind;
    use crate::tree::IntervalTreeBuilder;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn meta() -> SessionMeta {
        SessionMeta {
            application: "TestApp".to_owned(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(10),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        }
    }

    fn episode(id: u32, start_ms: u64, end_ms: u64) -> Episode {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(start_ms)).unwrap();
        b.exit(ms(end_ms)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
            .tree(b.finish().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_query() {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        b.push_episode(episode(0, 0, 50)).unwrap();
        b.push_episode(episode(1, 100, 300)).unwrap();
        b.add_short_episodes(10, DurationNs::from_millis(5));
        b.push_gc(GcEvent {
            start: ms(20),
            end: ms(25),
            major: false,
        });
        let trace = b.finish();
        assert_eq!(trace.episodes().len(), 2);
        assert_eq!(trace.short_episode_count(), 10);
        assert_eq!(trace.gc_events().len(), 1);
        assert_eq!(trace.meta().application, "TestApp");
    }

    #[test]
    fn episode_order_enforced() {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        b.push_episode(episode(0, 100, 200)).unwrap();
        let err = b.push_episode(episode(1, 50, 80)).unwrap_err();
        assert!(matches!(err, ModelError::EpisodeOrder { .. }));
    }

    #[test]
    fn fragment_enforces_internal_order() {
        let mut f = EpisodeFragment::with_capacity(2);
        f.push(episode(0, 100, 200)).unwrap();
        let err = f.push(episode(1, 50, 80)).unwrap_err();
        assert!(matches!(err, ModelError::EpisodeOrder { .. }));
        assert!(!f.push_lenient(episode(2, 50, 80)));
        assert!(f.push_lenient(episode(3, 100, 300)));
        assert_eq!(f.len(), 2);
        assert_eq!(f.first_start(), Some(ms(100)));
        assert_eq!(f.last_start(), Some(ms(100)));
    }

    #[test]
    fn append_fragment_matches_serial_pushes() {
        // Split one episode sequence into fragments and merge; the result
        // must equal pushing every episode through one builder.
        let episodes: Vec<Episode> = (0..10)
            .map(|i| episode(i, 10 * u64::from(i), 1000))
            .collect();
        let mut serial = SessionTraceBuilder::new(meta(), SymbolTable::new());
        for e in &episodes {
            serial.push_episode(e.clone()).unwrap();
        }
        let mut merged = SessionTraceBuilder::new(meta(), SymbolTable::new());
        merged.reserve_episodes(episodes.len());
        for chunk in episodes.chunks(3) {
            let mut f = EpisodeFragment::with_capacity(chunk.len());
            for e in chunk {
                f.push(e.clone()).unwrap();
            }
            merged.append_fragment(f).unwrap();
        }
        assert_eq!(serial.finish().episodes(), merged.finish().episodes());
    }

    #[test]
    fn append_fragment_rejects_boundary_violation() {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        b.push_episode(episode(0, 100, 200)).unwrap();
        let mut f = EpisodeFragment::new();
        f.push(episode(1, 50, 80)).unwrap();
        f.push(episode(2, 150, 250)).unwrap();
        let err = b.append_fragment(f).unwrap_err();
        assert!(matches!(err, ModelError::EpisodeOrder { .. }));
        // The builder is unchanged on error.
        assert_eq!(b.finish().episodes().len(), 1);
    }

    #[test]
    fn append_fragment_lenient_drops_same_prefix_as_serial_loop() {
        // Fragment [50, 150, 250] against a builder ending at 100: the
        // serial lenient loop drops only the 50 (150 and 250 then clear
        // the new floor), and so must the prefix drop.
        let mut serial = SessionTraceBuilder::new(meta(), SymbolTable::new());
        serial.push_episode(episode(0, 100, 200)).unwrap();
        let frag_eps = [
            episode(1, 50, 80),
            episode(2, 150, 250),
            episode(3, 250, 300),
        ];
        for e in &frag_eps {
            let _ = serial.push_episode(e.clone());
        }
        let mut merged = SessionTraceBuilder::new(meta(), SymbolTable::new());
        merged.push_episode(episode(0, 100, 200)).unwrap();
        let mut f = EpisodeFragment::new();
        for e in &frag_eps {
            f.push(e.clone()).unwrap();
        }
        assert_eq!(merged.append_fragment_lenient(f), 1);
        assert_eq!(serial.finish().episodes(), merged.finish().episodes());
    }

    #[test]
    fn append_fragment_lenient_into_empty_builder_keeps_all() {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        let mut f = EpisodeFragment::new();
        f.push(episode(0, 10, 20)).unwrap();
        f.push(episode(1, 30, 40)).unwrap();
        assert_eq!(b.append_fragment_lenient(f), 0);
        assert_eq!(b.append_fragment_lenient(EpisodeFragment::new()), 0);
        assert_eq!(b.finish().episodes().len(), 2);
    }

    #[test]
    fn in_episode_time_counts_short_episode_time() {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        b.push_episode(episode(0, 0, 100)).unwrap(); // 100 ms
        b.add_short_episodes(1000, DurationNs::from_millis(1500));
        let trace = b.finish();
        assert_eq!(trace.short_episode_time(), DurationNs::from_millis(1500));
        assert_eq!(trace.in_episode_time(), DurationNs::from_millis(1600));
        // 1.6s of 10s end-to-end.
        assert!((trace.in_episode_fraction() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn in_episode_fraction_clamped() {
        let mut m = meta();
        m.end_to_end = DurationNs::from_millis(50);
        let mut b = SessionTraceBuilder::new(m, SymbolTable::new());
        b.push_episode(episode(0, 0, 100)).unwrap();
        assert_eq!(b.finish().in_episode_fraction(), 1.0);
    }

    #[test]
    fn perceptible_filtering() {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        b.push_episode(episode(0, 0, 50)).unwrap();
        b.push_episode(episode(1, 100, 250)).unwrap();
        b.push_episode(episode(2, 300, 401)).unwrap();
        let trace = b.finish();
        let long: Vec<u32> = trace
            .perceptible_episodes(DurationNs::PERCEPTIBLE_DEFAULT)
            .map(|e| e.id().as_raw())
            .collect();
        assert_eq!(long, vec![1, 2]);
    }

    #[test]
    fn gc_events_sorted_on_finish() {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        b.push_gc(GcEvent {
            start: ms(50),
            end: ms(60),
            major: true,
        });
        b.push_gc(GcEvent {
            start: ms(10),
            end: ms(12),
            major: false,
        });
        let trace = b.finish();
        assert_eq!(trace.gc_events()[0].start, ms(10));
        assert_eq!(trace.gc_events()[1].duration(), DurationNs::from_millis(10));
    }

    #[test]
    fn symbols_accessible_during_build() {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        let m = b.symbols_mut().method("a.B", "c");
        let trace = b.finish();
        assert_eq!(trace.symbols().render(m), "a.B.c");
    }

    #[test]
    fn equal_start_episodes_allowed() {
        // Two dispatches can begin at the same instant when timer events
        // coalesce; ordering only forbids going backwards.
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        b.push_episode(episode(0, 100, 110)).unwrap();
        b.push_episode(episode(1, 100, 120)).unwrap();
        assert_eq!(b.finish().episodes().len(), 2);
    }
}
