//! Error type for model construction.

use std::error::Error;
use std::fmt;

use crate::interval::IntervalKind;
use crate::time::TimeNs;

/// Errors raised while building model objects from raw trace events.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An `exit` event arrived with no interval currently open.
    ExitWithoutEnter {
        /// Time of the offending exit event.
        at: TimeNs,
    },
    /// An event carried a timestamp earlier than the previous event on the
    /// same thread; interval trees require monotone event times.
    NonMonotonicTime {
        /// Timestamp of the previous event.
        previous: TimeNs,
        /// The offending earlier timestamp.
        at: TimeNs,
    },
    /// `finish` was called while intervals were still open.
    UnclosedIntervals {
        /// How many intervals remained open.
        open: usize,
    },
    /// A tree must start with exactly one root interval.
    MissingRoot,
    /// A second top-level interval was opened after the root closed.
    MultipleRoots {
        /// Time the second root was opened.
        at: TimeNs,
    },
    /// An episode's root interval must be a dispatch.
    RootNotDispatch {
        /// The actual root kind encountered.
        found: IntervalKind,
    },
    /// A sample snapshot lies outside the episode it was attached to.
    SampleOutOfRange {
        /// Time of the offending sample.
        at: TimeNs,
        /// Episode start.
        start: TimeNs,
        /// Episode end.
        end: TimeNs,
    },
    /// Session episodes must be dispatched in non-decreasing start order.
    EpisodeOrder {
        /// Start of the previous episode.
        previous: TimeNs,
        /// The offending earlier start.
        at: TimeNs,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ExitWithoutEnter { at } => {
                write!(f, "interval exit at {at} without a matching enter")
            }
            ModelError::NonMonotonicTime { previous, at } => {
                write!(f, "event time {at} precedes previous event time {previous}")
            }
            ModelError::UnclosedIntervals { open } => {
                write!(f, "tree finished with {open} interval(s) still open")
            }
            ModelError::MissingRoot => write!(f, "interval tree has no root interval"),
            ModelError::MultipleRoots { at } => {
                write!(f, "second top-level interval opened at {at}")
            }
            ModelError::RootNotDispatch { found } => {
                write!(f, "episode root must be a dispatch interval, found {found}")
            }
            ModelError::SampleOutOfRange { at, start, end } => {
                write!(f, "sample at {at} outside episode window [{start}, {end}]")
            }
            ModelError::EpisodeOrder { previous, at } => write!(
                f,
                "episode dispatched at {at} precedes previous episode at {previous}"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = ModelError::ExitWithoutEnter {
            at: TimeNs::from_millis(5),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("interval exit"));
        assert!(msg.contains("0.005s"));
    }

    #[test]
    fn error_trait_object_usable() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        takes_err(&ModelError::MissingRoot);
    }

    #[test]
    fn all_variants_display() {
        let samples: Vec<ModelError> = vec![
            ModelError::ExitWithoutEnter { at: TimeNs::ZERO },
            ModelError::NonMonotonicTime {
                previous: TimeNs::from_millis(2),
                at: TimeNs::from_millis(1),
            },
            ModelError::UnclosedIntervals { open: 3 },
            ModelError::MissingRoot,
            ModelError::MultipleRoots {
                at: TimeNs::from_millis(4),
            },
            ModelError::RootNotDispatch {
                found: IntervalKind::Paint,
            },
            ModelError::SampleOutOfRange {
                at: TimeNs::from_millis(9),
                start: TimeNs::ZERO,
                end: TimeNs::from_millis(5),
            },
            ModelError::EpisodeOrder {
                previous: TimeNs::from_millis(8),
                at: TimeNs::from_millis(7),
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
