//! Episodes — one handled user request.
//!
//! An episode is the time interval from the point a user request is
//! dispatched until the point the request is completed (paper §II). Each
//! episode carries the interval tree of the dispatching (GUI) thread, rooted
//! at a [`IntervalKind::Dispatch`] interval, plus all sample snapshots taken
//! while the episode was in flight.

use crate::error::ModelError;
use crate::ids::{EpisodeId, ThreadId};
use crate::interval::IntervalKind;
use crate::sample::SampleSnapshot;
use crate::time::{DurationNs, TimeNs};
use crate::tree::IntervalTree;

/// One handled user request with its interval tree and samples.
///
/// ```
/// use lagalyzer_model::prelude::*;
/// # fn main() -> Result<(), ModelError> {
/// let mut b = IntervalTreeBuilder::new();
/// b.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(0))?;
/// b.exit(TimeNs::from_millis(150))?;
/// let episode = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
///     .tree(b.finish()?)
///     .build()?;
/// assert!(episode.is_perceptible(DurationNs::PERCEPTIBLE_DEFAULT));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Episode {
    id: EpisodeId,
    thread: ThreadId,
    tree: IntervalTree,
    samples: Vec<SampleSnapshot>,
}

impl Episode {
    /// Assembles an episode directly from its parts, **without** the
    /// validation [`EpisodeBuilder::build`] performs (dispatch root,
    /// sorted in-window samples).
    ///
    /// Like [`IntervalTree::from_nodes_unchecked`], this exists so the
    /// `lagalyzer-check` semantic checker can represent invalid episodes
    /// in order to diagnose them; analyses assume builder-validated
    /// episodes.
    pub fn from_parts_unchecked(
        id: EpisodeId,
        thread: ThreadId,
        tree: IntervalTree,
        samples: Vec<SampleSnapshot>,
    ) -> Episode {
        Episode {
            id,
            thread,
            tree,
            samples,
        }
    }

    /// The episode's id (dispatch order within the session).
    pub fn id(&self) -> EpisodeId {
        self.id
    }

    /// The thread that dispatched the episode (the GUI thread in this
    /// paper's study; LagAlyzer supports multiple dispatch threads).
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The interval tree rooted at the dispatch interval.
    pub fn tree(&self) -> &IntervalTree {
        &self.tree
    }

    /// Sample snapshots taken during the episode, in time order.
    pub fn samples(&self) -> &[SampleSnapshot] {
        &self.samples
    }

    /// Episode start (dispatch start).
    pub fn start(&self) -> TimeNs {
        self.tree.root_interval().start
    }

    /// Episode end (dispatch end).
    pub fn end(&self) -> TimeNs {
        self.tree.root_interval().end
    }

    /// Episode duration — the lag a user would perceive.
    pub fn duration(&self) -> DurationNs {
        self.tree.root_interval().duration()
    }

    /// True if the episode's lag is at or above `threshold` (paper: 100 ms).
    pub fn is_perceptible(&self, threshold: DurationNs) -> bool {
        self.duration() >= threshold
    }

    /// True if the dispatch interval has no children — the paper excludes
    /// such structureless episodes from pattern statistics (#Eps, Descs,
    /// Depth columns of Table III).
    pub fn is_structureless(&self) -> bool {
        self.tree.children(self.tree.root()).is_empty()
    }
}

/// Builder assembling an [`Episode`] and validating its invariants.
#[derive(Clone, Debug)]
pub struct EpisodeBuilder {
    id: EpisodeId,
    thread: ThreadId,
    tree: Option<IntervalTree>,
    samples: Vec<SampleSnapshot>,
}

impl EpisodeBuilder {
    /// Starts building the episode with the given identity.
    pub fn new(id: EpisodeId, thread: ThreadId) -> Self {
        EpisodeBuilder {
            id,
            thread,
            tree: None,
            samples: Vec::new(),
        }
    }

    /// Sets the interval tree (must be rooted at a dispatch interval).
    pub fn tree(mut self, tree: IntervalTree) -> Self {
        self.tree = Some(tree);
        self
    }

    /// Appends a sample snapshot taken during the episode.
    pub fn sample(mut self, snapshot: SampleSnapshot) -> Self {
        self.samples.push(snapshot);
        self
    }

    /// Appends many sample snapshots.
    pub fn samples<I: IntoIterator<Item = SampleSnapshot>>(mut self, snapshots: I) -> Self {
        self.samples.extend(snapshots);
        self
    }

    /// Validates and builds the episode.
    ///
    /// # Errors
    ///
    /// Fails if no tree was provided, the tree's root is not a dispatch
    /// interval, or any sample falls outside the dispatch window.
    pub fn build(mut self) -> Result<Episode, ModelError> {
        let tree = self.tree.ok_or(ModelError::MissingRoot)?;
        let root = tree.root_interval();
        if root.kind != IntervalKind::Dispatch {
            return Err(ModelError::RootNotDispatch { found: root.kind });
        }
        let (start, end) = (root.start, root.end);
        self.samples.sort_by_key(|s| s.time);
        for s in &self.samples {
            // Samples may land exactly on the boundary instants.
            if s.time < start || s.time > end {
                return Err(ModelError::SampleOutOfRange {
                    at: s.time,
                    start,
                    end,
                });
            }
        }
        Ok(Episode {
            id: self.id,
            thread: self.thread,
            tree,
            samples: self.samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::sample::{SampleSnapshot, ThreadSample, ThreadState};
    use crate::tree::IntervalTreeBuilder;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn dispatch_tree(start_ms: u64, end_ms: u64) -> IntervalTree {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(start_ms)).unwrap();
        b.exit(ms(end_ms)).unwrap();
        b.finish().unwrap()
    }

    fn snap(at_ms: u64) -> SampleSnapshot {
        SampleSnapshot::new(
            ms(at_ms),
            vec![ThreadSample::new(
                ThreadId::from_raw(0),
                ThreadState::Runnable,
                vec![],
            )],
        )
    }

    #[test]
    fn basic_accessors() {
        let e = EpisodeBuilder::new(EpisodeId::from_raw(3), ThreadId::from_raw(0))
            .tree(dispatch_tree(10, 250))
            .sample(snap(100))
            .build()
            .unwrap();
        assert_eq!(e.id(), EpisodeId::from_raw(3));
        assert_eq!(e.thread(), ThreadId::from_raw(0));
        assert_eq!(e.start(), ms(10));
        assert_eq!(e.end(), ms(250));
        assert_eq!(e.duration(), DurationNs::from_millis(240));
        assert_eq!(e.samples().len(), 1);
    }

    #[test]
    fn perceptibility_threshold_is_inclusive() {
        let exactly = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(dispatch_tree(0, 100))
            .build()
            .unwrap();
        assert!(exactly.is_perceptible(DurationNs::PERCEPTIBLE_DEFAULT));
        let under = EpisodeBuilder::new(EpisodeId::from_raw(1), ThreadId::from_raw(0))
            .tree(dispatch_tree(0, 99))
            .build()
            .unwrap();
        assert!(!under.is_perceptible(DurationNs::PERCEPTIBLE_DEFAULT));
    }

    #[test]
    fn structureless_detection() {
        let bare = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(dispatch_tree(0, 50))
            .build()
            .unwrap();
        assert!(bare.is_structureless());

        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        b.leaf(IntervalKind::Listener, None, ms(1), ms(2)).unwrap();
        b.exit(ms(3)).unwrap();
        let rich = EpisodeBuilder::new(EpisodeId::from_raw(1), ThreadId::from_raw(0))
            .tree(b.finish().unwrap())
            .build()
            .unwrap();
        assert!(!rich.is_structureless());
    }

    #[test]
    fn root_must_be_dispatch() {
        let mut b = IntervalTreeBuilder::new();
        b.leaf(IntervalKind::Paint, None, ms(0), ms(1)).unwrap();
        let err = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(b.finish().unwrap())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::RootNotDispatch {
                found: IntervalKind::Paint
            }
        );
    }

    #[test]
    fn missing_tree_fails() {
        let err = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::MissingRoot);
    }

    #[test]
    fn out_of_range_sample_fails() {
        let err = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(dispatch_tree(10, 20))
            .sample(snap(25))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::SampleOutOfRange { .. }));
    }

    #[test]
    fn boundary_samples_allowed() {
        let e = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(dispatch_tree(10, 20))
            .sample(snap(10))
            .sample(snap(20))
            .build()
            .unwrap();
        assert_eq!(e.samples().len(), 2);
    }

    #[test]
    fn samples_sorted_by_time() {
        let e = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(dispatch_tree(0, 100))
            .samples([snap(50), snap(10), snap(90)])
            .build()
            .unwrap();
        let times: Vec<u64> = e.samples().iter().map(|s| s.time.as_millis()).collect();
        assert_eq!(times, vec![10, 50, 90]);
    }

    #[test]
    fn tree_access() {
        let e = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(dispatch_tree(0, 10))
            .build()
            .unwrap();
        assert_eq!(e.tree().root(), NodeId::from_raw(0));
    }
}
