//! Call-stack samples of all threads.
//!
//! The tracer periodically captures the call stacks of all threads together
//! with each thread's state (paper §II-A, last bullet). A capture of all
//! threads at one instant is a [`SampleSnapshot`]; each thread's entry is a
//! [`ThreadSample`]. Sampling is suppressed while a stop-the-world garbage
//! collection is in progress — the paper's Fig 1 discussion hinges on that
//! JVMTI behaviour, and the simulator reproduces it.

use std::fmt;

use crate::ids::ThreadId;
use crate::symbols::{CodeOrigin, MethodRef, OriginClassifier, SymbolTable};
use crate::time::TimeNs;

/// The scheduling state of a thread at sample time.
///
/// Mirrors the four states the paper's Fig 8 partitions GUI-thread time
/// into: blocked entering a contended monitor, waiting in `Object.wait()` /
/// `LockSupport.park()`, voluntarily sleeping, or runnable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ThreadState {
    /// Ready to run (or running).
    Runnable,
    /// Blocked trying to enter a contended monitor.
    Blocked,
    /// Waiting in `Object.wait()` or `LockSupport.park()`.
    Waiting,
    /// Voluntarily sleeping in `Thread.sleep()`.
    Sleeping,
}

impl ThreadState {
    /// All states, in Fig 8 stacking order (blocked, wait, sleep, runnable).
    pub const ALL: [ThreadState; 4] = [
        ThreadState::Blocked,
        ThreadState::Waiting,
        ThreadState::Sleeping,
        ThreadState::Runnable,
    ];

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            ThreadState::Runnable => "runnable",
            ThreadState::Blocked => "blocked",
            ThreadState::Waiting => "waiting",
            ThreadState::Sleeping => "sleeping",
        }
    }

    /// Stable single-byte tag for the binary trace codec.
    pub const fn tag(self) -> u8 {
        match self {
            ThreadState::Runnable => b'R',
            ThreadState::Blocked => b'B',
            ThreadState::Waiting => b'W',
            ThreadState::Sleeping => b'S',
        }
    }

    /// Parses a codec tag.
    pub const fn from_tag(tag: u8) -> Option<ThreadState> {
        match tag {
            b'R' => Some(ThreadState::Runnable),
            b'B' => Some(ThreadState::Blocked),
            b'W' => Some(ThreadState::Waiting),
            b'S' => Some(ThreadState::Sleeping),
            _ => None,
        }
    }
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One frame of a sampled call stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StackFrame {
    /// The method executing in this frame.
    pub method: MethodRef,
    /// Whether the frame was executing native (JNI) code.
    pub native: bool,
}

impl StackFrame {
    /// A Java (non-native) frame.
    pub fn java(method: MethodRef) -> Self {
        StackFrame {
            method,
            native: false,
        }
    }

    /// A native (JNI) frame.
    pub fn native(method: MethodRef) -> Self {
        StackFrame {
            method,
            native: true,
        }
    }
}

/// One thread's entry within a [`SampleSnapshot`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ThreadSample {
    /// The sampled thread.
    pub thread: ThreadId,
    /// The thread's scheduling state.
    pub state: ThreadState,
    /// The captured stack, innermost (top) frame first. May be empty when
    /// the sampler could not walk the stack.
    pub stack: Vec<StackFrame>,
}

impl ThreadSample {
    /// Creates a thread sample.
    pub fn new(thread: ThreadId, state: ThreadState, stack: Vec<StackFrame>) -> Self {
        ThreadSample {
            thread,
            state,
            stack,
        }
    }

    /// The innermost (executing) frame, if the stack is non-empty.
    pub fn top_frame(&self) -> Option<&StackFrame> {
        self.stack.first()
    }

    /// Classifies the executing frame as application or runtime-library
    /// code. Samples with empty stacks classify as library code — an empty
    /// stack means the thread was inside the VM itself.
    pub fn top_origin(&self, symbols: &SymbolTable, classifier: &OriginClassifier) -> CodeOrigin {
        match self.top_frame() {
            Some(frame) => classifier.classify(symbols, frame.method.class),
            None => CodeOrigin::RuntimeLibrary,
        }
    }
}

/// A capture of all threads at one instant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SampleSnapshot {
    /// Capture instant.
    pub time: TimeNs,
    /// One entry per live thread, in thread-id order.
    pub threads: Vec<ThreadSample>,
}

impl SampleSnapshot {
    /// Creates a snapshot; thread entries are sorted by thread id so that
    /// equality and codecs are canonical.
    pub fn new(time: TimeNs, mut threads: Vec<ThreadSample>) -> Self {
        threads.sort_by_key(|t| t.thread);
        SampleSnapshot { time, threads }
    }

    /// The entry for `thread`, if it was live at capture time.
    pub fn thread(&self, thread: ThreadId) -> Option<&ThreadSample> {
        self.threads.iter().find(|t| t.thread == thread)
    }

    /// Number of runnable threads in this snapshot — the paper's Fig 7
    /// concurrency measure counts these per sample.
    pub fn runnable_count(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.state == ThreadState::Runnable)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;

    fn snapshot_fixture(symbols: &mut SymbolTable) -> SampleSnapshot {
        let app = symbols.method("org.jmol.Render", "paintModel");
        let lib = symbols.method("javax.swing.JComponent", "paintComponent");
        SampleSnapshot::new(
            TimeNs::from_millis(50),
            vec![
                ThreadSample::new(
                    ThreadId::from_raw(1),
                    ThreadState::Runnable,
                    vec![StackFrame::java(lib)],
                ),
                ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Runnable,
                    vec![StackFrame::java(app), StackFrame::java(lib)],
                ),
                ThreadSample::new(ThreadId::from_raw(2), ThreadState::Waiting, vec![]),
            ],
        )
    }

    #[test]
    fn state_tags_round_trip() {
        for s in ThreadState::ALL {
            assert_eq!(ThreadState::from_tag(s.tag()), Some(s));
        }
        assert_eq!(ThreadState::from_tag(b'?'), None);
    }

    #[test]
    fn state_names() {
        assert_eq!(ThreadState::Runnable.to_string(), "runnable");
        assert_eq!(ThreadState::Blocked.name(), "blocked");
    }

    #[test]
    fn snapshot_sorts_threads() {
        let mut symbols = SymbolTable::new();
        let snap = snapshot_fixture(&mut symbols);
        let ids: Vec<u32> = snap.threads.iter().map(|t| t.thread.as_raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn runnable_count_matches_fig7_semantics() {
        let mut symbols = SymbolTable::new();
        let snap = snapshot_fixture(&mut symbols);
        assert_eq!(snap.runnable_count(), 2);
    }

    #[test]
    fn thread_lookup() {
        let mut symbols = SymbolTable::new();
        let snap = snapshot_fixture(&mut symbols);
        assert_eq!(
            snap.thread(ThreadId::from_raw(2)).unwrap().state,
            ThreadState::Waiting
        );
        assert!(snap.thread(ThreadId::from_raw(9)).is_none());
    }

    #[test]
    fn top_origin_classification() {
        let mut symbols = SymbolTable::new();
        let snap = snapshot_fixture(&mut symbols);
        let classifier = OriginClassifier::java_default();
        let gui = snap.thread(ThreadId::from_raw(0)).unwrap();
        assert_eq!(
            gui.top_origin(&symbols, &classifier),
            CodeOrigin::Application
        );
        let bg = snap.thread(ThreadId::from_raw(1)).unwrap();
        assert_eq!(
            bg.top_origin(&symbols, &classifier),
            CodeOrigin::RuntimeLibrary
        );
        // Empty stack counts as VM-internal, i.e. library code.
        let idle = snap.thread(ThreadId::from_raw(2)).unwrap();
        assert_eq!(
            idle.top_origin(&symbols, &classifier),
            CodeOrigin::RuntimeLibrary
        );
    }

    #[test]
    fn frame_constructors() {
        let mut symbols = SymbolTable::new();
        let m = symbols.method("a.B", "c");
        assert!(!StackFrame::java(m).native);
        assert!(StackFrame::native(m).native);
    }
}
