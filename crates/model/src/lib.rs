//! Core data model for latency traces of interactive applications.
//!
//! This crate defines the vocabulary shared by the whole LagAlyzer toolkit:
//! nanosecond [`time`] stamps, interned [`symbols`] for class and method
//! names, typed [`interval`]s, properly nested [`tree::IntervalTree`]s,
//! call-stack [`sample`]s with thread states, [`episode::Episode`]s (one per
//! handled user request) and whole-session [`session::SessionTrace`]s.
//!
//! The model mirrors the trace content produced by the LiLa listener-latency
//! profiler as described in the LagAlyzer paper (ISPASS 2010), §II-A:
//! listener notifications, graphics rendering, native calls,
//! background-thread event dispatches, garbage collections, and periodic
//! call-stack samples of all threads.
//!
//! # Example
//!
//! ```
//! use lagalyzer_model::prelude::*;
//!
//! # fn main() -> Result<(), lagalyzer_model::ModelError> {
//! let mut symbols = SymbolTable::new();
//! let paint = symbols.method("javax.swing.JFrame", "paint");
//!
//! let mut builder = IntervalTreeBuilder::new();
//! builder.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(0))?;
//! builder.enter(IntervalKind::Paint, Some(paint), TimeNs::from_millis(1))?;
//! builder.exit(TimeNs::from_millis(140))?;
//! builder.exit(TimeNs::from_millis(141))?;
//! let tree = builder.finish()?;
//!
//! assert_eq!(tree.root_interval().duration(), DurationNs::from_millis(141));
//! assert_eq!(tree.descendant_count(tree.root()), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod episode;
pub mod error;
pub mod ids;
pub mod interval;
pub mod lockgraph;
pub mod parallel;
pub mod sample;
pub mod session;
pub mod symbols;
pub mod time;
pub mod tree;
pub mod waitgraph;

pub use episode::{Episode, EpisodeBuilder};
pub use error::ModelError;
pub use ids::{EpisodeId, NodeId, SessionId, SymbolId, ThreadId};
pub use interval::{Interval, IntervalKind};
pub use lockgraph::{ContendedWait, HolderSight, LockGraph, WaitKind};
pub use sample::{SampleSnapshot, StackFrame, ThreadSample, ThreadState};
pub use session::{EpisodeFragment, GcEvent, SessionMeta, SessionTrace, SessionTraceBuilder};
pub use symbols::{CodeOrigin, MethodRef, OriginClassifier, SymbolTable};
pub use time::{DurationNs, TimeNs};
pub use tree::{IntervalTree, IntervalTreeBuilder, PreOrder};
pub use waitgraph::{HolderProfile, WaitGraph};

/// Convenient glob import for downstream users.
///
/// ```
/// use lagalyzer_model::prelude::*;
/// let t = TimeNs::from_millis(100);
/// assert_eq!(t.as_nanos(), 100_000_000);
/// ```
pub mod prelude {
    pub use crate::episode::{Episode, EpisodeBuilder};
    pub use crate::error::ModelError;
    pub use crate::ids::{EpisodeId, NodeId, SessionId, SymbolId, ThreadId};
    pub use crate::interval::{Interval, IntervalKind};
    pub use crate::lockgraph::{ContendedWait, HolderSight, LockGraph, WaitKind};
    pub use crate::sample::{SampleSnapshot, StackFrame, ThreadSample, ThreadState};
    pub use crate::session::{
        EpisodeFragment, GcEvent, SessionMeta, SessionTrace, SessionTraceBuilder,
    };
    pub use crate::symbols::{CodeOrigin, MethodRef, OriginClassifier, SymbolTable};
    pub use crate::time::{DurationNs, TimeNs};
    pub use crate::tree::{IntervalTree, IntervalTreeBuilder};
    pub use crate::waitgraph::{HolderProfile, WaitGraph};
}
