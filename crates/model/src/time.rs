//! Nanosecond-resolution virtual time.
//!
//! All traces use a virtual clock measured in nanoseconds since session
//! start. Two newtypes keep instants and durations apart at compile time
//! ([`TimeNs`] and [`DurationNs`]); arithmetic between them is provided via
//! the standard operator traits.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the session-local virtual clock, in nanoseconds since
/// session start.
///
/// ```
/// use lagalyzer_model::time::{TimeNs, DurationNs};
/// let t = TimeNs::from_millis(3) + DurationNs::from_micros(500);
/// assert_eq!(t.as_nanos(), 3_500_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeNs(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use lagalyzer_model::time::DurationNs;
/// let d = DurationNs::from_millis(100);
/// assert!(d >= DurationNs::PERCEPTIBLE_DEFAULT);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DurationNs(u64);

impl TimeNs {
    /// The session start instant.
    pub const ZERO: TimeNs = TimeNs(0);
    /// The maximum representable instant.
    pub const MAX: TimeNs = TimeNs(u64::MAX);

    /// Creates an instant from raw nanoseconds since session start.
    pub const fn from_nanos(ns: u64) -> Self {
        TimeNs(ns)
    }

    /// Creates an instant from microseconds since session start.
    pub const fn from_micros(us: u64) -> Self {
        TimeNs(us * 1_000)
    }

    /// Creates an instant from milliseconds since session start.
    pub const fn from_millis(ms: u64) -> Self {
        TimeNs(ms * 1_000_000)
    }

    /// Creates an instant from seconds since session start.
    pub const fn from_secs(s: u64) -> Self {
        TimeNs(s * 1_000_000_000)
    }

    /// Raw nanoseconds since session start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since session start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since session start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed span since `earlier`, saturating to zero if `earlier` is
    /// later than `self`.
    pub fn saturating_since(self, earlier: TimeNs) -> DurationNs {
        DurationNs(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.min(other.0))
    }
}

impl DurationNs {
    /// The zero-length span.
    pub const ZERO: DurationNs = DurationNs(0);
    /// Default perceptibility threshold used throughout the paper: 100 ms.
    pub const PERCEPTIBLE_DEFAULT: DurationNs = DurationNs(100_000_000);
    /// Default tracer-side filter threshold: episodes shorter than 3 ms are
    /// dropped by the tracing infrastructure and only counted.
    pub const TRACE_FILTER_DEFAULT: DurationNs = DurationNs(3_000_000);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        DurationNs(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        DurationNs(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        DurationNs(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        DurationNs(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: DurationNs) -> DurationNs {
        DurationNs(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, other: DurationNs) -> Option<DurationNs> {
        self.0.checked_add(other.0).map(DurationNs)
    }

    /// Returns the longer of two spans.
    pub fn max(self, other: DurationNs) -> DurationNs {
        DurationNs(self.0.max(other.0))
    }

    /// Returns the shorter of two spans.
    pub fn min(self, other: DurationNs) -> DurationNs {
        DurationNs(self.0.min(other.0))
    }

    /// The fraction `self / whole` as a float in `[0, 1]` for nested spans;
    /// returns 0 when `whole` is zero.
    pub fn fraction_of(self, whole: DurationNs) -> f64 {
        if whole.0 == 0 {
            0.0
        } else {
            self.0 as f64 / whole.0 as f64
        }
    }

    /// Multiplies the span by a non-negative float, rounding to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> DurationNs {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        DurationNs((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<DurationNs> for TimeNs {
    type Output = TimeNs;
    fn add(self, rhs: DurationNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign<DurationNs> for TimeNs {
    fn add_assign(&mut self, rhs: DurationNs) {
        self.0 += rhs.0;
    }
}

impl Sub<DurationNs> for TimeNs {
    type Output = TimeNs;
    fn sub(self, rhs: DurationNs) -> TimeNs {
        TimeNs(self.0 - rhs.0)
    }
}

impl Sub<TimeNs> for TimeNs {
    type Output = DurationNs;
    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: TimeNs) -> DurationNs {
        debug_assert!(rhs.0 <= self.0, "time went backwards: {rhs:?} > {self:?}");
        DurationNs(self.0 - rhs.0)
    }
}

impl Add for DurationNs {
    type Output = DurationNs;
    fn add(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0 + rhs.0)
    }
}

impl AddAssign for DurationNs {
    fn add_assign(&mut self, rhs: DurationNs) {
        self.0 += rhs.0;
    }
}

impl Sub for DurationNs {
    type Output = DurationNs;
    fn sub(self, rhs: DurationNs) -> DurationNs {
        debug_assert!(rhs.0 <= self.0, "negative duration: {self:?} - {rhs:?}");
        DurationNs(self.0 - rhs.0)
    }
}

impl SubAssign for DurationNs {
    fn sub_assign(&mut self, rhs: DurationNs) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for DurationNs {
    type Output = DurationNs;
    fn mul(self, rhs: u64) -> DurationNs {
        DurationNs(self.0 * rhs)
    }
}

impl Div<u64> for DurationNs {
    type Output = DurationNs;
    fn div(self, rhs: u64) -> DurationNs {
        DurationNs(self.0 / rhs)
    }
}

impl Sum for DurationNs {
    fn sum<I: Iterator<Item = DurationNs>>(iter: I) -> DurationNs {
        iter.fold(DurationNs::ZERO, Add::add)
    }
}

impl fmt::Debug for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeNs({})", self.0)
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for DurationNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DurationNs({})", self.0)
    }
}

impl fmt::Display for DurationNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.as_millis_f64();
        if ms >= 1000.0 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if ms >= 1.0 {
            write!(f, "{ms:.0}ms")
        } else {
            write!(f, "{:.0}us", self.0 as f64 / 1e3)
        }
    }
}

impl From<u64> for DurationNs {
    fn from(ns: u64) -> Self {
        DurationNs(ns)
    }
}

impl From<u64> for TimeNs {
    fn from(ns: u64) -> Self {
        TimeNs(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(TimeNs::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(TimeNs::from_secs(2).as_millis(), 2000);
        assert_eq!(DurationNs::from_micros(7).as_nanos(), 7_000);
        assert_eq!(DurationNs::from_secs(1).as_millis(), 1000);
    }

    #[test]
    fn instant_arithmetic() {
        let a = TimeNs::from_millis(10);
        let b = a + DurationNs::from_millis(5);
        assert_eq!(b - a, DurationNs::from_millis(5));
        assert_eq!(b - DurationNs::from_millis(15), TimeNs::ZERO);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = TimeNs::from_millis(1);
        let late = TimeNs::from_millis(9);
        assert_eq!(early.saturating_since(late), DurationNs::ZERO);
        assert_eq!(late.saturating_since(early), DurationNs::from_millis(8));
    }

    #[test]
    fn duration_fraction() {
        let part = DurationNs::from_millis(25);
        let whole = DurationNs::from_millis(100);
        assert!((part.fraction_of(whole) - 0.25).abs() < 1e-12);
        assert_eq!(part.fraction_of(DurationNs::ZERO), 0.0);
    }

    #[test]
    fn duration_scaling() {
        let d = DurationNs::from_millis(10);
        assert_eq!(d * 3, DurationNs::from_millis(30));
        assert_eq!(d / 2, DurationNs::from_millis(5));
        assert_eq!(d.mul_f64(1.5), DurationNs::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_factor_panics() {
        let _ = DurationNs::from_millis(1).mul_f64(-1.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: DurationNs = (1..=4).map(DurationNs::from_millis).sum();
        assert_eq!(total, DurationNs::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(DurationNs::from_millis(1705).to_string(), "1.71s");
        assert_eq!(DurationNs::from_millis(843).to_string(), "843ms");
        assert_eq!(DurationNs::from_micros(250).to_string(), "250us");
    }

    #[test]
    fn thresholds_match_paper() {
        assert_eq!(DurationNs::PERCEPTIBLE_DEFAULT.as_millis(), 100);
        assert_eq!(DurationNs::TRACE_FILTER_DEFAULT.as_millis(), 3);
    }

    #[test]
    fn min_max() {
        let a = DurationNs::from_millis(1);
        let b = DurationNs::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = TimeNs::from_millis(1);
        let y = TimeNs::from_millis(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
