//! The parallel sharded analysis pipeline.
//!
//! Every LagAlyzer analysis is a fold over episodes (or over whole
//! sessions) whose accumulators are exact — integer counts, integer
//! nanosecond sums, minima and maxima — and are normalized to floating
//! point exactly once at the end. That makes the fold splittable: shard
//! the input into contiguous index ranges, accumulate each shard on its
//! own worker, and merge the shard accumulators in shard order. Because
//! the merge is exact and the shards are contiguous and ascending, the
//! merged result is *byte-identical* to the serial one regardless of the
//! number of workers or shards.
//!
//! The worker pool is built on `std::thread::scope` and `std::sync::mpsc`
//! only, so the pipeline works without any external dependency. Shards are
//! claimed from an atomic counter, which load-balances uneven shards;
//! results are tagged with their shard index and re-ordered before they
//! are merged, which is what keeps the pipeline deterministic.
//!
//! The module lives in `lagalyzer-model` (the bottom of the crate graph)
//! so that both the trace codecs and the analyses can fan work out over
//! the same pool; `lagalyzer_core::parallel` re-exports it unchanged.
//!
//! ```
//! use lagalyzer_model::parallel::map_shards;
//!
//! let data: Vec<u64> = (0..10_000).collect();
//! let shard_sums = map_shards(data.len(), 4, |range| {
//!     data[range].iter().sum::<u64>()
//! });
//! let total: u64 = shard_sums.into_iter().sum();
//! assert_eq!(total, data.iter().sum());
//! ```

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Shards per worker: more shards than workers lets the atomic claim
/// counter balance uneven per-shard work without affecting the merged
/// result (the merge is exact, so shard granularity is invisible).
const SHARDS_PER_JOB: usize = 4;

/// The machine's available parallelism, falling back to 1 when it cannot
/// be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Resolves a user-requested job count: `None` or `Some(0)` mean "use the
/// available parallelism", anything else is taken literally.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    match requested {
        None | Some(0) => available_jobs(),
        Some(n) => n,
    }
}

/// The worker count a request for `jobs` actually gets: clamped to the
/// machine's available parallelism (never below 1).
///
/// Oversubscribing a CPU-bound fold is pure overhead — the shards are
/// claimed from a shared counter, so fewer workers simply claim more
/// shards each, and the merged result is identical either way. Clamping
/// here means `--jobs 8` on a 2-core box runs the 2-worker schedule
/// instead of thrashing 8 threads across 2 cores.
pub fn effective_jobs(jobs: usize) -> usize {
    jobs.clamp(1, available_jobs())
}

/// Splits `0..len` into at most `shards` contiguous ascending ranges of
/// near-equal size (the first `len % shards` ranges are one longer).
/// Returns fewer ranges when `len < shards` and none when `len == 0`.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// How many shards to cut `len` items into for `jobs` workers.
fn shard_count(len: usize, jobs: usize) -> usize {
    if jobs <= 1 {
        1
    } else {
        jobs.saturating_mul(SHARDS_PER_JOB).min(len.max(1))
    }
}

/// Runs `f` over contiguous ascending shards of `0..len` on a pool of at
/// most `jobs` worker threads and returns the shard results *in shard
/// order* (ascending by range start), ready for an in-order merge.
///
/// The worker count is clamped to the machine's available parallelism
/// (see [`effective_jobs`]); with one effective worker (or a single
/// shard) everything runs inline on the calling thread — the serial path
/// spawns nothing. An empty input yields an empty result vector.
pub fn map_shards<R, F>(len: usize, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    map_shards_init(len, jobs, || (), |(), range| f(range))
}

/// Like [`map_shards`], but each worker thread builds one persistent
/// state value with `init` and reuses it (`&mut`) across every shard it
/// claims.
///
/// This is how decode and analysis hot paths keep per-worker scratch —
/// reused builders, sample buffers, arenas — alive across work batches
/// instead of reallocating them per shard (or worse, per item): the shard
/// granularity exists purely for load balancing, so worker-lifetime state
/// is the natural place for anything reusable. The state never migrates
/// between threads and is dropped when the worker finishes.
///
/// Results are returned in shard order exactly like [`map_shards`]; with
/// one effective worker everything runs inline on one state value, so the
/// merged result is byte-identical regardless of `jobs`.
pub fn map_shards_init<S, R, I, F>(len: usize, jobs: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, Range<usize>) -> R + Sync,
{
    let jobs = effective_jobs(jobs);
    let ranges = shard_ranges(len, shard_count(len, jobs));
    if jobs <= 1 || ranges.len() <= 1 {
        let mut state = init();
        return ranges.into_iter().map(|r| f(&mut state, r)).collect();
    }
    let workers = jobs.min(ranges.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, ranges, init, f) = (&next, &ranges, &init, &f);
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(range) = ranges.get(i) else { break };
                    if tx.send((i, f(&mut state, range.clone()))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("every claimed shard sends exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_input() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(len, shards);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert!(ranges.len() <= shards.max(1));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
                    assert!(!w[1].is_empty());
                }
                let sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "near-equal shards, got {sizes:?}");
            }
        }
    }

    #[test]
    fn map_shards_preserves_shard_order() {
        for jobs in [1usize, 2, 3, 8] {
            let starts = map_shards(1000, jobs, |range| range.start);
            let mut sorted = starts.clone();
            sorted.sort_unstable();
            assert_eq!(starts, sorted, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_fold_matches_serial() {
        let data: Vec<u64> = (0..4096).map(|i| i * 37 % 101).collect();
        let serial: u64 = data.iter().sum();
        for jobs in [1usize, 2, 5, 16] {
            let total: u64 = map_shards(data.len(), jobs, |r| data[r].iter().sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(total, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_no_shards() {
        let out = map_shards(0, 8, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_input() {
        let out = map_shards(1, 8, |r| r.clone());
        assert_eq!(out, vec![0..1]);
    }

    #[test]
    fn effective_jobs_clamps_to_machine() {
        assert_eq!(effective_jobs(0), 1);
        assert_eq!(effective_jobs(1), 1);
        let avail = available_jobs();
        assert_eq!(effective_jobs(avail + 100), avail);
    }

    #[test]
    fn map_shards_init_reuses_worker_state() {
        // Each worker counts the shards it handled in its own state; the
        // per-shard results must still arrive in shard order and cover
        // every index exactly once.
        for jobs in [1usize, 2, 8] {
            let results = map_shards_init(
                1000,
                jobs,
                || 0usize,
                |claimed, range| {
                    *claimed += 1;
                    (*claimed, range)
                },
            );
            let mut seen = 0;
            for (claimed, range) in &results {
                assert!(*claimed >= 1);
                assert_eq!(range.start, seen, "jobs={jobs}: shard order broken");
                seen = range.end;
            }
            assert_eq!(seen, 1000, "jobs={jobs}: shards must cover the input");
            // Worker-lifetime state outlives individual shards: the total
            // of per-worker claim counters equals the shard count, and on
            // the inline path one state value sees every shard.
            if effective_jobs(jobs) == 1 {
                let last = results.last().unwrap();
                assert_eq!(last.0, results.len());
            }
        }
    }

    #[test]
    fn resolve_jobs_defaults() {
        assert!(resolve_jobs(None) >= 1);
        assert_eq!(resolve_jobs(Some(0)), available_jobs());
        assert_eq!(resolve_jobs(Some(3)), 3);
    }
}
