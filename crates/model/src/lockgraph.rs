//! Session-wide lock-graph construction from Blocked/Waiting samples.
//!
//! [`crate::waitgraph::WaitGraph`] answers "who kept running while this
//! episode's dispatch thread waited?" — one episode, one waiter. The lock
//! graph asks the structural question across a whole session: *which
//! locks* were contended, *who* waited on them, and *what was already
//! held* when the wait began. Nodes are inferred lock identities — the
//! hottest top frame of a thread's Blocked/Waiting samples, selected with
//! the same deterministic rule as [`crate::waitgraph::HolderProfile`]
//! (max sample count, ties broken by lower raw symbol ids) — and edges
//! are *held-while-acquiring* relations: the hottest enclosing frame
//! observed directly below the acquisition frame while the thread was
//! blocked.
//!
//! The identities are heuristic. The LiLa tracer records no monitor
//! addresses or ownership events, so a lock is named by the method whose
//! `synchronized` entry the waiter was parked at, and the held lock by
//! the caller frame enclosing that entry. Both degrade with the sampling
//! rate: short waits may be missed entirely, frames inlined by the JIT
//! collapse distinct locks into one identity, and a caller frame that is
//! not itself synchronized still contributes a (harmless, acyclic) edge.
//! Downstream rules therefore treat edge evidence as probabilistic and
//! gate findings on sample counts; see DESIGN.md for the limits.
//!
//! Construction is shardable: [`LockGraph::build_with_jobs`] fans
//! per-episode extraction over [`crate::parallel::map_shards`] and merges
//! the shard graphs in shard order, so the result is byte-identical to
//! the serial build for any worker count.

use std::collections::BTreeMap;

use crate::episode::Episode;
use crate::ids::{EpisodeId, ThreadId};
use crate::interval::IntervalKind;
use crate::parallel::map_shards;
use crate::sample::ThreadState;
use crate::symbols::MethodRef;

/// Elementary cycles longer than this are not enumerated; inversion
/// cycles in practice involve two or three locks.
const MAX_CYCLE_LEN: usize = 8;

/// Upper bound on enumerated cycles, a backstop against pathological
/// dense graphs (e.g. heavily damaged salvaged traces).
const MAX_CYCLES: usize = 64;

/// Which flavor of wait a [`ContendedWait`] records.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum WaitKind {
    /// Blocked entering a contended monitor ([`ThreadState::Blocked`]).
    Monitor,
    /// Parked on a condition ([`ThreadState::Waiting`]) — the monitor is
    /// released while waiting, so condition waits never contribute
    /// held-while-acquiring edges.
    Condition,
}

impl WaitKind {
    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            WaitKind::Monitor => "monitor",
            WaitKind::Condition => "condition",
        }
    }
}

/// The strongest concurrently-runnable peer observed during a wait — the
/// inferred holder of the contended lock, selected like
/// [`crate::waitgraph::HolderProfile`] (most samples, ties broken by
/// lower thread id).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HolderSight {
    /// The candidate holder thread.
    pub thread: ThreadId,
    /// Snapshots in which it was runnable while the waiter waited.
    pub samples: u64,
    /// Its hottest top frame during those snapshots, with count.
    pub frame: Option<(MethodRef, u64)>,
}

/// One thread's contended wait within one episode, reduced to its
/// inferred lock identity plus the supporting sample evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContendedWait {
    /// The episode the wait was observed in.
    pub episode: EpisodeId,
    /// The waiting thread.
    pub thread: ThreadId,
    /// Monitor (blocked) or condition (waiting/parked) wait.
    pub kind: WaitKind,
    /// Inferred lock identity: the hottest top frame of the wait samples.
    pub lock: MethodRef,
    /// Samples whose top frame was `lock`.
    pub lock_samples: u64,
    /// All samples of this `(thread, kind)` wait that carried a stack.
    pub samples: u64,
    /// The hottest enclosing frame directly below the acquisition frame
    /// (monitor waits only): the lock inferred to be *held* while
    /// acquiring, with its sample count. `None` when every sampled stack
    /// was a single frame.
    pub held: Option<(MethodRef, u64)>,
    /// The strongest runnable peer over the wait samples.
    pub holder: Option<HolderSight>,
    /// Longest run of consecutive snapshots spent in this wait on `lock`.
    pub longest_streak: u64,
    /// Distinct runnable peers observed during that longest run, sorted
    /// by thread id — more than one means the lock changed hands while
    /// this waiter kept waiting (holder churn).
    pub streak_holders: Vec<ThreadId>,
    /// Stop-the-world GC intervals of the episode that overlap the
    /// longest streak's sampled window (sampling is suppressed *during*
    /// GC, so overlap shows up as a gap spanned by the streak, not as
    /// extra samples).
    pub gc_overlaps: u64,
}

/// Accumulated evidence for one inferred lock (a graph node).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Samples of threads blocked entering this lock.
    pub monitor_samples: u64,
    /// Samples of threads in condition waits attributed to this lock.
    pub condition_samples: u64,
    /// Threads observed waiting on it (sorted, deduplicated).
    pub waiters: Vec<ThreadId>,
    /// Episodes contributing evidence (sorted, deduplicated).
    pub episodes: Vec<EpisodeId>,
}

impl LockStats {
    /// Total wait samples attributed to this lock.
    pub fn samples(&self) -> u64 {
        self.monitor_samples + self.condition_samples
    }
}

/// Accumulated evidence for one held-while-acquiring edge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Samples supporting the edge (held frame observed below the
    /// acquisition frame).
    pub samples: u64,
    /// Threads observed holding-while-acquiring (sorted, deduplicated).
    pub threads: Vec<ThreadId>,
    /// Episodes contributing evidence (sorted, deduplicated).
    pub episodes: Vec<EpisodeId>,
}

/// The session-wide lock graph: inferred locks, held-while-acquiring
/// edges, and the underlying per-episode contended waits.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockGraph {
    nodes: BTreeMap<MethodRef, LockStats>,
    held_edges: BTreeMap<(MethodRef, MethodRef), EdgeStats>,
    waits: Vec<ContendedWait>,
}

impl LockGraph {
    /// An empty graph.
    pub fn new() -> LockGraph {
        LockGraph::default()
    }

    /// Builds the graph serially over `episodes`.
    pub fn build(episodes: &[Episode]) -> LockGraph {
        LockGraph::build_with_jobs(episodes, 1)
    }

    /// Builds the graph by sharding per-episode extraction over `jobs`
    /// workers; byte-identical to [`LockGraph::build`] for any count.
    pub fn build_with_jobs(episodes: &[Episode], jobs: usize) -> LockGraph {
        let shards = map_shards(episodes.len(), jobs, |range| {
            let mut g = LockGraph::new();
            for episode in &episodes[range] {
                g.add_episode(episode);
            }
            g
        });
        let mut out = LockGraph::new();
        for shard in shards {
            out.merge(shard);
        }
        out
    }

    /// Extracts `episode`'s contended waits and folds them in.
    pub fn add_episode(&mut self, episode: &Episode) {
        for wait in extract_waits(episode) {
            self.add_wait(wait);
        }
    }

    /// Folds one contended wait into the graph.
    pub fn add_wait(&mut self, wait: ContendedWait) {
        let node = self.nodes.entry(wait.lock).or_default();
        match wait.kind {
            WaitKind::Monitor => node.monitor_samples += wait.samples,
            WaitKind::Condition => node.condition_samples += wait.samples,
        }
        insert_sorted(&mut node.waiters, wait.thread);
        insert_sorted(&mut node.episodes, wait.episode);
        if wait.kind == WaitKind::Monitor {
            if let Some((held, held_samples)) = wait.held {
                let edge = self.held_edges.entry((held, wait.lock)).or_default();
                edge.samples += held_samples;
                insert_sorted(&mut edge.threads, wait.thread);
                insert_sorted(&mut edge.episodes, wait.episode);
            }
        }
        self.waits.push(wait);
    }

    /// Merges `other` into `self` (waits are appended in `other`'s
    /// order, so shard-ordered merges preserve episode order).
    pub fn merge(&mut self, other: LockGraph) {
        for (lock, stats) in other.nodes {
            let node = self.nodes.entry(lock).or_default();
            node.monitor_samples += stats.monitor_samples;
            node.condition_samples += stats.condition_samples;
            merge_sorted(&mut node.waiters, &stats.waiters);
            merge_sorted(&mut node.episodes, &stats.episodes);
        }
        for (key, stats) in other.held_edges {
            let edge = self.held_edges.entry(key).or_default();
            edge.samples += stats.samples;
            merge_sorted(&mut edge.threads, &stats.threads);
            merge_sorted(&mut edge.episodes, &stats.episodes);
        }
        self.waits.extend(other.waits);
    }

    /// A copy of the graph with every lock identity rewritten through
    /// `f` — the corpus merge path, where per-session [`MethodRef`]s are
    /// re-interned into the corpus-wide symbol table before per-session
    /// graphs are [`LockGraph::merge`]d.
    pub fn remap(&self, mut f: impl FnMut(MethodRef) -> MethodRef) -> LockGraph {
        let mut out = LockGraph::new();
        for wait in &self.waits {
            let mut wait = wait.clone();
            wait.lock = f(wait.lock);
            wait.held = wait.held.map(|(m, n)| (f(m), n));
            if let Some(holder) = &mut wait.holder {
                holder.frame = holder.frame.map(|(m, n)| (f(m), n));
            }
            out.add_wait(wait);
        }
        out
    }

    /// The inferred locks and their accumulated evidence, in
    /// deterministic [`MethodRef`] order.
    pub fn nodes(&self) -> impl Iterator<Item = (&MethodRef, &LockStats)> {
        self.nodes.iter()
    }

    /// Evidence for one lock, if it was ever waited on.
    pub fn node(&self, lock: MethodRef) -> Option<&LockStats> {
        self.nodes.get(&lock)
    }

    /// Held-while-acquiring edges `(held, acquired)` in deterministic
    /// order.
    pub fn held_edges(&self) -> impl Iterator<Item = (&(MethodRef, MethodRef), &EdgeStats)> {
        self.held_edges.iter()
    }

    /// Evidence for one directed edge.
    pub fn held_edge(&self, held: MethodRef, acquired: MethodRef) -> Option<&EdgeStats> {
        self.held_edges.get(&(held, acquired))
    }

    /// Every contended wait folded into the graph, in insertion
    /// (episode) order.
    pub fn waits(&self) -> &[ContendedWait] {
        &self.waits
    }

    /// Number of inferred locks.
    pub fn lock_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of held-while-acquiring edges.
    pub fn edge_count(&self) -> usize {
        self.held_edges.len()
    }

    /// Total wait samples across all locks.
    pub fn total_wait_samples(&self) -> u64 {
        self.nodes.values().map(LockStats::samples).sum()
    }

    /// True when no contended waits were observed.
    pub fn is_empty(&self) -> bool {
        self.waits.is_empty()
    }

    /// Self edges (`held == acquired`): a thread blocked entering a lock
    /// it already appears to be inside. Surfaced separately from
    /// [`LockGraph::cycles`], which skips them.
    pub fn self_edges(&self) -> impl Iterator<Item = (&MethodRef, &EdgeStats)> {
        self.held_edges
            .iter()
            .filter(|((held, acquired), _)| held == acquired)
            .map(|((held, _), stats)| (held, stats))
    }

    /// Enumerates elementary cycles of the held-while-acquiring relation
    /// — lock-order inversions. Each cycle is listed once, rotated so its
    /// smallest lock comes first, in deterministic order; self edges are
    /// excluded (see [`LockGraph::self_edges`]). Length is capped at
    /// `MAX_CYCLE_LEN` locks and the total at `MAX_CYCLES`.
    pub fn cycles(&self) -> Vec<Vec<MethodRef>> {
        let mut adj: BTreeMap<MethodRef, Vec<MethodRef>> = BTreeMap::new();
        for (held, acquired) in self.held_edges.keys() {
            if held != acquired {
                // BTreeMap keys iterate sorted, so each adjacency list is
                // built already sorted by acquired lock.
                adj.entry(*held).or_default().push(*acquired);
            }
        }
        let mut out = Vec::new();
        for &start in adj.keys().collect::<Vec<_>>() {
            if out.len() >= MAX_CYCLES {
                break;
            }
            let mut path = vec![start];
            dfs_cycles(&adj, start, start, &mut path, &mut out);
        }
        out.truncate(MAX_CYCLES);
        out
    }
}

/// Depth-first enumeration of elementary cycles whose *minimum* lock is
/// `start`: only locks ordered after `start` may join the path, so every
/// cycle is produced exactly once, canonically rotated.
fn dfs_cycles(
    adj: &BTreeMap<MethodRef, Vec<MethodRef>>,
    start: MethodRef,
    at: MethodRef,
    path: &mut Vec<MethodRef>,
    out: &mut Vec<Vec<MethodRef>>,
) {
    let Some(nexts) = adj.get(&at) else { return };
    for &next in nexts {
        if out.len() >= MAX_CYCLES {
            return;
        }
        if next == start {
            if path.len() >= 2 {
                out.push(path.clone());
            }
            continue;
        }
        if next < start || path.len() >= MAX_CYCLE_LEN || path.contains(&next) {
            continue;
        }
        path.push(next);
        dfs_cycles(adj, start, next, path, out);
        path.pop();
    }
}

/// One candidate holder seen during a wait: the runnable peer thread,
/// how many samples it appeared in, and a frame histogram of its tops.
type HolderTally = (ThreadId, u64, Vec<(MethodRef, u64)>);

/// Running tallies for one `(thread, kind)` wait while extraction scans
/// the episode's snapshots.
struct WaitTally {
    thread: ThreadId,
    kind: WaitKind,
    samples: u64,
    tops: Vec<(MethodRef, u64)>,
    callers: Vec<(MethodRef, u64)>,
    holders: Vec<HolderTally>,
}

/// Extracts every contended wait of `episode` — all threads, not just the
/// dispatch thread. Samples with empty stacks carry no lock identity and
/// are skipped (a sampling limit, like
/// [`crate::waitgraph::WaitGraph`]'s frame evidence). Waits are returned
/// sorted by `(thread, kind)`.
pub fn extract_waits(episode: &Episode) -> Vec<ContendedWait> {
    let mut tallies: Vec<WaitTally> = Vec::new();
    for snap in episode.samples() {
        for ts in &snap.threads {
            let kind = match ts.state {
                ThreadState::Blocked => WaitKind::Monitor,
                ThreadState::Waiting => WaitKind::Condition,
                _ => continue,
            };
            let Some(top) = ts.top_frame() else { continue };
            let tally = match tallies
                .iter_mut()
                .find(|t| t.thread == ts.thread && t.kind == kind)
            {
                Some(t) => t,
                None => {
                    tallies.push(WaitTally {
                        thread: ts.thread,
                        kind,
                        samples: 0,
                        tops: Vec::new(),
                        callers: Vec::new(),
                        holders: Vec::new(),
                    });
                    tallies.last_mut().expect("just pushed")
                }
            };
            tally.samples += 1;
            bump(&mut tally.tops, top.method);
            if kind == WaitKind::Monitor {
                if let Some(caller) = ts.stack.get(1) {
                    bump(&mut tally.callers, caller.method);
                }
            }
            for peer in &snap.threads {
                if peer.thread == ts.thread || peer.state != ThreadState::Runnable {
                    continue;
                }
                let holder = match tally.holders.iter_mut().find(|(t, _, _)| *t == peer.thread) {
                    Some(h) => h,
                    None => {
                        tally.holders.push((peer.thread, 0, Vec::new()));
                        tally.holders.last_mut().expect("just pushed")
                    }
                };
                holder.1 += 1;
                if let Some(frame) = peer.top_frame() {
                    bump(&mut holder.2, frame.method);
                }
            }
        }
    }
    tallies.sort_by(|a, b| a.thread.cmp(&b.thread).then(a.kind.cmp(&b.kind)));

    let gc: Vec<_> = episode
        .tree()
        .nodes()
        .iter()
        .filter(|n| n.interval.kind == IntervalKind::Gc)
        .map(|n| (n.interval.start, n.interval.end))
        .collect();

    tallies
        .into_iter()
        .map(|tally| {
            let (lock, lock_samples) = hottest(&tally.tops).expect("tallies require a top frame");
            let held = if tally.kind == WaitKind::Monitor {
                hottest(&tally.callers)
            } else {
                None
            };
            let holder = tally
                .holders
                .iter()
                // Most samples first; ties go to the lower thread id, the
                // same rule HolderProfile sorting applies.
                .max_by(|(at, an, _), (bt, bn, _)| an.cmp(bn).then(bt.cmp(at)))
                .map(|(thread, samples, frames)| HolderSight {
                    thread: *thread,
                    samples: *samples,
                    frame: hottest(frames),
                });
            let (longest_streak, streak_holders, window) =
                streak_of(episode, tally.thread, tally.kind, lock);
            let gc_overlaps = window.map_or(0, |(first, last)| {
                gc.iter()
                    .filter(|(start, end)| *start <= last && *end >= first)
                    .count() as u64
            });
            ContendedWait {
                episode: episode.id(),
                thread: tally.thread,
                kind: tally.kind,
                lock,
                lock_samples,
                samples: tally.samples,
                held,
                holder,
                longest_streak,
                streak_holders,
                gc_overlaps,
            }
        })
        .collect()
}

/// The hottest frame of a tally: max count, ties broken by lower raw
/// `(class, method)` symbol ids — the exact `HolderProfile` selection,
/// so identities are order-independent.
fn hottest(frames: &[(MethodRef, u64)]) -> Option<(MethodRef, u64)> {
    frames
        .iter()
        .max_by(|(am, an), (bm, bn)| {
            an.cmp(bn)
                .then(bm.class.cmp(&am.class))
                .then(bm.method.cmp(&am.method))
        })
        .copied()
}

/// Longest run of consecutive snapshots in which `thread` was in `kind`
/// with `lock` on top, the distinct runnable peers seen during that run
/// (sorted), and the first/last sample times of that run.
fn streak_of(
    episode: &Episode,
    thread: ThreadId,
    kind: WaitKind,
    lock: MethodRef,
) -> (
    u64,
    Vec<ThreadId>,
    Option<(crate::time::TimeNs, crate::time::TimeNs)>,
) {
    let wanted = match kind {
        WaitKind::Monitor => ThreadState::Blocked,
        WaitKind::Condition => ThreadState::Waiting,
    };
    let mut best = 0u64;
    let mut best_holders: Vec<ThreadId> = Vec::new();
    let mut best_window: Option<(crate::time::TimeNs, crate::time::TimeNs)> = None;
    let mut run = 0u64;
    let mut run_holders: Vec<ThreadId> = Vec::new();
    let mut run_start = crate::time::TimeNs::ZERO;
    for snap in episode.samples() {
        let in_wait = snap
            .thread(thread)
            .is_some_and(|ts| ts.state == wanted && ts.top_frame().map(|f| f.method) == Some(lock));
        if in_wait {
            if run == 0 {
                run_start = snap.time;
            }
            run += 1;
            for peer in &snap.threads {
                if peer.thread != thread && peer.state == ThreadState::Runnable {
                    insert_sorted(&mut run_holders, peer.thread);
                }
            }
            if run > best {
                best = run;
                best_holders.clone_from(&run_holders);
                best_window = Some((run_start, snap.time));
            }
        } else {
            run = 0;
            run_holders.clear();
        }
    }
    (best, best_holders, best_window)
}

fn bump(frames: &mut Vec<(MethodRef, u64)>, method: MethodRef) {
    match frames.iter_mut().find(|(m, _)| *m == method) {
        Some((_, n)) => *n += 1,
        None => frames.push((method, 1)),
    }
}

fn insert_sorted<T: Ord + Copy>(v: &mut Vec<T>, item: T) {
    if let Err(pos) = v.binary_search(&item) {
        v.insert(pos, item);
    }
}

fn merge_sorted<T: Ord + Copy>(v: &mut Vec<T>, other: &[T]) {
    for &item in other {
        insert_sorted(v, item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::EpisodeBuilder;
    use crate::ids::EpisodeId;
    use crate::interval::IntervalKind;
    use crate::sample::{SampleSnapshot, StackFrame, ThreadSample};
    use crate::symbols::SymbolTable;
    use crate::time::TimeNs;
    use crate::tree::IntervalTreeBuilder;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn tid(v: u32) -> ThreadId {
        ThreadId::from_raw(v)
    }

    fn episode_with(id: u32, samples: Vec<SampleSnapshot>) -> Episode {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.exit(ms(500)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(id), tid(0))
            .tree(t.finish().unwrap())
            .samples(samples)
            .build()
            .unwrap()
    }

    fn two_locks(symbols: &mut SymbolTable) -> (MethodRef, MethodRef) {
        (
            symbols.method("com.app.sync.OrderA", "enter"),
            symbols.method("com.app.sync.OrderB", "enter"),
        )
    }

    #[test]
    fn no_waits_means_empty_graph() {
        let e = episode_with(
            0,
            vec![SampleSnapshot::new(
                ms(10),
                vec![ThreadSample::new(tid(0), ThreadState::Runnable, vec![])],
            )],
        );
        let g = LockGraph::build(std::slice::from_ref(&e));
        assert!(g.is_empty());
        assert_eq!(g.lock_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn blocked_with_empty_stack_is_skipped() {
        let e = episode_with(
            0,
            vec![SampleSnapshot::new(
                ms(10),
                vec![ThreadSample::new(tid(0), ThreadState::Blocked, vec![])],
            )],
        );
        assert!(extract_waits(&e).is_empty());
    }

    #[test]
    fn abba_inversion_is_a_cycle_with_both_threads() {
        let mut symbols = SymbolTable::new();
        let (a, b) = two_locks(&mut symbols);
        let mut samples = Vec::new();
        for i in 0..4u64 {
            samples.push(SampleSnapshot::new(
                ms(10 + 10 * i),
                vec![
                    // GUI holds A, acquires B; worker holds B, acquires A.
                    ThreadSample::new(
                        tid(0),
                        ThreadState::Blocked,
                        vec![StackFrame::java(b), StackFrame::java(a)],
                    ),
                    ThreadSample::new(
                        tid(7),
                        ThreadState::Blocked,
                        vec![StackFrame::java(a), StackFrame::java(b)],
                    ),
                ],
            ));
        }
        let e = episode_with(3, samples);
        let g = LockGraph::build(std::slice::from_ref(&e));
        assert_eq!(g.lock_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.held_edge(a, b).unwrap().samples, 4);
        assert_eq!(g.held_edge(a, b).unwrap().threads, vec![tid(0)]);
        assert_eq!(g.held_edge(b, a).unwrap().threads, vec![tid(7)]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec![a, b]);
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let mut symbols = SymbolTable::new();
        let (a, b) = two_locks(&mut symbols);
        let samples = vec![SampleSnapshot::new(
            ms(10),
            vec![
                ThreadSample::new(
                    tid(0),
                    ThreadState::Blocked,
                    vec![StackFrame::java(b), StackFrame::java(a)],
                ),
                ThreadSample::new(
                    tid(7),
                    ThreadState::Blocked,
                    vec![StackFrame::java(b), StackFrame::java(a)],
                ),
            ],
        )];
        let g = LockGraph::build(&[episode_with(0, samples)]);
        assert_eq!(g.edge_count(), 1);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn lock_identity_uses_holder_profile_tie_break() {
        let mut symbols = SymbolTable::new();
        let (a, b) = two_locks(&mut symbols);
        // One sample on each of two locks: equal counts, the lower
        // (class, method) raw ids — interned first — must win.
        let snap = |t: u64, lock: MethodRef| {
            SampleSnapshot::new(
                ms(t),
                vec![ThreadSample::new(
                    tid(0),
                    ThreadState::Blocked,
                    vec![StackFrame::java(lock)],
                )],
            )
        };
        let e = episode_with(0, vec![snap(10, b), snap(20, a)]);
        let waits = extract_waits(&e);
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].lock, a);
        assert_eq!(waits[0].lock_samples, 1);
        assert_eq!(waits[0].samples, 2);
    }

    #[test]
    fn condition_waits_make_nodes_but_no_edges() {
        let mut symbols = SymbolTable::new();
        let idle = symbols.method("java.lang.Object", "wait");
        let outer = symbols.method("com.app.Worker", "run");
        let samples = vec![SampleSnapshot::new(
            ms(10),
            vec![ThreadSample::new(
                tid(4),
                ThreadState::Waiting,
                vec![StackFrame::java(idle), StackFrame::java(outer)],
            )],
        )];
        let g = LockGraph::build(&[episode_with(0, samples)]);
        assert_eq!(g.lock_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node(idle).unwrap().condition_samples, 1);
        assert_eq!(g.node(idle).unwrap().monitor_samples, 0);
        assert_eq!(g.waits()[0].kind, WaitKind::Condition);
        assert_eq!(g.waits()[0].held, None);
    }

    #[test]
    fn self_edge_is_not_a_cycle() {
        let mut symbols = SymbolTable::new();
        let a = symbols.method("com.app.sync.Reentrant", "enter");
        let samples = vec![SampleSnapshot::new(
            ms(10),
            vec![ThreadSample::new(
                tid(0),
                ThreadState::Blocked,
                vec![StackFrame::java(a), StackFrame::java(a)],
            )],
        )];
        let g = LockGraph::build(&[episode_with(0, samples)]);
        assert!(g.cycles().is_empty());
        let selfs: Vec<_> = g.self_edges().collect();
        assert_eq!(selfs.len(), 1);
        assert_eq!(*selfs[0].0, a);
    }

    #[test]
    fn streak_and_holder_churn() {
        let mut symbols = SymbolTable::new();
        let (a, _) = two_locks(&mut symbols);
        let work = symbols.method("com.app.Worker", "spin");
        let mut samples = Vec::new();
        // Six consecutive blocked snapshots; the runnable peer rotates
        // through three worker threads (holder churn), then the waiter
        // runs once, then blocks twice more (shorter second streak).
        for i in 0..6u64 {
            samples.push(SampleSnapshot::new(
                ms(10 + 10 * i),
                vec![
                    ThreadSample::new(tid(0), ThreadState::Blocked, vec![StackFrame::java(a)]),
                    ThreadSample::new(
                        tid(7 + (i % 3) as u32),
                        ThreadState::Runnable,
                        vec![StackFrame::java(work)],
                    ),
                ],
            ));
        }
        samples.push(SampleSnapshot::new(
            ms(70),
            vec![ThreadSample::new(tid(0), ThreadState::Runnable, vec![])],
        ));
        for i in 0..2u64 {
            samples.push(SampleSnapshot::new(
                ms(80 + 10 * i),
                vec![ThreadSample::new(
                    tid(0),
                    ThreadState::Blocked,
                    vec![StackFrame::java(a)],
                )],
            ));
        }
        let waits = extract_waits(&episode_with(0, samples));
        assert_eq!(waits.len(), 1);
        let w = &waits[0];
        assert_eq!(w.samples, 8);
        assert_eq!(w.longest_streak, 6);
        assert_eq!(w.streak_holders, vec![tid(7), tid(8), tid(9)]);
        // The holder with the most samples wins; ties break low.
        assert_eq!(w.holder.as_ref().unwrap().thread, tid(7));
        assert_eq!(w.holder.as_ref().unwrap().samples, 2);
    }

    #[test]
    fn gc_overlap_counts_spanned_collections() {
        let mut symbols = SymbolTable::new();
        let (a, _) = two_locks(&mut symbols);
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.enter(IntervalKind::Gc, None, ms(30)).unwrap();
        t.exit(ms(60)).unwrap();
        t.exit(ms(500)).unwrap();
        // Samples at 10 ms and 80 ms straddle the 30–60 ms collection;
        // sampling inside it is suppressed, so the overlap shows as a
        // spanned interval, not as extra samples.
        let samples = vec![
            SampleSnapshot::new(
                ms(10),
                vec![ThreadSample::new(
                    tid(0),
                    ThreadState::Blocked,
                    vec![StackFrame::java(a)],
                )],
            ),
            SampleSnapshot::new(
                ms(80),
                vec![ThreadSample::new(
                    tid(0),
                    ThreadState::Blocked,
                    vec![StackFrame::java(a)],
                )],
            ),
        ];
        let e = EpisodeBuilder::new(EpisodeId::from_raw(0), tid(0))
            .tree(t.finish().unwrap())
            .samples(samples)
            .build()
            .unwrap();
        let waits = extract_waits(&e);
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].gc_overlaps, 1);
        // A streak that never spans the collection window sees none.
        assert_eq!(waits[0].longest_streak, 2);
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        let mut symbols = SymbolTable::new();
        let (a, b) = two_locks(&mut symbols);
        let episodes: Vec<Episode> = (0..17u32)
            .map(|i| {
                let (top, caller) = if i % 3 == 0 { (b, a) } else { (a, b) };
                episode_with(
                    i,
                    vec![SampleSnapshot::new(
                        ms(10),
                        vec![
                            ThreadSample::new(
                                tid(i % 4),
                                ThreadState::Blocked,
                                vec![StackFrame::java(top), StackFrame::java(caller)],
                            ),
                            ThreadSample::new(tid(11), ThreadState::Runnable, vec![]),
                        ],
                    )],
                )
            })
            .collect();
        let serial = LockGraph::build(&episodes);
        for jobs in [2, 3, 5, 8] {
            assert_eq!(LockGraph::build_with_jobs(&episodes, jobs), serial);
        }
        assert_eq!(serial.waits().len(), 17);
        assert_eq!(serial.cycles().len(), 1);
    }

    #[test]
    fn remap_reinterns_identities() {
        let mut local = SymbolTable::new();
        let (a, b) = two_locks(&mut local);
        let samples = vec![SampleSnapshot::new(
            ms(10),
            vec![ThreadSample::new(
                tid(0),
                ThreadState::Blocked,
                vec![StackFrame::java(b), StackFrame::java(a)],
            )],
        )];
        let g = LockGraph::build(&[episode_with(0, samples)]);
        let mut global = SymbolTable::new();
        global.intern("something.else.First");
        let remapped = g.remap(|m| MethodRef {
            class: global.intern(local.resolve(m.class).unwrap()),
            method: global.intern(local.resolve(m.method).unwrap()),
        });
        assert_eq!(remapped.lock_count(), 1);
        let (lock, _) = remapped.nodes().next().unwrap();
        assert_eq!(global.render(*lock), "com.app.sync.OrderB.enter");
        assert_eq!(remapped.edge_count(), 1);
        assert_eq!(remapped.total_wait_samples(), g.total_wait_samples());
    }
}
