//! Cross-thread wait-edge extraction from stack samples.
//!
//! When the dispatch thread of an episode is sampled in
//! [`ThreadState::Blocked`] or [`ThreadState::Waiting`], some other thread
//! is usually the reason: the one holding the contended monitor or the one
//! that has not yet signalled the condition. Following DepGraph-style
//! dependency analysis, each such snapshot contributes one *wait edge* from
//! the waiter to every thread that was concurrently runnable — over many
//! samples the true culprit accumulates the most edges, because it keeps
//! running while the waiter keeps waiting.
//!
//! The edges are built purely from the sampled states already in the trace;
//! there are no syscall-level or monitor-ownership edges (the LiLa tracer
//! records neither), so attribution is probabilistic and degrades with the
//! sampling rate. See DESIGN.md for the limits of this model.
//!
//! An episode whose samples contain only `Waiting` (or `Blocked`) snapshots
//! with *no* concurrently-runnable thread is **not** dropped from
//! attribution: extraction still counts its wait samples
//! ([`WaitGraph::wait_samples`] is non-zero) and produces a zero-edge graph
//! ([`WaitGraph::is_empty`] is true, [`WaitGraph::top_holder`] is `None`).
//! Callers must distinguish "no wait evidence at all" (`wait_samples() ==
//! 0`) from "waited, but no candidate culprit was ever runnable" — the
//! latter typically means the culprit lives outside the sampled process
//! (disk, network, the OS scheduler).

use crate::episode::Episode;
use crate::ids::ThreadId;
use crate::sample::ThreadState;
use crate::symbols::MethodRef;

/// Evidence against one candidate culprit thread: how often it was seen
/// runnable while the waiter waited, and what it was executing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HolderProfile {
    /// The candidate culprit thread.
    pub thread: ThreadId,
    /// Snapshots in which this thread was runnable while the waiter was
    /// blocked or waiting.
    pub samples: u64,
    /// The thread's most frequently sampled top frame during those
    /// snapshots, with its count. `None` when every such sample had an
    /// empty stack.
    pub top_frame: Option<(MethodRef, u64)>,
}

/// Wait edges from one episode's dispatch thread to candidate culprits.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WaitGraph {
    /// Snapshots where the waiter was blocked on a contended monitor.
    pub blocked_samples: u64,
    /// Snapshots where the waiter was waiting/parked.
    pub waiting_samples: u64,
    /// Per-candidate evidence, sorted by descending sample count, ties
    /// broken by lower thread id (so extraction is deterministic).
    holders: Vec<HolderProfile>,
}

/// Running tally for one candidate thread while edges accumulate.
struct HolderTally {
    thread: ThreadId,
    samples: u64,
    frames: Vec<(MethodRef, u64)>,
}

impl WaitGraph {
    /// Builds the wait graph for `episode`, treating its dispatch thread
    /// as the waiter. Episodes without blocked/waiting samples produce an
    /// empty graph.
    pub fn extract(episode: &Episode) -> WaitGraph {
        let waiter = episode.thread();
        let mut blocked = 0u64;
        let mut waiting = 0u64;
        let mut tallies: Vec<HolderTally> = Vec::new();
        for snap in episode.samples() {
            let state = match snap.thread(waiter) {
                Some(ts) => ts.state,
                None => continue,
            };
            match state {
                ThreadState::Blocked => blocked += 1,
                ThreadState::Waiting => waiting += 1,
                _ => continue,
            }
            for ts in &snap.threads {
                if ts.thread == waiter || ts.state != ThreadState::Runnable {
                    continue;
                }
                let tally = match tallies.iter_mut().find(|t| t.thread == ts.thread) {
                    Some(t) => t,
                    None => {
                        tallies.push(HolderTally {
                            thread: ts.thread,
                            samples: 0,
                            frames: Vec::new(),
                        });
                        tallies.last_mut().expect("just pushed")
                    }
                };
                tally.samples += 1;
                if let Some(frame) = ts.top_frame() {
                    match tally.frames.iter_mut().find(|(m, _)| *m == frame.method) {
                        Some((_, n)) => *n += 1,
                        None => tally.frames.push((frame.method, 1)),
                    }
                }
            }
        }
        let mut holders: Vec<HolderProfile> = tallies
            .into_iter()
            .map(|t| HolderProfile {
                thread: t.thread,
                samples: t.samples,
                top_frame: t
                    .frames
                    .into_iter()
                    // Max count; ties broken by lower (class, method) raw
                    // symbol ids so the winner is order-independent.
                    .max_by(|(am, an), (bm, bn)| {
                        an.cmp(bn)
                            .then(bm.class.cmp(&am.class))
                            .then(bm.method.cmp(&am.method))
                    }),
            })
            .collect();
        holders.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.thread.cmp(&b.thread)));
        WaitGraph {
            blocked_samples: blocked,
            waiting_samples: waiting,
            holders,
        }
    }

    /// Total snapshots in which the waiter was blocked or waiting.
    pub fn wait_samples(&self) -> u64 {
        self.blocked_samples + self.waiting_samples
    }

    /// All candidate culprits, strongest evidence first.
    pub fn holders(&self) -> &[HolderProfile] {
        &self.holders
    }

    /// The strongest candidate culprit, if any thread was ever runnable
    /// while the waiter waited.
    pub fn top_holder(&self) -> Option<&HolderProfile> {
        self.holders.first()
    }

    /// True when no wait edges were observed.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::EpisodeBuilder;
    use crate::ids::EpisodeId;
    use crate::interval::IntervalKind;
    use crate::sample::{SampleSnapshot, StackFrame, ThreadSample};
    use crate::symbols::SymbolTable;
    use crate::time::TimeNs;
    use crate::tree::IntervalTreeBuilder;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn tid(v: u32) -> ThreadId {
        ThreadId::from_raw(v)
    }

    fn episode_with(samples: Vec<SampleSnapshot>) -> Episode {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.exit(ms(500)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(0), tid(0))
            .tree(t.finish().unwrap())
            .samples(samples)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_without_wait_samples() {
        let e = episode_with(vec![SampleSnapshot::new(
            ms(10),
            vec![ThreadSample::new(tid(0), ThreadState::Runnable, vec![])],
        )]);
        let g = WaitGraph::extract(&e);
        assert!(g.is_empty());
        assert_eq!(g.wait_samples(), 0);
        assert!(g.top_holder().is_none());
    }

    #[test]
    fn culprit_accumulates_most_edges() {
        let mut symbols = SymbolTable::new();
        let rebuild = symbols.method("com.app.CacheLock", "rebuild");
        let idle = symbols.method("java.lang.Object", "wait");
        let mut samples = Vec::new();
        for i in 0..6u64 {
            // Thread 7 runs the contended rebuild in every wait snapshot;
            // thread 9 is runnable only once.
            let mut threads = vec![
                ThreadSample::new(tid(0), ThreadState::Blocked, vec![]),
                ThreadSample::new(
                    tid(7),
                    ThreadState::Runnable,
                    vec![StackFrame::java(rebuild)],
                ),
            ];
            let nine_state = if i == 2 {
                ThreadState::Runnable
            } else {
                ThreadState::Waiting
            };
            threads.push(ThreadSample::new(
                tid(9),
                nine_state,
                vec![StackFrame::java(idle)],
            ));
            samples.push(SampleSnapshot::new(ms(10 + 10 * i), threads));
        }
        let g = WaitGraph::extract(&episode_with(samples));
        assert_eq!(g.blocked_samples, 6);
        assert_eq!(g.waiting_samples, 0);
        let top = g.top_holder().unwrap();
        assert_eq!(top.thread, tid(7));
        assert_eq!(top.samples, 6);
        assert_eq!(top.top_frame, Some((rebuild, 6)));
        assert_eq!(g.holders().len(), 2);
        assert_eq!(g.holders()[1].thread, tid(9));
        assert_eq!(g.holders()[1].samples, 1);
    }

    #[test]
    fn tie_breaks_by_lower_thread_id() {
        let snap = |t: u64| {
            SampleSnapshot::new(
                ms(t),
                vec![
                    ThreadSample::new(tid(0), ThreadState::Waiting, vec![]),
                    ThreadSample::new(tid(5), ThreadState::Runnable, vec![]),
                    ThreadSample::new(tid(3), ThreadState::Runnable, vec![]),
                ],
            )
        };
        let g = WaitGraph::extract(&episode_with(vec![snap(10), snap(20)]));
        assert_eq!(g.waiting_samples, 2);
        assert_eq!(g.top_holder().unwrap().thread, tid(3));
        // Empty stacks yield no frame evidence.
        assert_eq!(g.top_holder().unwrap().top_frame, None);
    }

    #[test]
    fn waiting_only_with_no_runnable_peer_yields_zero_edge_graph() {
        // Every snapshot has the waiter in Waiting and every peer idle:
        // the episode must not be dropped — its wait samples are counted
        // — but the graph carries no edges and names no culprit.
        let samples: Vec<SampleSnapshot> = (0..4u64)
            .map(|i| {
                SampleSnapshot::new(
                    ms(10 + 10 * i),
                    vec![
                        ThreadSample::new(tid(0), ThreadState::Waiting, vec![]),
                        ThreadSample::new(tid(7), ThreadState::Waiting, vec![]),
                        ThreadSample::new(tid(9), ThreadState::Sleeping, vec![]),
                    ],
                )
            })
            .collect();
        let g = WaitGraph::extract(&episode_with(samples));
        assert_eq!(g.waiting_samples, 4);
        assert_eq!(g.blocked_samples, 0);
        assert_eq!(g.wait_samples(), 4, "wait evidence must not be dropped");
        assert!(g.is_empty(), "no runnable peer means zero edges");
        assert!(g.top_holder().is_none());
        assert!(g.holders().is_empty());
    }

    #[test]
    fn waiter_absent_from_snapshot_is_skipped() {
        let e = episode_with(vec![SampleSnapshot::new(
            ms(10),
            vec![ThreadSample::new(tid(4), ThreadState::Runnable, vec![])],
        )]);
        assert!(WaitGraph::extract(&e).is_empty());
    }
}
