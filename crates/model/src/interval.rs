//! Typed intervals — the paper's Table I.
//!
//! | Name     | Description                                              |
//! |----------|----------------------------------------------------------|
//! | Dispatch | start to end of a given episode                          |
//! | Listener | a listener notification call                             |
//! | Paint    | a graphics rendering operation                           |
//! | Native   | a JNI native call                                        |
//! | Async    | the handling of an event posted in a background thread   |
//! | GC       | a garbage collection                                     |

use std::fmt;

use crate::symbols::MethodRef;
use crate::time::{DurationNs, TimeNs};

/// The type of an interval (the paper's Table I).
///
/// All kinds except [`IntervalKind::Gc`] correspond to method calls and
/// returns, which is what guarantees proper nesting per thread; GC intervals
/// nest too because collections are stop-the-world at safe points.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum IntervalKind {
    /// Start to end of a given episode.
    Dispatch,
    /// A listener notification call (handles user input).
    Listener,
    /// A graphics rendering operation (produces output).
    Paint,
    /// A JNI native call.
    Native,
    /// The handling of an event posted by a background thread.
    Async,
    /// A garbage collection (stop-the-world; copied into every thread).
    Gc,
}

impl IntervalKind {
    /// All kinds, in Table I order.
    pub const ALL: [IntervalKind; 6] = [
        IntervalKind::Dispatch,
        IntervalKind::Listener,
        IntervalKind::Paint,
        IntervalKind::Native,
        IntervalKind::Async,
        IntervalKind::Gc,
    ];

    /// Short display name as used in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            IntervalKind::Dispatch => "Dispatch",
            IntervalKind::Listener => "Listener",
            IntervalKind::Paint => "Paint",
            IntervalKind::Native => "Native",
            IntervalKind::Async => "Async",
            IntervalKind::Gc => "GC",
        }
    }

    /// Stable single-byte tag used by the binary trace codec.
    pub const fn tag(self) -> u8 {
        match self {
            IntervalKind::Dispatch => b'D',
            IntervalKind::Listener => b'L',
            IntervalKind::Paint => b'P',
            IntervalKind::Native => b'N',
            IntervalKind::Async => b'A',
            IntervalKind::Gc => b'G',
        }
    }

    /// Parses a codec tag back into a kind.
    pub const fn from_tag(tag: u8) -> Option<IntervalKind> {
        match tag {
            b'D' => Some(IntervalKind::Dispatch),
            b'L' => Some(IntervalKind::Listener),
            b'P' => Some(IntervalKind::Paint),
            b'N' => Some(IntervalKind::Native),
            b'A' => Some(IntervalKind::Async),
            b'G' => Some(IntervalKind::Gc),
            _ => None,
        }
    }

    /// True for the kinds that determine an episode's trigger in the
    /// paper's Fig 5 pre-order scan (listener, paint, async).
    pub const fn is_trigger_kind(self) -> bool {
        matches!(
            self,
            IntervalKind::Listener | IntervalKind::Paint | IntervalKind::Async
        )
    }
}

impl fmt::Display for IntervalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One interval: a kind, optional symbolic information, and a time range.
///
/// ```
/// use lagalyzer_model::prelude::*;
/// let i = Interval::new(IntervalKind::Gc, None, TimeNs::from_millis(10), TimeNs::from_millis(14));
/// assert_eq!(i.duration(), DurationNs::from_millis(4));
/// assert!(i.contains(TimeNs::from_millis(12)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Interval {
    /// The interval's type.
    pub kind: IntervalKind,
    /// Symbolic information: e.g. the class and method of a listener call.
    /// `None` for GC intervals and bare dispatches.
    pub symbol: Option<MethodRef>,
    /// Start instant (inclusive).
    pub start: TimeNs,
    /// End instant (exclusive).
    pub end: TimeNs,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(kind: IntervalKind, symbol: Option<MethodRef>, start: TimeNs, end: TimeNs) -> Self {
        assert!(
            end >= start,
            "interval ends ({end}) before it starts ({start})"
        );
        Interval {
            kind,
            symbol,
            start,
            end,
        }
    }

    /// The interval's length.
    pub fn duration(&self) -> DurationNs {
        self.end - self.start
    }

    /// True if `t` lies within `[start, end)`.
    pub fn contains(&self, t: TimeNs) -> bool {
        self.start <= t && t < self.end
    }

    /// True if `other` lies entirely within this interval.
    pub fn encloses(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// True if the two intervals share any instant.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} .. {}]", self.kind, self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for kind in IntervalKind::ALL {
            assert_eq!(IntervalKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(IntervalKind::from_tag(b'X'), None);
    }

    #[test]
    fn names_match_paper_table1() {
        let names: Vec<&str> = IntervalKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["Dispatch", "Listener", "Paint", "Native", "Async", "GC"]
        );
    }

    #[test]
    fn trigger_kinds() {
        assert!(IntervalKind::Listener.is_trigger_kind());
        assert!(IntervalKind::Paint.is_trigger_kind());
        assert!(IntervalKind::Async.is_trigger_kind());
        assert!(!IntervalKind::Dispatch.is_trigger_kind());
        assert!(!IntervalKind::Native.is_trigger_kind());
        assert!(!IntervalKind::Gc.is_trigger_kind());
    }

    #[test]
    fn interval_geometry() {
        let outer = Interval::new(
            IntervalKind::Dispatch,
            None,
            TimeNs::from_millis(0),
            TimeNs::from_millis(100),
        );
        let inner = Interval::new(
            IntervalKind::Paint,
            None,
            TimeNs::from_millis(10),
            TimeNs::from_millis(90),
        );
        let disjoint = Interval::new(
            IntervalKind::Gc,
            None,
            TimeNs::from_millis(200),
            TimeNs::from_millis(210),
        );
        assert!(outer.encloses(&inner));
        assert!(!inner.encloses(&outer));
        assert!(outer.overlaps(&inner));
        assert!(!outer.overlaps(&disjoint));
        assert!(outer.contains(TimeNs::from_millis(0)));
        assert!(
            !outer.contains(TimeNs::from_millis(100)),
            "end is exclusive"
        );
    }

    #[test]
    fn zero_length_interval_is_allowed() {
        let i = Interval::new(
            IntervalKind::Native,
            None,
            TimeNs::from_millis(5),
            TimeNs::from_millis(5),
        );
        assert!(i.duration().is_zero());
        assert!(!i.contains(TimeNs::from_millis(5)));
    }

    #[test]
    #[should_panic(expected = "ends")]
    fn inverted_interval_panics() {
        let _ = Interval::new(
            IntervalKind::Paint,
            None,
            TimeNs::from_millis(2),
            TimeNs::from_millis(1),
        );
    }

    #[test]
    fn display_formats() {
        let i = Interval::new(
            IntervalKind::Paint,
            None,
            TimeNs::ZERO,
            TimeNs::from_millis(1),
        );
        assert_eq!(i.to_string(), "Paint [0.000s .. 0.001s]");
        assert_eq!(IntervalKind::Gc.to_string(), "GC");
    }
}
