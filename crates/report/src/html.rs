//! Self-contained HTML study report.
//!
//! The original LagAlyzer is an interactive Swing tool; the closest
//! offline equivalent is a single HTML page embedding every figure
//! (inline SVG keeps it dependency- and network-free) plus the statistics
//! table — something a team can attach to a bug report or archive with a
//! CI run.

use std::fmt::Write as _;

use crate::figures::{self, Figure};
use crate::study::Study;
use crate::table3;

/// Renders the full study as one self-contained HTML document.
pub fn render(study: &Study) -> String {
    let mut figs: Vec<Figure> = vec![
        figures::fig3(study),
        figures::fig4(study),
        figures::fig5(study, false),
        figures::fig5(study, true),
    ];
    for scope in [false, true] {
        let (samples, intervals) = figures::fig6(study, scope);
        figs.push(samples);
        figs.push(intervals);
    }
    figs.push(figures::fig7(study, false));
    figs.push(figures::fig7(study, true));
    figs.push(figures::fig8(study, false));
    figs.push(figures::fig8(study, true));

    let mut out = String::new();
    out.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>LagAlyzer study report</title>\
         <style>\
         body{font-family:sans-serif;max-width:1000px;margin:2em auto;color:#222}\
         pre{background:#f6f6f6;padding:1em;overflow-x:auto;font-size:12px}\
         figure{margin:2em 0}figcaption{font-size:13px;color:#555;margin-top:4px}\
         h1,h2{border-bottom:1px solid #ddd;padding-bottom:4px}\
         </style></head><body>\n",
    );
    let _ = write!(
        out,
        "<h1>LagAlyzer study report</h1>\
         <p>{} applications &times; {} sessions. Perceptibility threshold 100&nbsp;ms; \
         tracer filter 3&nbsp;ms.</p>",
        study.apps.len(),
        study.sessions_per_app
    );
    out.push_str("<h2>Overall statistics (Table III)</h2>\n<pre>");
    out.push_str(&escape_html(&table3::render(study)));
    out.push_str("</pre>\n");
    for fig in &figs {
        let _ = writeln!(
            out,
            "<figure id=\"{id}\">{svg}<figcaption>{id}</figcaption></figure>",
            id = fig.id,
            svg = fig.svg
        );
    }
    out.push_str("</body></html>\n");
    out
}

fn escape_html(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_sim::apps;

    #[test]
    fn report_is_self_contained_html() {
        let study = Study::run(&[apps::crossword_sage()], 1, 3);
        let html = render(&study);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert!(html.contains("CrosswordSage"));
        // All 12 figures embedded as inline SVG.
        assert_eq!(html.matches("<figure").count(), 12);
        assert_eq!(html.matches("<svg").count(), 12);
        // No external resources are fetched (the SVG xmlns URI is just a
        // namespace identifier, not a reference).
        assert!(!html.contains("<img"));
        assert!(!html.contains("<script"));
        assert!(!html.contains("<link"));
    }

    #[test]
    fn table_is_escaped() {
        let study = Study::run(&[apps::crossword_sage()], 1, 3);
        let html = render(&study);
        // The table's ">= 3ms" column header must be escaped inside <pre>.
        assert!(html.contains("&gt;= 3ms"));
    }
}
