//! Running the characterization study: simulate, analyze, aggregate.

use lagalyzer_core::aggregate::{
    mean_causes, mean_concurrency, mean_coverage_curves, mean_locations, sum_occurrences,
    sum_triggers, AppAggregate, AveragedStats,
};
use lagalyzer_core::causes::CauseStats;
use lagalyzer_core::concurrency::concurrency_stats;
use lagalyzer_core::location::LocationStats;
use lagalyzer_core::occurrence::OccurrenceBreakdown;
use lagalyzer_core::session::{AnalysisConfig, AnalysisSession};
use lagalyzer_core::stats::SessionStats;
use lagalyzer_core::trigger::TriggerBreakdown;
use lagalyzer_model::OriginClassifier;
use lagalyzer_sim::profile::AppProfile;
use lagalyzer_sim::runner::simulate_session;

/// Analysis results for one application.
#[derive(Clone, Debug)]
pub struct AppResult {
    /// The profile the sessions came from.
    pub profile: AppProfile,
    /// Averaged/summed analysis results.
    pub aggregate: AppAggregate,
}

/// The complete characterization study.
#[derive(Clone, Debug)]
pub struct Study {
    /// Per-application results in suite order.
    pub apps: Vec<AppResult>,
    /// Sessions simulated per application.
    pub sessions_per_app: u32,
}

impl Study {
    /// Simulates `sessions_per_app` sessions for every profile, runs all
    /// analyses, and aggregates per application (the paper uses four
    /// sessions per application).
    pub fn run(profiles: &[AppProfile], sessions_per_app: u32, seed: u64) -> Study {
        let classifier = OriginClassifier::java_default();
        let apps = profiles
            .iter()
            .map(|profile| {
                let sessions: Vec<AnalysisSession> = (0..sessions_per_app)
                    .map(|i| {
                        AnalysisSession::new(
                            simulate_session(profile, i, seed),
                            AnalysisConfig::default(),
                        )
                    })
                    .collect();
                AppResult {
                    profile: profile.clone(),
                    aggregate: aggregate_sessions(&profile.name, &sessions, &classifier),
                }
            })
            .collect();
        Study {
            apps,
            sessions_per_app,
        }
    }

    /// The across-application mean of the averaged Table III rows (the
    /// paper's "Mean" row).
    pub fn mean_stats(&self) -> AveragedStats {
        let rows: Vec<AveragedStats> = self.apps.iter().map(|a| a.aggregate.stats).collect();
        mean_averaged(&rows)
    }
}

/// Aggregates per-session analysis outputs for one application.
pub fn aggregate_sessions(
    name: &str,
    sessions: &[AnalysisSession],
    classifier: &OriginClassifier,
) -> AppAggregate {
    let rows: Vec<SessionStats> = sessions.iter().map(SessionStats::compute).collect();
    let pattern_sets: Vec<_> = sessions.iter().map(|s| s.mine_patterns()).collect();
    AppAggregate {
        name: name.to_owned(),
        sessions: sessions.len(),
        stats: AveragedStats::over(&rows),
        trigger_all: sum_triggers(
            &sessions
                .iter()
                .map(TriggerBreakdown::of_all)
                .collect::<Vec<_>>(),
        ),
        trigger_perceptible: sum_triggers(
            &sessions
                .iter()
                .map(TriggerBreakdown::of_perceptible)
                .collect::<Vec<_>>(),
        ),
        occurrence: sum_occurrences(
            &pattern_sets
                .iter()
                .map(OccurrenceBreakdown::of)
                .collect::<Vec<_>>(),
        ),
        location_all: mean_locations(
            &sessions
                .iter()
                .map(|s| LocationStats::of_all(s, classifier))
                .collect::<Vec<_>>(),
        ),
        location_perceptible: mean_locations(
            &sessions
                .iter()
                .map(|s| LocationStats::of_perceptible(s, classifier))
                .collect::<Vec<_>>(),
        ),
        causes_all: mean_causes(
            &sessions
                .iter()
                .map(CauseStats::of_all)
                .collect::<Vec<_>>(),
        ),
        causes_perceptible: mean_causes(
            &sessions
                .iter()
                .map(CauseStats::of_perceptible)
                .collect::<Vec<_>>(),
        ),
        concurrency: mean_concurrency(
            &sessions.iter().map(concurrency_stats).collect::<Vec<_>>(),
        ),
        coverage_curve: mean_coverage_curves(
            &pattern_sets
                .iter()
                .map(|p| p.cumulative_coverage())
                .collect::<Vec<_>>(),
        ),
    }
}

/// Averages averaged rows once more (for the "Mean" row of Table III).
fn mean_averaged(rows: &[AveragedStats]) -> AveragedStats {
    let n = rows.len().max(1) as f64;
    let mut out = AveragedStats::default();
    for r in rows {
        out.e2e_secs += r.e2e_secs;
        out.in_episode_fraction += r.in_episode_fraction;
        out.short_count += r.short_count;
        out.traced_count += r.traced_count;
        out.perceptible_count += r.perceptible_count;
        out.long_per_minute += r.long_per_minute;
        out.distinct_patterns += r.distinct_patterns;
        out.episodes_in_patterns += r.episodes_in_patterns;
        out.singleton_fraction += r.singleton_fraction;
        out.mean_tree_size += r.mean_tree_size;
        out.mean_tree_depth += r.mean_tree_depth;
    }
    out.e2e_secs /= n;
    out.in_episode_fraction /= n;
    out.short_count /= n;
    out.traced_count /= n;
    out.perceptible_count /= n;
    out.long_per_minute /= n;
    out.distinct_patterns /= n;
    out.episodes_in_patterns /= n;
    out.singleton_fraction /= n;
    out.mean_tree_size /= n;
    out.mean_tree_depth /= n;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_sim::apps;

    #[test]
    fn study_runs_and_aggregates() {
        let study = Study::run(&[apps::crossword_sage()], 2, 5);
        assert_eq!(study.apps.len(), 1);
        let app = &study.apps[0];
        assert_eq!(app.aggregate.sessions, 2);
        assert!(app.aggregate.stats.traced_count > 500.0);
        assert!(app.aggregate.trigger_all.total() > 0);
        assert!(app.aggregate.occurrence.total() > 0);
        assert!(!app.aggregate.coverage_curve.is_empty());
    }

    #[test]
    fn mean_stats_average_across_apps() {
        let study = Study::run(&[apps::crossword_sage(), apps::jedit()], 1, 5);
        let mean = study.mean_stats();
        let a = study.apps[0].aggregate.stats.traced_count;
        let b = study.apps[1].aggregate.stats.traced_count;
        assert!((mean.traced_count - (a + b) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn study_is_deterministic() {
        let a = Study::run(&[apps::jfree_chart()], 1, 9);
        let b = Study::run(&[apps::jfree_chart()], 1, 9);
        assert_eq!(
            a.apps[0].aggregate.stats.perceptible_count,
            b.apps[0].aggregate.stats.perceptible_count
        );
        assert_eq!(a.apps[0].aggregate.trigger_perceptible, b.apps[0].aggregate.trigger_perceptible);
    }
}
