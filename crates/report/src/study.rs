//! Running the characterization study: simulate, analyze, aggregate.

use lagalyzer_core::aggregate::{
    mean_causes, mean_concurrency, mean_coverage_curves, mean_locations, sum_occurrences,
    sum_triggers, AppAggregate, AveragedStats, CharacterizationTable,
};
use lagalyzer_core::occurrence::OccurrenceBreakdown;
use lagalyzer_core::parallel::map_shards;
use lagalyzer_core::patterns::PatternSet;
use lagalyzer_core::session::{AnalysisConfig, AnalysisSession};
use lagalyzer_core::stats::SessionStats;
use lagalyzer_model::OriginClassifier;
use lagalyzer_sim::profile::AppProfile;
use lagalyzer_sim::runner::simulate_session;

/// Analysis results for one application.
#[derive(Clone, Debug)]
pub struct AppResult {
    /// The profile the sessions came from.
    pub profile: AppProfile,
    /// Averaged/summed analysis results.
    pub aggregate: AppAggregate,
}

/// The complete characterization study.
#[derive(Clone, Debug)]
pub struct Study {
    /// Per-application results in suite order.
    pub apps: Vec<AppResult>,
    /// Sessions simulated per application.
    pub sessions_per_app: u32,
}

impl Study {
    /// Simulates `sessions_per_app` sessions for every profile, runs all
    /// analyses, and aggregates per application (the paper uses four
    /// sessions per application).
    pub fn run(profiles: &[AppProfile], sessions_per_app: u32, seed: u64) -> Study {
        Study::run_with_jobs(profiles, sessions_per_app, seed, 1)
    }

    /// Like [`Study::run`], but simulates and analyzes each application's
    /// sessions on up to `jobs` worker threads. Simulation is seeded per
    /// `(profile, session index, seed)` and per-session results are
    /// reassembled in session order before aggregation, so the study is
    /// byte-identical to the serial one for any `jobs`.
    pub fn run_with_jobs(
        profiles: &[AppProfile],
        sessions_per_app: u32,
        seed: u64,
        jobs: usize,
    ) -> Study {
        let classifier = OriginClassifier::java_default();
        let apps = profiles
            .iter()
            .map(|profile| {
                let sessions: Vec<AnalysisSession> =
                    map_shards(sessions_per_app as usize, jobs, |range| {
                        range
                            .map(|i| {
                                AnalysisSession::new(
                                    simulate_session(profile, i as u32, seed),
                                    AnalysisConfig::default(),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect();
                AppResult {
                    profile: profile.clone(),
                    aggregate: aggregate_sessions_with_jobs(
                        &profile.name,
                        &sessions,
                        &classifier,
                        jobs,
                    ),
                }
            })
            .collect();
        Study {
            apps,
            sessions_per_app,
        }
    }

    /// The across-application mean of the averaged Table III rows (the
    /// paper's "Mean" row).
    pub fn mean_stats(&self) -> AveragedStats {
        let rows: Vec<AveragedStats> = self.apps.iter().map(|a| a.aggregate.stats).collect();
        mean_averaged(&rows)
    }
}

/// Everything the aggregation needs from one session, computed in a
/// single sharded pass over the sessions.
struct SessionBundle {
    row: SessionStats,
    patterns: PatternSet,
    characterization: CharacterizationTable,
}

/// Aggregates per-session analysis outputs for one application.
pub fn aggregate_sessions(
    name: &str,
    sessions: &[AnalysisSession],
    classifier: &OriginClassifier,
) -> AppAggregate {
    aggregate_sessions_with_jobs(name, sessions, classifier, 1)
}

/// Like [`aggregate_sessions`], but analyzes the sessions on up to `jobs`
/// worker threads (sharding over sessions; each session's analyses run
/// serially within its shard). All per-session results are exact or
/// normalized identically to the serial analyses, so the aggregate is
/// byte-identical for any `jobs`.
pub fn aggregate_sessions_with_jobs(
    name: &str,
    sessions: &[AnalysisSession],
    classifier: &OriginClassifier,
    jobs: usize,
) -> AppAggregate {
    let bundles: Vec<SessionBundle> = map_shards(sessions.len(), jobs, |range| {
        sessions[range]
            .iter()
            .map(|s| SessionBundle {
                row: SessionStats::compute(s),
                patterns: s.mine_patterns(),
                characterization: CharacterizationTable::scan(s, 0..s.episodes().len(), classifier),
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let rows: Vec<SessionStats> = bundles.iter().map(|b| b.row).collect();
    let tables: Vec<&CharacterizationTable> = bundles.iter().map(|b| &b.characterization).collect();
    AppAggregate {
        name: name.to_owned(),
        sessions: sessions.len(),
        stats: AveragedStats::over(&rows),
        trigger_all: sum_triggers(&tables.iter().map(|t| t.trigger_all()).collect::<Vec<_>>()),
        trigger_perceptible: sum_triggers(
            &tables
                .iter()
                .map(|t| t.trigger_perceptible())
                .collect::<Vec<_>>(),
        ),
        occurrence: sum_occurrences(
            &bundles
                .iter()
                .map(|b| OccurrenceBreakdown::of(&b.patterns))
                .collect::<Vec<_>>(),
        ),
        location_all: mean_locations(&tables.iter().map(|t| t.location_all()).collect::<Vec<_>>()),
        location_perceptible: mean_locations(
            &tables
                .iter()
                .map(|t| t.location_perceptible())
                .collect::<Vec<_>>(),
        ),
        causes_all: mean_causes(&tables.iter().map(|t| t.causes_all()).collect::<Vec<_>>()),
        causes_perceptible: mean_causes(
            &tables
                .iter()
                .map(|t| t.causes_perceptible())
                .collect::<Vec<_>>(),
        ),
        concurrency: mean_concurrency(&tables.iter().map(|t| t.concurrency()).collect::<Vec<_>>()),
        coverage_curve: mean_coverage_curves(
            &bundles
                .iter()
                .map(|b| b.patterns.cumulative_coverage())
                .collect::<Vec<_>>(),
        ),
        salvaged: bundles.iter().any(|b| b.characterization.salvaged()),
    }
}

/// Averages averaged rows once more (for the "Mean" row of Table III).
fn mean_averaged(rows: &[AveragedStats]) -> AveragedStats {
    let n = rows.len().max(1) as f64;
    let mut out = AveragedStats::default();
    for r in rows {
        out.e2e_secs += r.e2e_secs;
        out.in_episode_fraction += r.in_episode_fraction;
        out.short_count += r.short_count;
        out.traced_count += r.traced_count;
        out.perceptible_count += r.perceptible_count;
        out.long_per_minute += r.long_per_minute;
        out.distinct_patterns += r.distinct_patterns;
        out.episodes_in_patterns += r.episodes_in_patterns;
        out.singleton_fraction += r.singleton_fraction;
        out.mean_tree_size += r.mean_tree_size;
        out.mean_tree_depth += r.mean_tree_depth;
    }
    out.e2e_secs /= n;
    out.in_episode_fraction /= n;
    out.short_count /= n;
    out.traced_count /= n;
    out.perceptible_count /= n;
    out.long_per_minute /= n;
    out.distinct_patterns /= n;
    out.episodes_in_patterns /= n;
    out.singleton_fraction /= n;
    out.mean_tree_size /= n;
    out.mean_tree_depth /= n;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_sim::apps;

    #[test]
    fn study_runs_and_aggregates() {
        let study = Study::run(&[apps::crossword_sage()], 2, 5);
        assert_eq!(study.apps.len(), 1);
        let app = &study.apps[0];
        assert_eq!(app.aggregate.sessions, 2);
        assert!(app.aggregate.stats.traced_count > 500.0);
        assert!(app.aggregate.trigger_all.total() > 0);
        assert!(app.aggregate.occurrence.total() > 0);
        assert!(!app.aggregate.coverage_curve.is_empty());
    }

    #[test]
    fn mean_stats_average_across_apps() {
        let study = Study::run(&[apps::crossword_sage(), apps::jedit()], 1, 5);
        let mean = study.mean_stats();
        let a = study.apps[0].aggregate.stats.traced_count;
        let b = study.apps[1].aggregate.stats.traced_count;
        assert!((mean.traced_count - (a + b) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_study_matches_serial_exactly() {
        let serial = Study::run(&[apps::crossword_sage(), apps::jedit()], 3, 11);
        for jobs in [2, 5] {
            let parallel =
                Study::run_with_jobs(&[apps::crossword_sage(), apps::jedit()], 3, 11, jobs);
            assert_eq!(parallel.apps.len(), serial.apps.len());
            for (p, s) in parallel.apps.iter().zip(serial.apps.iter()) {
                assert_eq!(p.aggregate.name, s.aggregate.name);
                assert_eq!(p.aggregate.sessions, s.aggregate.sessions);
                assert_eq!(p.aggregate.stats, s.aggregate.stats);
                assert_eq!(p.aggregate.trigger_all, s.aggregate.trigger_all);
                assert_eq!(
                    p.aggregate.trigger_perceptible,
                    s.aggregate.trigger_perceptible
                );
                assert_eq!(p.aggregate.occurrence, s.aggregate.occurrence);
                assert_eq!(p.aggregate.location_all, s.aggregate.location_all);
                assert_eq!(
                    p.aggregate.location_perceptible,
                    s.aggregate.location_perceptible
                );
                assert_eq!(p.aggregate.causes_all, s.aggregate.causes_all);
                assert_eq!(
                    p.aggregate.causes_perceptible,
                    s.aggregate.causes_perceptible
                );
                assert_eq!(p.aggregate.concurrency, s.aggregate.concurrency);
                assert_eq!(p.aggregate.coverage_curve, s.aggregate.coverage_curve);
            }
        }
    }

    #[test]
    fn study_is_deterministic() {
        let a = Study::run(&[apps::jfree_chart()], 1, 9);
        let b = Study::run(&[apps::jfree_chart()], 1, 9);
        assert_eq!(
            a.apps[0].aggregate.stats.perceptible_count,
            b.apps[0].aggregate.stats.perceptible_count
        );
        assert_eq!(
            a.apps[0].aggregate.trigger_perceptible,
            b.apps[0].aggregate.trigger_perceptible
        );
    }
}
