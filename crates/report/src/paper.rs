//! The paper's published numbers, for paper-vs-measured comparisons.
//!
//! Table III is transcribed verbatim; figure callouts are the values the
//! paper states in its text (§IV). Chart-only values are not transcribed —
//! the comparison focuses on what the paper commits to in writing.

/// One Table III row as printed in the paper.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Application name.
    pub name: &'static str,
    /// The `E2E [s]` column.
    pub e2e_secs: u64,
    /// The `In-Eps [%]` column.
    pub in_eps_pct: u64,
    /// The `< 3ms` column.
    pub short: u64,
    /// The `>= 3ms` column.
    pub traced: u64,
    /// The `>= 100ms` column.
    pub perceptible: u64,
    /// The `Long/min` column.
    pub long_per_min: u64,
    /// The `Dist` column.
    pub dist: u64,
    /// The `#Eps` column.
    pub eps: u64,
    /// The `One-Ep [%]` column.
    pub one_ep_pct: u64,
    /// The `Descs` column.
    pub descs: u64,
    /// The `Depth` column.
    pub depth: u64,
}

/// Table III, including the paper's mean row (last entry).
pub const TABLE3: [PaperRow; 15] = [
    PaperRow {
        name: "Arabeske",
        e2e_secs: 461,
        in_eps_pct: 25,
        short: 323_605,
        traced: 6_278,
        perceptible: 177,
        long_per_min: 95,
        dist: 427,
        eps: 5_456,
        one_ep_pct: 62,
        descs: 7,
        depth: 5,
    },
    PaperRow {
        name: "ArgoUML",
        e2e_secs: 630,
        in_eps_pct: 35,
        short: 196_247,
        traced: 9_066,
        perceptible: 265,
        long_per_min: 75,
        dist: 1_292,
        eps: 8_011,
        one_ep_pct: 66,
        descs: 10,
        depth: 5,
    },
    PaperRow {
        name: "CrosswordSage",
        e2e_secs: 367,
        in_eps_pct: 8,
        short: 109_547,
        traced: 1_173,
        perceptible: 36,
        long_per_min: 80,
        dist: 119,
        eps: 1_068,
        one_ep_pct: 46,
        descs: 5,
        depth: 4,
    },
    PaperRow {
        name: "Euclide",
        e2e_secs: 614,
        in_eps_pct: 35,
        short: 109_572,
        traced: 9_676,
        perceptible: 96,
        long_per_min: 26,
        dist: 202,
        eps: 9_053,
        one_ep_pct: 35,
        descs: 5,
        depth: 4,
    },
    PaperRow {
        name: "FindBugs",
        e2e_secs: 599,
        in_eps_pct: 21,
        short: 39_254,
        traced: 6_336,
        perceptible: 120,
        long_per_min: 56,
        dist: 245,
        eps: 6_128,
        one_ep_pct: 44,
        descs: 6,
        depth: 4,
    },
    PaperRow {
        name: "FreeMind",
        e2e_secs: 524,
        in_eps_pct: 11,
        short: 325_135,
        traced: 3_462,
        perceptible: 26,
        long_per_min: 30,
        dist: 246,
        eps: 3_326,
        one_ep_pct: 55,
        descs: 7,
        depth: 5,
    },
    PaperRow {
        name: "GanttProject",
        e2e_secs: 523,
        in_eps_pct: 47,
        short: 126_940,
        traced: 2_564,
        perceptible: 706,
        long_per_min: 168,
        dist: 803,
        eps: 2_373,
        one_ep_pct: 70,
        descs: 18,
        depth: 12,
    },
    PaperRow {
        name: "JEdit",
        e2e_secs: 502,
        in_eps_pct: 9,
        short: 117_615,
        traced: 2_271,
        perceptible: 24,
        long_per_min: 33,
        dist: 150,
        eps: 1_610,
        one_ep_pct: 50,
        descs: 5,
        depth: 4,
    },
    PaperRow {
        name: "JFreeChart",
        e2e_secs: 250,
        in_eps_pct: 26,
        short: 77_720,
        traced: 1_658,
        perceptible: 175,
        long_per_min: 164,
        dist: 114,
        eps: 1_581,
        one_ep_pct: 44,
        descs: 6,
        depth: 5,
    },
    PaperRow {
        name: "JHotDraw",
        e2e_secs: 421,
        in_eps_pct: 41,
        short: 246_836,
        traced: 5_980,
        perceptible: 338,
        long_per_min: 114,
        dist: 454,
        eps: 5_675,
        one_ep_pct: 70,
        descs: 8,
        depth: 5,
    },
    PaperRow {
        name: "JMol",
        e2e_secs: 449,
        in_eps_pct: 46,
        short: 110_929,
        traced: 3_197,
        perceptible: 604,
        long_per_min: 180,
        dist: 187,
        eps: 3_062,
        one_ep_pct: 52,
        descs: 7,
        depth: 5,
    },
    PaperRow {
        name: "Laoe",
        e2e_secs: 460,
        in_eps_pct: 47,
        short: 1_241_198,
        traced: 3_174,
        perceptible: 61,
        long_per_min: 18,
        dist: 226,
        eps: 3_007,
        one_ep_pct: 58,
        descs: 8,
        depth: 5,
    },
    PaperRow {
        name: "NetBeans",
        e2e_secs: 398,
        in_eps_pct: 27,
        short: 305_177,
        traced: 3_120,
        perceptible: 149,
        long_per_min: 82,
        dist: 642,
        eps: 2_911,
        one_ep_pct: 66,
        descs: 10,
        depth: 5,
    },
    PaperRow {
        name: "SwingSet",
        e2e_secs: 384,
        in_eps_pct: 20,
        short: 219_569,
        traced: 4_310,
        perceptible: 70,
        long_per_min: 57,
        dist: 444,
        eps: 4_152,
        one_ep_pct: 59,
        descs: 9,
        depth: 6,
    },
    PaperRow {
        name: "Mean",
        e2e_secs: 470,
        in_eps_pct: 28,
        short: 253_525,
        traced: 4_447,
        perceptible: 203,
        long_per_min: 84,
        dist: 396,
        eps: 4_101,
        one_ep_pct: 56,
        descs: 8,
        depth: 5,
    },
];

/// A figure claim the paper makes in its prose.
#[derive(Clone, Copy, Debug)]
pub struct PaperClaim {
    /// Where the claim comes from (figure / section).
    pub source: &'static str,
    /// What is claimed.
    pub description: &'static str,
    /// The claimed value (fraction in `[0, 1]` unless noted).
    pub value: f64,
}

/// The prose claims of §IV the experiments check.
pub const CLAIMS: &[PaperClaim] = &[
    PaperClaim {
        source: "Fig 3",
        description: "~80% of episodes covered by 20% of patterns (Pareto)",
        value: 0.80,
    },
    PaperClaim {
        source: "Fig 4",
        description: "GanttProject patterns always slow",
        value: 0.57,
    },
    PaperClaim {
        source: "Fig 4",
        description: "FreeMind patterns never slow",
        value: 0.92,
    },
    PaperClaim {
        source: "Fig 4",
        description: "mean consistently slow-or-fast patterns",
        value: 0.96,
    },
    PaperClaim {
        source: "Fig 4",
        description: "mean ever-perceptible patterns",
        value: 0.22,
    },
    PaperClaim {
        source: "Fig 5",
        description: "mean perceptible lag due to input",
        value: 0.40,
    },
    PaperClaim {
        source: "Fig 5",
        description: "mean perceptible lag due to output",
        value: 0.47,
    },
    PaperClaim {
        source: "Fig 5",
        description: "mean perceptible lag due to async",
        value: 0.07,
    },
    PaperClaim {
        source: "Fig 5",
        description: "Arabeske perceptible episodes unspecified",
        value: 0.57,
    },
    PaperClaim {
        source: "Fig 5",
        description: "JMol perceptible episodes output",
        value: 0.98,
    },
    PaperClaim {
        source: "Fig 5",
        description: "ArgoUML perceptible episodes input",
        value: 0.78,
    },
    PaperClaim {
        source: "Fig 5",
        description: "FindBugs perceptible episodes async",
        value: 0.42,
    },
    PaperClaim {
        source: "Fig 6",
        description: "mean perceptible lag in runtime libraries",
        value: 0.52,
    },
    PaperClaim {
        source: "Fig 6",
        description: "mean perceptible lag in application",
        value: 0.48,
    },
    PaperClaim {
        source: "Fig 6",
        description: "mean perceptible lag in GC",
        value: 0.11,
    },
    PaperClaim {
        source: "Fig 6",
        description: "mean perceptible lag in native calls",
        value: 0.05,
    },
    PaperClaim {
        source: "Fig 6",
        description: "Arabeske perceptible lag in GC",
        value: 0.60,
    },
    PaperClaim {
        source: "Fig 6",
        description: "ArgoUML perceptible lag in GC",
        value: 0.26,
    },
    PaperClaim {
        source: "Fig 6",
        description: "ArgoUML all-episode time in GC",
        value: 0.16,
    },
    PaperClaim {
        source: "Fig 6",
        description: "JFreeChart perceptible lag in native code",
        value: 0.24,
    },
    PaperClaim {
        source: "Fig 6",
        description: "Euclide perceptible lag in runtime library",
        value: 0.73,
    },
    PaperClaim {
        source: "Fig 6",
        description: "JHotDraw perceptible lag in application code",
        value: 0.96,
    },
    PaperClaim {
        source: "Fig 7",
        description: "mean runnable threads over all episodes",
        value: 1.2,
    },
    PaperClaim {
        source: "Fig 8",
        description: "jEdit perceptible lag waiting",
        value: 0.25,
    },
    PaperClaim {
        source: "Fig 8",
        description: "FreeMind perceptible lag blocked",
        value: 0.12,
    },
    PaperClaim {
        source: "Fig 8",
        description: "Euclide perceptible lag sleeping",
        value: 0.60,
    },
];

/// Looks up a Table III row by application name.
pub fn table3_row(name: &str) -> Option<&'static PaperRow> {
    TABLE3.iter().find(|r| r.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_14_apps_plus_mean() {
        assert_eq!(TABLE3.len(), 15);
        assert_eq!(TABLE3[14].name, "Mean");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(table3_row("jmol").unwrap().perceptible, 604);
        assert!(table3_row("nothere").is_none());
    }

    #[test]
    fn mean_row_consistent_with_apps() {
        // The paper's mean row should be the average of the 14 app rows
        // (integer rounding tolerated).
        let apps = &TABLE3[..14];
        let mean_traced: f64 =
            apps.iter().map(|r| r.traced as f64).sum::<f64>() / apps.len() as f64;
        assert!((mean_traced - TABLE3[14].traced as f64).abs() < 1.0);
        let mean_short: f64 = apps.iter().map(|r| r.short as f64).sum::<f64>() / apps.len() as f64;
        assert!((mean_short - TABLE3[14].short as f64).abs() < 1.0);
    }

    #[test]
    fn claims_are_fractions_or_small_counts() {
        for c in CLAIMS {
            assert!(c.value > 0.0 && c.value < 2.0, "{}", c.description);
        }
    }
}
