//! Rendering the paper's Table III (overall statistics).

use crate::study::Study;
use crate::table::{Align, TextTable};
use lagalyzer_core::aggregate::AveragedStats;

/// Renders Table III with one row per application plus the mean row, in
/// the paper's column order.
pub fn render(study: &Study) -> String {
    let mut t = TextTable::new(&[
        ("Benchmarks", Align::Left),
        ("E2E [s]", Align::Right),
        ("In-Eps [%]", Align::Right),
        ("< 3ms", Align::Right),
        (">= 3ms", Align::Right),
        (">= 100ms", Align::Right),
        ("Long/min", Align::Right),
        ("Dist", Align::Right),
        ("#Eps", Align::Right),
        ("One-Ep [%]", Align::Right),
        ("Descs", Align::Right),
        ("Depth", Align::Right),
    ]);
    let mut any_salvaged = false;
    for app in &study.apps {
        // A trailing `*` marks applications whose traces were recovered
        // by salvage decoding (episode populations may be incomplete).
        let name = if app.aggregate.salvaged {
            any_salvaged = true;
            format!("{} *", app.aggregate.name)
        } else {
            app.aggregate.name.clone()
        };
        t.row(&row_cells(&name, &app.aggregate.stats));
    }
    t.separator();
    t.row(&row_cells("Mean", &study.mean_stats()));
    let mut out = t.render();
    if any_salvaged {
        out.push_str("* trace salvaged from a damaged file; counts may be incomplete\n");
    }
    out
}

fn row_cells(name: &str, s: &AveragedStats) -> Vec<String> {
    vec![
        name.to_owned(),
        format!("{:.0}", s.e2e_secs),
        format!("{:.0}", s.in_episode_fraction * 100.0),
        format!("{:.0}", s.short_count),
        format!("{:.0}", s.traced_count),
        format!("{:.0}", s.perceptible_count),
        format!("{:.0}", s.long_per_minute),
        format!("{:.0}", s.distinct_patterns),
        format!("{:.0}", s.episodes_in_patterns),
        format!("{:.0}", s.singleton_fraction * 100.0),
        format!("{:.0}", s.mean_tree_size),
        format!("{:.0}", s.mean_tree_depth),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_sim::apps;

    #[test]
    fn table_has_app_and_mean_rows() {
        let study = Study::run(&[apps::crossword_sage()], 1, 3);
        let table = render(&study);
        assert!(table.contains("CrosswordSage"));
        assert!(table.contains("Mean"));
        assert!(table.contains("E2E"));
        assert!(table.contains(">= 100ms"));
        // Header + separator + 1 app + separator + mean.
        assert_eq!(table.lines().count(), 5);
    }

    #[test]
    fn numbers_are_rounded_like_the_paper() {
        let study = Study::run(&[apps::crossword_sage()], 1, 3);
        let table = render(&study);
        // No decimal points in data rows (the paper prints integers).
        for line in table.lines().skip(2) {
            assert!(!line.contains('.'), "unexpected decimals in {line}");
        }
    }
}
