//! Experiment drivers: regenerating the paper's tables and figures.
//!
//! This crate ties the pipeline together: simulate the 14-application
//! suite ([`study`]), aggregate per-application results, render text
//! tables ([`table`], [`table3`]) and SVG figures ([`figures`]), bundle
//! everything into a self-contained [`html`] report, and compare measured
//! values against the paper's published numbers ([`paper`], [`compare`]).
//!
//! # Example
//!
//! ```
//! use lagalyzer_report::study::Study;
//! use lagalyzer_sim::apps;
//!
//! // A two-app mini-study (the full 14-app study runs in the binaries).
//! let study = Study::run(&[apps::crossword_sage(), apps::jedit()], 1, 7);
//! assert_eq!(study.apps.len(), 2);
//! let table = lagalyzer_report::table3::render(&study);
//! assert!(table.contains("CrosswordSage"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod figures;
pub mod html;
pub mod paper;
pub mod study;
pub mod table;
pub mod table3;

pub use study::{AppResult, Study};
