//! Plain-text table formatting.

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with `(header, alignment)` column specs.
    pub fn new(columns: &[(&str, Align)]) -> Self {
        TextTable {
            headers: columns.iter().map(|(h, _)| (*h).to_owned()).collect(),
            aligns: columns.iter().map(|(_, a)| *a).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the column count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_owned()).collect());
        self
    }

    /// Appends a horizontal separator row.
    pub fn separator(&mut self) -> &mut Self {
        self.rows.push(Vec::new()); // empty row marks a separator
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, (align, width)) in self.aligns.iter().zip(&widths).enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                if i > 0 {
                    out.push_str("  ");
                }
                match align {
                    Align::Left => out.push_str(&format!("{cell:<width$}")),
                    Align::Right => out.push_str(&format!("{cell:>width$}")),
                }
            }
            // Trim trailing spaces for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&"-".repeat(total));
                out.push('\n');
            } else {
                fmt_row(row, &mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&[("name", Align::Left), ("value", Align::Right)]);
        t.row(&["a", "1"]);
        t.row(&["longer", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name    value");
        assert_eq!(lines[2], "a           1");
        assert_eq!(lines[3], "longer  12345");
    }

    #[test]
    fn separator_renders_dashes() {
        let mut t = TextTable::new(&[("a", Align::Left)]);
        t.row(&["x"]);
        t.separator();
        t.row(&["y"]);
        let s = t.render();
        assert_eq!(s.lines().filter(|l| l.starts_with('-')).count(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = TextTable::new(&[("a", Align::Left), ("b", Align::Left)]);
        t.row(&["only one"]);
    }

    #[test]
    fn no_trailing_whitespace() {
        let mut t = TextTable::new(&[("a", Align::Left), ("b", Align::Left)]);
        t.row(&["x", "y"]);
        for line in t.render().lines() {
            assert_eq!(line, line.trim_end());
        }
    }
}
