//! Figure generators: one function per paper figure, each returning the
//! SVG plus a plain-text data dump of the same series (the experiment
//! binaries print the text and save the SVG).

use std::fmt::Write as _;

use lagalyzer_viz::charts::{DotChart, MultiLineChart, StackedBarChart};

use crate::study::Study;

/// A rendered figure: the SVG document and the text form of its data.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Short identifier (e.g. `fig5_perceptible`).
    pub id: String,
    /// The SVG document.
    pub svg: String,
    /// The same data as text rows.
    pub text: String,
}

/// Fig 3 — cumulative distribution of episodes into patterns.
pub fn fig3(study: &Study) -> Figure {
    let mut chart = MultiLineChart::new(
        "Fig 3: Cumulative distribution of episodes into patterns",
        "Patterns [%]",
        "Cumulative Episodes Count [%]",
    );
    let mut text = String::from("app, pct_patterns -> pct_episodes (quartiles)\n");
    for app in &study.apps {
        chart.series(
            app.aggregate.name.clone(),
            app.aggregate.coverage_curve.clone(),
        );
        let curve = &app.aggregate.coverage_curve;
        let at = |f: f64| -> f64 {
            curve
                .iter()
                .filter(|(x, _)| *x <= f + 1e-9)
                .map(|(_, y)| *y)
                .next_back()
                .unwrap_or(0.0)
        };
        let _ = writeln!(
            text,
            "{:<14} 20%->{:>5.1}%  40%->{:>5.1}%  60%->{:>5.1}%  80%->{:>5.1}%",
            app.aggregate.name,
            at(0.2) * 100.0,
            at(0.4) * 100.0,
            at(0.6) * 100.0,
            at(0.8) * 100.0,
        );
    }
    Figure {
        id: "fig3".into(),
        svg: chart.render(),
        text,
    }
}

/// Fig 4 — long-latency episodes in patterns (always/sometimes/once/never).
pub fn fig4(study: &Study) -> Figure {
    let mut chart = StackedBarChart::new(
        "Fig 4: Long-latency episodes in patterns",
        &["always", "sometimes", "once", "never"],
    );
    let mut text = String::from("app, always%, sometimes%, once%, never%\n");
    for app in &study.apps {
        let fr = app.aggregate.occurrence.fractions();
        chart.row(app.aggregate.name.clone(), &fr);
        let _ = writeln!(
            text,
            "{:<14} {:>5.1} {:>5.1} {:>5.1} {:>5.1}",
            app.aggregate.name,
            fr[0] * 100.0,
            fr[1] * 100.0,
            fr[2] * 100.0,
            fr[3] * 100.0,
        );
    }
    Figure {
        id: "fig4".into(),
        svg: chart.render(),
        text,
    }
}

/// Fig 5 — triggers of episodes; `perceptible` selects the lower graph.
pub fn fig5(study: &Study, perceptible: bool) -> Figure {
    let (title, id) = if perceptible {
        (
            "Fig 5 (lower): Triggers of perceptible episodes",
            "fig5_perceptible",
        )
    } else {
        ("Fig 5 (upper): Triggers of all episodes", "fig5_all")
    };
    let mut chart =
        StackedBarChart::new(title, &["input", "output", "asynchronous", "unspecified"]);
    let mut text = String::from("app, input%, output%, async%, unspecified%\n");
    for app in &study.apps {
        let b = if perceptible {
            &app.aggregate.trigger_perceptible
        } else {
            &app.aggregate.trigger_all
        };
        let fr = b.fractions();
        chart.row(app.aggregate.name.clone(), &fr);
        let _ = writeln!(
            text,
            "{:<14} {:>5.1} {:>5.1} {:>5.1} {:>5.1}",
            app.aggregate.name,
            fr[0] * 100.0,
            fr[1] * 100.0,
            fr[2] * 100.0,
            fr[3] * 100.0,
        );
    }
    Figure {
        id: id.into(),
        svg: chart.render(),
        text,
    }
}

/// Fig 6 — location of episode time. Returns both stacks: samples
/// (library vs application) and intervals (GC vs native vs mutator).
pub fn fig6(study: &Study, perceptible: bool) -> (Figure, Figure) {
    let scope = if perceptible { "perceptible" } else { "all" };
    let mut samples_chart = StackedBarChart::new(
        format!("Fig 6 ({scope}): sampled time by code origin"),
        &["runtime library", "application"],
    );
    let mut intervals_chart = StackedBarChart::new(
        format!("Fig 6 ({scope}): episode time in GC and native code"),
        &["gc", "native", "other"],
    );
    let mut samples_text = String::from("app, library%, application%\n");
    let mut intervals_text = String::from("app, gc%, native%\n");
    for app in &study.apps {
        let loc = if perceptible {
            &app.aggregate.location_perceptible
        } else {
            &app.aggregate.location_all
        };
        samples_chart.row(app.aggregate.name.clone(), &[loc.library, loc.application]);
        intervals_chart.row(
            app.aggregate.name.clone(),
            &[loc.gc, loc.native, (1.0 - loc.gc - loc.native).max(0.0)],
        );
        let _ = writeln!(
            samples_text,
            "{:<14} {:>5.1} {:>5.1}",
            app.aggregate.name,
            loc.library * 100.0,
            loc.application * 100.0,
        );
        let _ = writeln!(
            intervals_text,
            "{:<14} {:>5.1} {:>5.1}",
            app.aggregate.name,
            loc.gc * 100.0,
            loc.native * 100.0,
        );
    }
    (
        Figure {
            id: format!("fig6_{scope}_samples"),
            svg: samples_chart.render(),
            text: samples_text,
        },
        Figure {
            id: format!("fig6_{scope}_intervals"),
            svg: intervals_chart.render(),
            text: intervals_text,
        },
    )
}

/// Fig 7 — average number of runnable threads per application.
pub fn fig7(study: &Study, perceptible: bool) -> Figure {
    let scope = if perceptible { "perceptible" } else { "all" };
    let mut chart = DotChart::new(
        format!("Fig 7 ({scope}): concurrency (average # of runnable threads)"),
        "runnable threads".to_owned(),
        2.0,
    );
    chart.reference(1.0);
    let mut text = String::from("app, avg runnable threads\n");
    for app in &study.apps {
        let v = if perceptible {
            app.aggregate.concurrency.perceptible
        } else {
            app.aggregate.concurrency.all
        };
        chart.row(app.aggregate.name.clone(), v);
        let _ = writeln!(text, "{:<14} {:>5.2}", app.aggregate.name, v);
    }
    Figure {
        id: format!("fig7_{scope}"),
        svg: chart.render(),
        text,
    }
}

/// Fig 8 — synchronization and sleep during episodes (x-axis zoomed to
/// 60% like the paper).
pub fn fig8(study: &Study, perceptible: bool) -> Figure {
    let scope = if perceptible { "perceptible" } else { "all" };
    let mut chart = StackedBarChart::new(
        format!("Fig 8 ({scope}): GUI-thread states (blocked/wait/sleep)"),
        &["blocked", "wait", "sleeping"],
    );
    chart.x_max(0.6);
    let mut text = String::from("app, blocked%, wait%, sleeping%\n");
    for app in &study.apps {
        let c = if perceptible {
            &app.aggregate.causes_perceptible
        } else {
            &app.aggregate.causes_all
        };
        chart.row(
            app.aggregate.name.clone(),
            &[c.blocked, c.waiting, c.sleeping],
        );
        let _ = writeln!(
            text,
            "{:<14} {:>5.1} {:>5.1} {:>5.1}",
            app.aggregate.name,
            c.blocked * 100.0,
            c.waiting * 100.0,
            c.sleeping * 100.0,
        );
    }
    Figure {
        id: format!("fig8_{scope}"),
        svg: chart.render(),
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Study;
    use lagalyzer_sim::apps;

    fn mini_study() -> Study {
        Study::run(&[apps::crossword_sage(), apps::jfree_chart()], 1, 3)
    }

    #[test]
    fn all_figures_render() {
        let study = mini_study();
        let figs = vec![
            fig3(&study),
            fig4(&study),
            fig5(&study, true),
            fig5(&study, false),
            fig6(&study, true).0,
            fig6(&study, true).1,
            fig6(&study, false).0,
            fig7(&study, true),
            fig7(&study, false),
            fig8(&study, true),
            fig8(&study, false),
        ];
        for f in figs {
            assert!(f.svg.starts_with("<svg"), "{}", f.id);
            assert!(f.text.contains("CrosswordSage"), "{}", f.id);
            assert!(!f.id.is_empty());
        }
    }

    #[test]
    fn fig3_text_reports_quartiles() {
        let study = mini_study();
        let f = fig3(&study);
        assert!(f.text.contains("20%->"));
        assert!(f.text.contains("80%->"));
    }

    #[test]
    fn fig5_scopes_have_distinct_ids() {
        let study = mini_study();
        assert_ne!(fig5(&study, true).id, fig5(&study, false).id);
    }
}
