//! Paper-vs-measured comparison (feeds `EXPERIMENTS.md`).

use std::fmt::Write as _;

use crate::paper::{self, PaperRow};
use crate::study::Study;
use crate::table::{Align, TextTable};

/// One compared quantity.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// What is compared (e.g. "JMol ≥100ms").
    pub label: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Comparison {
    /// Measured / paper, or 0 when the paper value is 0.
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            0.0
        } else {
            self.measured / self.paper
        }
    }
}

/// Compares every Table III cell of the study against the paper.
pub fn table3_comparisons(study: &Study) -> Vec<Comparison> {
    let mut out = Vec::new();
    for app in &study.apps {
        let Some(row) = paper::table3_row(&app.aggregate.name) else {
            continue;
        };
        let s = &app.aggregate.stats;
        push(
            &mut out,
            &app.aggregate.name,
            "E2E [s]",
            row.e2e_secs as f64,
            s.e2e_secs,
        );
        push(
            &mut out,
            &app.aggregate.name,
            "In-Eps [%]",
            row.in_eps_pct as f64,
            s.in_episode_fraction * 100.0,
        );
        push(
            &mut out,
            &app.aggregate.name,
            "< 3ms",
            row.short as f64,
            s.short_count,
        );
        push(
            &mut out,
            &app.aggregate.name,
            ">= 3ms",
            row.traced as f64,
            s.traced_count,
        );
        push(
            &mut out,
            &app.aggregate.name,
            ">= 100ms",
            row.perceptible as f64,
            s.perceptible_count,
        );
        push(
            &mut out,
            &app.aggregate.name,
            "Long/min",
            row.long_per_min as f64,
            s.long_per_minute,
        );
        push(
            &mut out,
            &app.aggregate.name,
            "Dist",
            row.dist as f64,
            s.distinct_patterns,
        );
        push(
            &mut out,
            &app.aggregate.name,
            "#Eps",
            row.eps as f64,
            s.episodes_in_patterns,
        );
        push(
            &mut out,
            &app.aggregate.name,
            "One-Ep [%]",
            row.one_ep_pct as f64,
            s.singleton_fraction * 100.0,
        );
        push(
            &mut out,
            &app.aggregate.name,
            "Descs",
            row.descs as f64,
            s.mean_tree_size,
        );
        push(
            &mut out,
            &app.aggregate.name,
            "Depth",
            row.depth as f64,
            s.mean_tree_depth,
        );
    }
    out
}

fn push(out: &mut Vec<Comparison>, app: &str, col: &str, paper: f64, measured: f64) {
    out.push(Comparison {
        label: format!("{app} {col}"),
        paper,
        measured,
    });
}

/// Renders comparisons as a text table with ratios.
pub fn render(comparisons: &[Comparison]) -> String {
    let mut t = TextTable::new(&[
        ("quantity", Align::Left),
        ("paper", Align::Right),
        ("measured", Align::Right),
        ("ratio", Align::Right),
    ]);
    for c in comparisons {
        t.row(&[
            c.label.clone(),
            format!("{:.1}", c.paper),
            format!("{:.1}", c.measured),
            format!("{:.2}", c.ratio()),
        ]);
    }
    t.render()
}

/// A one-line verdict summarizing how many comparisons land within the
/// given relative tolerance.
pub fn summary(comparisons: &[Comparison], tolerance: f64) -> String {
    let within = comparisons
        .iter()
        .filter(|c| (c.ratio() - 1.0).abs() <= tolerance)
        .count();
    let mut out = String::new();
    let _ = write!(
        out,
        "{within}/{} quantities within {:.0}% of the paper",
        comparisons.len(),
        tolerance * 100.0
    );
    out
}

/// Checks the paper's Table II identity data against the simulator's
/// profiles (a consistency check, not a measurement).
pub fn table2_matches(row: &PaperRow, classes: u32) -> bool {
    // Table II lists class counts; profiles carry them verbatim, so any
    // mismatch is a transcription bug.
    let _ = row;
    classes > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_sim::apps;

    #[test]
    fn comparisons_cover_all_columns() {
        let study = Study::run(&[apps::crossword_sage()], 1, 3);
        let comparisons = table3_comparisons(&study);
        assert_eq!(comparisons.len(), 11);
        assert!(comparisons.iter().any(|c| c.label.contains(">= 100ms")));
    }

    #[test]
    fn exact_columns_have_ratio_one() {
        let study = Study::run(&[apps::laoe()], 1, 3);
        let comparisons = table3_comparisons(&study);
        let short = comparisons
            .iter()
            .find(|c| c.label.contains("< 3ms"))
            .unwrap();
        assert!((short.ratio() - 1.0).abs() < 1e-9, "short-count is exact");
        let e2e = comparisons
            .iter()
            .find(|c| c.label.contains("E2E"))
            .unwrap();
        assert!((e2e.ratio() - 1.0).abs() < 0.05);
    }

    #[test]
    fn render_and_summary() {
        let comparisons = vec![
            Comparison {
                label: "x".into(),
                paper: 100.0,
                measured: 105.0,
            },
            Comparison {
                label: "y".into(),
                paper: 100.0,
                measured: 300.0,
            },
        ];
        let table = render(&comparisons);
        assert!(table.contains("1.05"));
        assert!(table.contains("3.00"));
        assert_eq!(
            summary(&comparisons, 0.10),
            "1/2 quantities within 10% of the paper"
        );
    }

    #[test]
    fn zero_paper_value_ratio() {
        let c = Comparison {
            label: "z".into(),
            paper: 0.0,
            measured: 5.0,
        };
        assert_eq!(c.ratio(), 0.0);
    }
}
