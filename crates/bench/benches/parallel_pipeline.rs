//! Serial vs sharded-parallel analysis throughput.
//!
//! Simulates one oversized session (>= 10k traced episodes, beyond any
//! Table III application) and runs the full per-session analysis — Table
//! III statistics plus pattern mining — at increasing `jobs` counts. The
//! parallel pipeline guarantees byte-identical output, so the only thing
//! measured here is wall-clock scaling of the shard/merge machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lagalyzer_core::parallel::available_jobs;
use lagalyzer_core::prelude::*;
use lagalyzer_sim::{apps, runner};

/// Euclide scaled up ~3x so a single session clears 10k traced episodes.
fn oversized_profile() -> lagalyzer_sim::profile::AppProfile {
    let mut profile = apps::euclide();
    profile.name = "Euclide-3x".into();
    profile.scale.traced_episodes = 29_000;
    profile.scale.structured_episodes = 27_100;
    profile.scale.perceptible_episodes = 290;
    profile.scale.distinct_patterns = 600;
    profile
}

fn job_counts() -> Vec<usize> {
    let mut jobs = vec![1, 2, 4];
    let max = available_jobs();
    if !jobs.contains(&max) {
        jobs.push(max);
    }
    jobs.retain(|&j| j <= max.max(4));
    jobs
}

fn bench_stats_scaling(c: &mut Criterion) {
    let session = AnalysisSession::new(
        runner::simulate_session(&oversized_profile(), 0, 42),
        AnalysisConfig::default(),
    );
    assert!(
        session.episodes().len() >= 10_000,
        "bench needs a 10k-episode session"
    );
    let mut group = c.benchmark_group("session_stats_by_jobs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(session.episodes().len() as u64));
    for jobs in job_counts() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs{jobs}")),
            &jobs,
            |b, &jobs| b.iter(|| SessionStats::compute_with_jobs(&session, jobs)),
        );
    }
    group.finish();
}

fn bench_mining_scaling(c: &mut Criterion) {
    let session = AnalysisSession::new(
        runner::simulate_session(&oversized_profile(), 0, 42),
        AnalysisConfig::default(),
    );
    let mut group = c.benchmark_group("mine_patterns_by_jobs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(session.episodes().len() as u64));
    for jobs in job_counts() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs{jobs}")),
            &jobs,
            |b, &jobs| b.iter(|| session.mine_patterns_with_jobs(jobs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stats_scaling, bench_mining_scaling);
criterion_main!(benches);
