//! Serial vs sharded-parallel analysis throughput.
//!
//! Simulates one oversized session (>= 10k traced episodes, beyond any
//! Table III application) and runs the full per-session analysis — Table
//! III statistics plus pattern mining — at increasing `jobs` counts. The
//! parallel pipeline guarantees byte-identical output, so the only thing
//! measured here is wall-clock scaling of the shard/merge machinery.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use lagalyzer_bench::benchjson;
use lagalyzer_core::parallel::available_jobs;
use lagalyzer_core::prelude::*;
use lagalyzer_sim::{apps, runner};

/// Euclide scaled up ~3x so a single session clears 10k traced episodes.
fn oversized_profile() -> lagalyzer_sim::profile::AppProfile {
    let mut profile = apps::euclide();
    profile.name = "Euclide-3x".into();
    profile.scale.traced_episodes = 29_000;
    profile.scale.structured_episodes = 27_100;
    profile.scale.perceptible_episodes = 290;
    profile.scale.distinct_patterns = 600;
    profile
}

fn job_counts() -> Vec<usize> {
    let mut jobs = vec![1, 2, 4];
    let max = available_jobs();
    if !jobs.contains(&max) {
        jobs.push(max);
    }
    jobs.retain(|&j| j <= max.max(4));
    jobs
}

fn bench_stats_scaling(c: &mut Criterion) {
    let session = AnalysisSession::new(
        runner::simulate_session(&oversized_profile(), 0, 42),
        AnalysisConfig::default(),
    );
    assert!(
        session.episodes().len() >= 10_000,
        "bench needs a 10k-episode session"
    );
    let mut group = c.benchmark_group("session_stats_by_jobs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(session.episodes().len() as u64));
    for jobs in job_counts() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs{jobs}")),
            &jobs,
            |b, &jobs| b.iter(|| SessionStats::compute_with_jobs(&session, jobs)),
        );
    }
    group.finish();
}

fn bench_mining_scaling(c: &mut Criterion) {
    let session = AnalysisSession::new(
        runner::simulate_session(&oversized_profile(), 0, 42),
        AnalysisConfig::default(),
    );
    let mut group = c.benchmark_group("mine_patterns_by_jobs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(session.episodes().len() as u64));
    for jobs in job_counts() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs{jobs}")),
            &jobs,
            |b, &jobs| b.iter(|| session.mine_patterns_with_jobs(jobs)),
        );
    }
    group.finish();
}

/// Mining throughput at each job count on the oversized session, plus
/// the string-keyed serial baseline, written to `BENCH_mining.json`.
fn emit_pipeline_json() {
    let budget = benchjson::budget();
    let session = AnalysisSession::new(
        runner::simulate_session(&oversized_profile(), 0, 42),
        AnalysisConfig::default(),
    );
    let episodes = session.episodes().len() as u64;
    let reference_ns = benchjson::time_mean_ns(budget, || PatternSet::mine_reference(&session));
    let mut rows = String::new();
    for jobs in job_counts() {
        let ns = benchjson::time_mean_ns(budget, || session.mine_patterns_with_jobs(jobs));
        eprintln!(
            "mine jobs={jobs:<2} {ns:>12.0} ns/iter  speedup vs string-keyed serial {:>5.2}x",
            reference_ns / ns
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"jobs\": {jobs}, \"ns_per_iter\": {ns:.1}, \
             \"speedup_vs_reference\": {:.3}}}",
            reference_ns / ns
        ));
    }
    let json = format!(
        "{{\n  \"corpus\": \"Euclide-3x\",\n  \"episodes\": {episodes},\n  \
         \"budget_ms\": {budget_ms},\n  \
         \"reference_serial_ns_per_iter\": {reference_ns:.1},\n  \
         \"mining_by_jobs\": [\n{rows}\n  ]\n}}",
        budget_ms = budget.as_millis(),
    );
    benchjson::record_section("parallel_pipeline", &json);
}

criterion_group!(benches, bench_stats_scaling, bench_mining_scaling);

fn main() {
    benches();
    emit_pipeline_json();
}
