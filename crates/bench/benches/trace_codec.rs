//! Trace codec throughput: binary vs text, write vs read.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lagalyzer_sim::{apps, runner};
use lagalyzer_trace::{binary, text};

fn bench_codecs(c: &mut Criterion) {
    let trace = runner::simulate_session(&apps::crossword_sage(), 0, 42);
    let mut bin = Vec::new();
    binary::write(&trace, &mut bin).unwrap();
    let mut txt = Vec::new();
    text::write(&trace, &mut txt).unwrap();

    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bin.len() as u64));
    group.bench_function("binary_write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(bin.len());
            binary::write(&trace, &mut buf).unwrap();
            buf
        });
    });
    group.bench_function("binary_read", |b| {
        b.iter(|| binary::read(&mut bin.as_slice()).unwrap());
    });
    group.throughput(Throughput::Bytes(txt.len() as u64));
    group.bench_function("text_write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(txt.len());
            text::write(&trace, &mut buf).unwrap();
            buf
        });
    });
    group.bench_function("text_read", |b| {
        b.iter(|| text::read(&mut txt.as_slice()).unwrap());
    });
    group.finish();

    eprintln!(
        "trace sizes: binary {} bytes, text {} bytes ({:.1}x)",
        bin.len(),
        txt.len(),
        txt.len() as f64 / bin.len() as f64
    );
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
