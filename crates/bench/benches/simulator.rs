//! Simulator throughput: how fast sessions are synthesized (relevant for
//! anyone regenerating the study).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lagalyzer_sim::{apps, runner};

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_session");
    group.sample_size(10);
    for profile in [apps::crossword_sage(), apps::jedit(), apps::euclide()] {
        group.throughput(Throughput::Elements(profile.scale.traced_episodes));
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name.clone()),
            &profile,
            |b, p| b.iter(|| runner::simulate_session(p, 0, 42)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
