//! Analysis throughput (the paper's §IV perf claim: 250k episodes in
//! 15 min). Measures each analysis stage on one mid-size session.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lagalyzer_core::prelude::*;
use lagalyzer_core::trigger::TriggerBreakdown;
use lagalyzer_model::OriginClassifier;
use lagalyzer_sim::{apps, runner};

fn session() -> AnalysisSession {
    AnalysisSession::new(
        runner::simulate_session(&apps::argo_uml(), 0, 42),
        AnalysisConfig::default(),
    )
}

fn bench_analyses(c: &mut Criterion) {
    let s = session();
    let n = s.episodes().len() as u64;
    let classifier = OriginClassifier::java_default();

    let mut group = c.benchmark_group("analysis");
    group.throughput(criterion::Throughput::Elements(n));
    group.sample_size(20);
    group.bench_function("overall_stats", |b| b.iter(|| SessionStats::compute(&s)));
    group.bench_function("mine_patterns", |b| b.iter(|| s.mine_patterns()));
    group.bench_function("triggers", |b| {
        b.iter(|| {
            (
                TriggerBreakdown::of_all(&s),
                TriggerBreakdown::of_perceptible(&s),
            )
        });
    });
    group.bench_function("locations", |b| {
        b.iter(|| LocationStats::of_all(&s, &classifier));
    });
    group.bench_function("causes", |b| b.iter(|| CauseStats::of_all(&s)));
    group.bench_function("concurrency", |b| b.iter(|| concurrency_stats(&s)));
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let trace = runner::simulate_session(&apps::jedit(), 0, 42);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("ingest_and_characterize", |b| {
        b.iter_batched(
            || trace.clone(),
            |t| {
                let s = AnalysisSession::new(t, AnalysisConfig::default());
                let stats = SessionStats::compute(&s);
                let occ = lagalyzer_core::occurrence::OccurrenceBreakdown::of(&s.mine_patterns());
                (stats, occ)
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_analyses, bench_full_pipeline);
criterion_main!(benches);
