//! Pattern-mining scalability over session size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lagalyzer_core::prelude::*;
use lagalyzer_sim::{apps, runner};

fn bench_mining_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mine_patterns_by_app");
    group.sample_size(15);
    // Small, medium, large episode populations.
    for profile in [apps::crossword_sage(), apps::jmol(), apps::euclide()] {
        let session = AnalysisSession::new(
            runner::simulate_session(&profile, 0, 42),
            AnalysisConfig::default(),
        );
        group.throughput(Throughput::Elements(session.episodes().len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "{}_{}eps",
                profile.name,
                session.episodes().len()
            )),
            &session,
            |b, s| b.iter(|| s.mine_patterns()),
        );
    }
    group.finish();
}

fn bench_signature(c: &mut Criterion) {
    let session = AnalysisSession::new(
        runner::simulate_session(&apps::gantt_project(), 0, 42),
        AnalysisConfig::default(),
    );
    let symbols = session.trace().symbols();
    // Deep GanttProject trees are the worst case for signatures.
    let deepest = session
        .episodes()
        .iter()
        .max_by_key(|e| e.tree().len())
        .expect("episodes exist");
    c.bench_function("shape_signature_deep_tree", |b| {
        b.iter(|| ShapeSignature::of_tree(deepest.tree(), symbols))
    });
}

criterion_group!(benches, bench_mining_scaling, bench_signature);
criterion_main!(benches);
