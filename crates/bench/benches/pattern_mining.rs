//! Pattern-mining scalability over session size, plus the before/after
//! gate for the hash-consed mining hot path.
//!
//! Besides the criterion-style timings printed to stdout, this bench
//! measures [`PatternSet::mine_reference`] (the string-keyed baseline)
//! against [`PatternSet::mine`] (the interned hot path) over the whole
//! simulated Table II corpus, serial, and records both in
//! `BENCH_mining.json` (see `lagalyzer_bench::benchjson`).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use lagalyzer_bench::benchjson;
use lagalyzer_core::prelude::*;
use lagalyzer_sim::{apps, runner};

fn bench_mining_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mine_patterns_by_app");
    group.sample_size(15);
    // Small, medium, large episode populations.
    for profile in [apps::crossword_sage(), apps::jmol(), apps::euclide()] {
        let session = AnalysisSession::new(
            runner::simulate_session(&profile, 0, lagalyzer_bench::SEED),
            AnalysisConfig::default(),
        );
        group.throughput(Throughput::Elements(session.episodes().len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "{}_{}eps",
                profile.name,
                session.episodes().len()
            )),
            &session,
            |b, s| b.iter(|| s.mine_patterns()),
        );
    }
    group.finish();
}

fn bench_reference_mining(c: &mut Criterion) {
    // The string-keyed baseline on the mid-sized app, for a side-by-side
    // with mine_patterns_by_app/Jmol in the printed output.
    let session = AnalysisSession::new(
        runner::simulate_session(&apps::jmol(), 0, lagalyzer_bench::SEED),
        AnalysisConfig::default(),
    );
    let mut group = c.benchmark_group("mine_patterns_reference");
    group.sample_size(15);
    group.throughput(Throughput::Elements(session.episodes().len() as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("Jmol_{}eps", session.episodes().len())),
        &session,
        |b, s| b.iter(|| PatternSet::mine_reference(s)),
    );
    group.finish();
}

fn bench_signature(c: &mut Criterion) {
    let session = AnalysisSession::new(
        runner::simulate_session(&apps::gantt_project(), 0, lagalyzer_bench::SEED),
        AnalysisConfig::default(),
    );
    let symbols = session.trace().symbols();
    // Deep GanttProject trees are the worst case for signatures.
    let deepest = session
        .episodes()
        .iter()
        .max_by_key(|e| e.tree().len())
        .expect("episodes exist");
    c.bench_function("shape_signature_deep_tree", |b| {
        b.iter(|| ShapeSignature::of_tree(deepest.tree(), symbols));
    });
    let mut scratch = Vec::new();
    c.bench_function("shape_tokens_deep_tree", |b| {
        b.iter(|| {
            scratch.clear();
            lagalyzer_core::shape::write_shape_tokens(deepest.tree(), &mut scratch)
        });
    });
}

/// Serial before (string-keyed reference) vs after (hash-consed) over
/// every Table II application, written to `BENCH_mining.json`.
fn emit_mining_json() {
    let budget = benchjson::budget();
    let mut rows = String::new();
    let mut total_episodes = 0u64;
    let mut total_before_ns = 0.0f64;
    let mut total_after_ns = 0.0f64;
    for profile in apps::standard_suite() {
        let session = AnalysisSession::new(
            runner::simulate_session(&profile, 0, lagalyzer_bench::SEED),
            AnalysisConfig::default(),
        );
        let episodes = session.episodes().len() as u64;
        let before = benchjson::time_mean_ns(budget, || PatternSet::mine_reference(&session));
        let after = benchjson::time_mean_ns(budget, || session.mine_patterns());
        eprintln!(
            "{:<16} {:>6} eps  before {:>12.0} ns  after {:>12.0} ns  speedup {:>5.2}x",
            profile.name,
            episodes,
            before,
            after,
            before / after
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"app\": \"{}\", \"episodes\": {episodes}, \
             \"before_ns_per_iter\": {before:.1}, \"after_ns_per_iter\": {after:.1}, \
             \"speedup\": {:.3}}}",
            benchjson::escape(&profile.name),
            before / after
        ));
        total_episodes += episodes;
        total_before_ns += before;
        total_after_ns += after;
    }
    let json = format!(
        "{{\n  \"corpus\": \"table2_standard_suite\",\n  \"seed\": {seed},\n  \
         \"mode\": \"serial\",\n  \"budget_ms\": {budget_ms},\n  \"apps\": [\n{rows}\n  ],\n  \
         \"total\": {{\"episodes\": {total_episodes}, \
         \"before_ns_per_corpus\": {total_before_ns:.1}, \
         \"after_ns_per_corpus\": {total_after_ns:.1}, \
         \"speedup\": {speedup:.3}}}\n}}",
        seed = lagalyzer_bench::SEED,
        budget_ms = budget.as_millis(),
        speedup = total_before_ns / total_after_ns,
    );
    benchjson::record_section("pattern_mining", &json);
    eprintln!(
        "corpus speedup (serial, string-keyed -> hash-consed): {:.2}x",
        total_before_ns / total_after_ns
    );
}

criterion_group!(
    benches,
    bench_mining_scaling,
    bench_reference_mining,
    bench_signature
);

fn main() {
    benches();
    emit_mining_json();
}
