//! Corpus-wide mining vs N separate file loads.
//!
//! Simulates a fleet of sessions of one application, stores them twice —
//! N individual `.lgz` files, and one packed `.lgzc` corpus — and
//! measures the full pipeline on each storage layout: read the bytes
//! back, decode every session, and mine cross-session patterns through
//! the mergeable multi-pattern path. The mining and episode decoding
//! are byte-identical by construction (asserted before timing); the
//! delta is pure ingest overhead, which the corpus pays once instead of
//! N times: one file open and checksum pass, one symbol-table parse
//! (the corpus stores each string exactly once; per-file storage
//! re-parses and re-interns the same strings N times), one header.
//!
//! Ingest-only timings (load + decode, no mining) are reported next to
//! the end-to-end numbers so the two effects are separable.
//!
//! Results land in `BENCH_corpus.json`; `bench-verify gate` enforces
//! corpus-vs-separate speedup > 1.0 on the committed full-budget run.

use criterion::{criterion_group, Criterion};
use lagalyzer_bench::benchjson;
use lagalyzer_core::parallel::available_jobs;
use lagalyzer_core::prelude::*;
use lagalyzer_core::MultiPatternSet;
use lagalyzer_model::SessionTrace;
use lagalyzer_sim::{apps, runner};
use lagalyzer_trace::corpus::{self, CorpusReader, PackOptions};
use lagalyzer_trace::{binary, IndexedTrace};
use std::path::PathBuf;

/// Fleet shape: enough sessions that per-file overhead is the story, and
/// small enough sessions that it is not drowned by episode decoding.
const SESSIONS: u32 = 16;

fn fleet_profile() -> lagalyzer_sim::profile::AppProfile {
    let mut profile = apps::crossword_sage();
    profile.name = "CrosswordSage-fleet".into();
    profile.scale.traced_episodes = 400;
    profile.scale.structured_episodes = 360;
    profile.scale.perceptible_episodes = 14;
    profile
}

/// Simulates the fleet and writes both layouts to a scratch directory.
/// Returns the corpus path and the per-session file paths.
fn store_fleet() -> (PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!("lagalyzer-corpus-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let profile = fleet_profile();
    let traces = runner::simulate_corpus(&profile, SESSIONS, 42);
    let mut files = Vec::with_capacity(traces.len());
    let mut opened = Vec::with_capacity(traces.len());
    for (i, trace) in traces.iter().enumerate() {
        let mut bytes = Vec::new();
        binary::write(trace, &mut bytes).unwrap();
        let path = dir.join(format!("session-{i}.lgz"));
        std::fs::write(&path, &bytes).unwrap();
        files.push(path);
        opened.push(IndexedTrace::open(bytes).unwrap());
    }
    let corpus_path = dir.join("fleet.lgzc");
    std::fs::write(
        &corpus_path,
        corpus::pack(&opened, PackOptions::default()).unwrap(),
    )
    .unwrap();
    (corpus_path, files)
}

/// The per-file pipeline: N reads, N opens, N decodes, one merge-mine.
fn load_separate(files: &[PathBuf], jobs: usize) -> Vec<SessionTrace> {
    files
        .iter()
        .map(|path| {
            IndexedTrace::open(std::fs::read(path).unwrap())
                .unwrap()
                .par_decode(jobs)
                .unwrap()
        })
        .collect()
}

/// The corpus pipeline: one read, one open, one fanned decode.
fn load_corpus(path: &PathBuf, jobs: usize) -> Vec<SessionTrace> {
    CorpusReader::open(std::fs::read(path).unwrap())
        .unwrap()
        .par_decode(jobs)
        .unwrap()
}

fn mine(traces: Vec<SessionTrace>, jobs: usize) -> MultiPatternSet {
    MultiPatternSet::mine_traces_with_jobs(traces, AnalysisConfig::default(), jobs)
}

/// Panics unless both pipelines produce the identical mining result.
fn assert_identical(a: &MultiPatternSet, b: &MultiPatternSet) {
    assert_eq!(a.sessions(), b.sessions());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.patterns().iter().zip(b.patterns()) {
        assert_eq!(x.signature(), y.signature());
        assert_eq!(x.total_episodes(), y.total_episodes());
        assert_eq!(x.total_perceptible(), y.total_perceptible());
        assert_eq!(x.total_lag(), y.total_lag());
    }
}

fn bench_corpus_ingest(c: &mut Criterion) {
    let (corpus_path, files) = store_fleet();
    let jobs = available_jobs();
    assert_identical(
        &mine(load_separate(&files, jobs), jobs),
        &mine(load_corpus(&corpus_path, jobs), jobs),
    );
    let mut group = c.benchmark_group("corpus_ingest");
    group.sample_size(10);
    group.bench_function("separate_files_mine", |b| {
        b.iter(|| mine(load_separate(&files, jobs), jobs));
    });
    group.bench_function("corpus_mine", |b| {
        b.iter(|| mine(load_corpus(&corpus_path, jobs), jobs));
    });
    group.finish();
}

/// Timings for both layouts, written to `BENCH_corpus.json`.
fn emit_corpus_json() {
    let budget = benchjson::budget();
    let (corpus_path, files) = store_fleet();
    let jobs = available_jobs();

    let separate_mined = mine(load_separate(&files, jobs), jobs);
    let corpus_mined = mine(load_corpus(&corpus_path, jobs), jobs);
    assert_identical(&separate_mined, &corpus_mined);
    let episodes: usize = load_corpus(&corpus_path, jobs)
        .iter()
        .map(|t| t.episodes().len())
        .sum();
    let separate_bytes: u64 = files
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum();
    let corpus_bytes = std::fs::metadata(&corpus_path).unwrap().len();

    let separate_load_ns = benchjson::time_best_ns(budget, || load_separate(&files, jobs));
    let corpus_load_ns = benchjson::time_best_ns(budget, || load_corpus(&corpus_path, jobs));
    let separate_ns = benchjson::time_best_ns(budget, || mine(load_separate(&files, jobs), jobs));
    let corpus_ns = benchjson::time_best_ns(budget, || mine(load_corpus(&corpus_path, jobs), jobs));

    eprintln!(
        "corpus ingest: {SESSIONS} sessions, {episodes} episodes\n  \
         load only: separate {separate_load_ns:>12.0} ns, corpus {corpus_load_ns:>12.0} ns \
         ({:.2}x)\n  \
         load+mine: separate {separate_ns:>12.0} ns, corpus {corpus_ns:>12.0} ns ({:.2}x)",
        separate_load_ns / corpus_load_ns,
        separate_ns / corpus_ns,
    );

    let json = format!(
        "{{\n  \"corpus\": \"CrosswordSage-fleet\",\n  \"sessions\": {SESSIONS},\n  \
         \"episodes\": {episodes},\n  \"budget_ms\": {budget_ms},\n  \
         \"available_jobs\": {jobs},\n  \
         \"timing\": \"min over budget, result drop untimed\",\n  \
         \"separate_bytes\": {separate_bytes},\n  \"corpus_bytes\": {corpus_bytes},\n  \
         \"load_only\": {{\n    \
         \"separate_files_ns_per_iter\": {separate_load_ns:.1},\n    \
         \"corpus_ns_per_iter\": {corpus_load_ns:.1},\n    \
         \"speedup\": {load_speedup:.3}\n  }},\n  \
         \"load_and_mine\": {{\n    \
         \"separate_files_ns_per_iter\": {separate_ns:.1},\n    \
         \"corpus_ns_per_iter\": {corpus_ns:.1},\n    \
         \"speedup\": {mine_speedup:.3}\n  }}\n}}",
        budget_ms = budget.as_millis(),
        load_speedup = separate_load_ns / corpus_load_ns,
        mine_speedup = separate_ns / corpus_ns,
    );
    benchjson::record_section_in("BENCH_corpus", "corpus_ingest", &json);
}

criterion_group!(benches, bench_corpus_ingest);

fn main() {
    benches();
    emit_corpus_json();
}
