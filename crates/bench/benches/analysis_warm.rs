//! Warm (rollup-backed) vs cold (full decode) single-trace analysis.
//!
//! Serializes one simulated session twice — with and without a persisted
//! rollup section — and measures the complete `analyze` pipeline on
//! each: read the bytes back, open the index, and produce the Table III
//! stats row plus the mined pattern set. The cold path decodes every
//! episode payload; the warm path reconstructs both results from the
//! rollup's episode summaries without touching a single payload. The
//! results are byte-identical by construction (asserted before timing),
//! so the measured delta is exactly what the persisted cache buys.
//!
//! Results land in `BENCH_warm.json`; `bench-verify gate` enforces the
//! warm-over-cold speedup on the committed full-budget run.

use criterion::{criterion_group, Criterion};
use lagalyzer_bench::benchjson;
use lagalyzer_core::parallel::available_jobs;
use lagalyzer_core::prelude::*;
use lagalyzer_core::{OutlierConfig, OutlierReport, PatternSet, SessionStats, WarmSession};
use lagalyzer_sim::{apps, runner};
use lagalyzer_trace::index::EpisodeFilter;
use lagalyzer_trace::{binary, IndexedTrace};
use std::path::PathBuf;

/// Session shape: enough episodes — with realistically deep sampled
/// stacks and a fast sampler cadence — that payload decoding dominates
/// the cold path, as it does on real day-long traces.
fn profile() -> lagalyzer_sim::profile::AppProfile {
    let mut profile = apps::jedit();
    profile.name = "jEdit-warm".into();
    profile.scale.traced_episodes = 1200;
    profile.scale.structured_episodes = 1080;
    profile.scale.perceptible_episodes = 40;
    profile.scale.tree_size = 40;
    profile.scale.tree_depth = 10;
    profile.sample_period = lagalyzer_model::DurationNs::from_millis(2);
    profile.extra_stack_frames = 24;
    profile
}

/// Simulates the session and stores both encodings in a scratch dir.
/// Returns `(with rollup, without rollup)` paths.
fn store_session() -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("lagalyzer-warm-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = runner::simulate_session(&profile(), 0, 42);

    let mut warm_bytes = Vec::new();
    let rollup = lagalyzer_core::rollup::build(&trace);
    binary::write_with_rollup(&trace, &mut warm_bytes, rollup).unwrap();
    let warm_path = dir.join("session-warm.lgz");
    std::fs::write(&warm_path, &warm_bytes).unwrap();

    let mut cold_bytes = Vec::new();
    binary::write(&trace, &mut cold_bytes).unwrap();
    let cold_path = dir.join("session-cold.lgz");
    std::fs::write(&cold_path, &cold_bytes).unwrap();

    (warm_path, cold_path)
}

/// The cold `analyze` pipeline, exactly what the CLI computes: read,
/// open, decode every payload, stats row, mined patterns, outlier
/// report.
fn analyze_cold(path: &PathBuf, jobs: usize) -> (SessionStats, PatternSet, String) {
    let trace = IndexedTrace::open(std::fs::read(path).unwrap())
        .unwrap()
        .par_decode(jobs)
        .unwrap();
    let session = AnalysisSession::new(trace, AnalysisConfig::default());
    let stats = SessionStats::compute_with_jobs(&session, jobs);
    let patterns = session.mine_patterns_with_jobs(jobs);
    let outliers =
        OutlierReport::analyze_with_jobs(&session, &patterns, &OutlierConfig::default(), jobs)
            .render_text(session.trace().symbols());
    (stats, patterns, outliers)
}

/// The warm pipeline: read, open, answer from the rollup summaries —
/// only the flagged lock/wait episodes get their payloads decoded.
fn analyze_warm(path: &PathBuf, jobs: usize) -> (SessionStats, PatternSet, String) {
    let indexed = IndexedTrace::open(std::fs::read(path).unwrap()).unwrap();
    let warm = WarmSession::of_indexed(
        &indexed,
        AnalysisConfig::default(),
        &EpisodeFilter::default(),
    )
    .expect("bench trace carries a valid rollup");
    let patterns = warm.mine_patterns_with_jobs(jobs);
    let stats = warm.session_stats_from(&patterns, jobs);
    let decode = |positions: &[usize]| indexed.par_decode_subset(jobs, positions).ok();
    let outliers = warm
        .outliers(&patterns, &OutlierConfig::default(), &decode)
        .expect("warm outliers answer from a valid rollup")
        .render_text(warm.symbols());
    (stats, patterns, outliers)
}

/// Panics unless both pipelines produce the identical analysis.
fn assert_identical(
    a: &(SessionStats, PatternSet, String),
    b: &(SessionStats, PatternSet, String),
) {
    assert_eq!(a.0, b.0, "stats rows diverge");
    assert_eq!(a.1.len(), b.1.len());
    assert_eq!(a.1.structureless_episodes(), b.1.structureless_episodes());
    assert_eq!(a.1.covered_episodes(), b.1.covered_episodes());
    for (x, y) in a.1.patterns().iter().zip(b.1.patterns()) {
        assert_eq!(x.signature(), y.signature());
        assert_eq!(x.episode_indices(), y.episode_indices());
        assert_eq!(x.stats(), y.stats());
        assert_eq!(x.perceptible_count(), y.perceptible_count());
    }
    assert_eq!(a.2, b.2, "outlier reports diverge");
}

fn bench_analysis_warm(c: &mut Criterion) {
    let (warm_path, cold_path) = store_session();
    let jobs = available_jobs();
    assert_identical(
        &analyze_cold(&cold_path, jobs),
        &analyze_warm(&warm_path, jobs),
    );
    let mut group = c.benchmark_group("analysis_warm");
    group.sample_size(10);
    group.bench_function("cold_decode_analyze", |b| {
        b.iter(|| analyze_cold(&cold_path, jobs));
    });
    group.bench_function("warm_rollup_analyze", |b| {
        b.iter(|| analyze_warm(&warm_path, jobs));
    });
    group.finish();
}

/// Timings for both paths, written to `BENCH_warm.json`.
fn emit_warm_json() {
    let budget = benchjson::budget();
    let (warm_path, cold_path) = store_session();
    let jobs = available_jobs();

    let cold_result = analyze_cold(&cold_path, jobs);
    let warm_result = analyze_warm(&warm_path, jobs);
    assert_identical(&cold_result, &warm_result);
    let episodes = cold_result.0.traced_count;
    let cold_bytes = std::fs::metadata(&cold_path).unwrap().len();
    let warm_bytes = std::fs::metadata(&warm_path).unwrap().len();

    let cold_ns = benchjson::time_best_ns(budget, || analyze_cold(&cold_path, jobs));
    let warm_ns = benchjson::time_best_ns(budget, || analyze_warm(&warm_path, jobs));

    eprintln!(
        "warm analysis: {episodes} episodes\n  \
         cold {cold_ns:>12.0} ns, warm {warm_ns:>12.0} ns ({:.2}x)",
        cold_ns / warm_ns,
    );

    let json = format!(
        "{{\n  \"corpus\": \"jEdit-warm\",\n  \"episodes\": {episodes},\n  \
         \"budget_ms\": {budget_ms},\n  \"available_jobs\": {jobs},\n  \
         \"timing\": \"min over budget, result drop untimed\",\n  \
         \"trace_bytes\": {cold_bytes},\n  \"trace_bytes_with_rollup\": {warm_bytes},\n  \
         \"analyze\": {{\n    \
         \"cold_ns_per_iter\": {cold_ns:.1},\n    \
         \"warm_ns_per_iter\": {warm_ns:.1},\n    \
         \"speedup\": {speedup:.3}\n  }}\n}}",
        budget_ms = budget.as_millis(),
        speedup = cold_ns / warm_ns,
    );
    benchjson::record_section_in("BENCH_warm", "analysis_warm", &json);
}

criterion_group!(benches, bench_analysis_warm);

fn main() {
    benches();
    emit_warm_json();
}
