//! Serial vs sharded lock-graph construction over one simulated session.
//!
//! The hazard analyzer's hot loop is [`LockGraph::build_with_jobs`]:
//! every episode's blocked/waiting samples are lifted into contended
//! waits and merged into the session-wide graph. This bench measures the
//! serial build against the sharded one (episodes fanned over
//! `available_jobs()` workers, shard graphs merged in order) on a
//! session big enough that wait extraction dominates. The two graphs are
//! asserted equal before timing, so the measured delta is pure
//! scheduling.
//!
//! Results land in `BENCH_hazards.json`; `bench-verify check` validates
//! the structure (no performance gate — merge cost makes the speedup
//! hardware-dependent, unlike decode scaling).

use criterion::{criterion_group, Criterion};
use lagalyzer_bench::benchjson;
use lagalyzer_core::parallel::available_jobs;
use lagalyzer_model::{LockGraph, SessionTrace};
use lagalyzer_sim::{apps, runner};

/// Session shape: jEdit's profile scaled up, with a fast sampler so the
/// contended episodes carry realistically many blocked samples.
fn session() -> SessionTrace {
    let mut profile = apps::jedit();
    profile.name = "jEdit-hazards".into();
    profile.scale.traced_episodes = 1200;
    profile.scale.structured_episodes = 1080;
    profile.scale.perceptible_episodes = 40;
    profile.scale.tree_size = 40;
    profile.scale.tree_depth = 10;
    profile.sample_period = lagalyzer_model::DurationNs::from_millis(2);
    profile.extra_stack_frames = 24;
    runner::simulate_session(&profile, 0, 42)
}

fn bench_hazard_scan(c: &mut Criterion) {
    let trace = session();
    let jobs = available_jobs();
    assert_eq!(
        LockGraph::build_with_jobs(trace.episodes(), 1),
        LockGraph::build_with_jobs(trace.episodes(), jobs),
        "sharded lock-graph construction must be order-identical"
    );
    let mut group = c.benchmark_group("hazard_scan");
    group.sample_size(10);
    group.bench_function("lockgraph_build_serial", |b| {
        b.iter(|| LockGraph::build_with_jobs(trace.episodes(), 1));
    });
    group.bench_function("lockgraph_build_sharded", |b| {
        b.iter(|| LockGraph::build_with_jobs(trace.episodes(), jobs));
    });
    group.finish();
}

/// Timings for both schedules, written to `BENCH_hazards.json`.
fn emit_hazards_json() {
    let budget = benchjson::budget();
    let trace = session();
    let jobs = available_jobs();

    let graph = LockGraph::build_with_jobs(trace.episodes(), jobs);
    assert_eq!(graph, LockGraph::build_with_jobs(trace.episodes(), 1));
    let episodes = trace.episodes().len();
    let waits = graph.waits().len();
    let locks = graph.lock_count();
    let held_edges = graph.edge_count();

    let serial_ns =
        benchjson::time_best_ns(budget, || LockGraph::build_with_jobs(trace.episodes(), 1));
    let sharded_ns = benchjson::time_best_ns(budget, || {
        LockGraph::build_with_jobs(trace.episodes(), jobs)
    });

    eprintln!(
        "hazard scan: {episodes} episodes, {waits} waits, {locks} locks\n  \
         serial {serial_ns:>12.0} ns, sharded {sharded_ns:>12.0} ns ({:.2}x)",
        serial_ns / sharded_ns,
    );

    let json = format!(
        "{{\n  \"corpus\": \"jEdit-hazards\",\n  \"episodes\": {episodes},\n  \
         \"budget_ms\": {budget_ms},\n  \"available_jobs\": {jobs},\n  \
         \"timing\": \"min over budget, result drop untimed\",\n  \
         \"waits\": {waits},\n  \"locks\": {locks},\n  \"held_edges\": {held_edges},\n  \
         \"build\": {{\n    \
         \"serial_ns_per_iter\": {serial_ns:.1},\n    \
         \"sharded_ns_per_iter\": {sharded_ns:.1},\n    \
         \"speedup\": {speedup:.3}\n  }}\n}}",
        budget_ms = budget.as_millis(),
        speedup = serial_ns / sharded_ns,
    );
    benchjson::record_section_in("BENCH_hazards", "hazard_scan", &json);
}

criterion_group!(benches, bench_hazard_scan);

fn main() {
    benches();
    emit_hazards_json();
}
