//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! * `gc_exclusion`: mining with the paper's GC-excluding signature vs a
//!   variant that keeps GC nodes in the signature (how much pattern-count
//!   inflation and time the exclusion saves/costs);
//! * `signature_representation`: canonical-string signatures vs hashing
//!   the structure directly (strings are kept because they make patterns
//!   stable across sessions and debuggable; this measures their cost);
//! * `timing_buckets`: structure-only equivalence vs structure plus
//!   duration-bucket keys (what the paper deliberately avoids).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lagalyzer_core::prelude::*;
use lagalyzer_model::{Episode, IntervalKind, IntervalTree, NodeId, SymbolTable};
use lagalyzer_sim::{apps, runner};

/// A signature variant that *keeps* GC nodes (ablation of §II-D).
fn signature_with_gc(tree: &IntervalTree, symbols: &SymbolTable) -> String {
    fn walk(tree: &IntervalTree, id: NodeId, symbols: &SymbolTable, out: &mut String) {
        let interval = tree.interval(id);
        out.push(interval.kind.tag() as char);
        if let Some(sym) = interval.symbol {
            out.push('(');
            out.push_str(symbols.resolve(sym.class).unwrap_or("?"));
            out.push('.');
            out.push_str(symbols.resolve(sym.method).unwrap_or("?"));
            out.push(')');
        }
        let children = tree.children(id);
        if !children.is_empty() {
            out.push('[');
            for &c in children {
                walk(tree, c, symbols, out);
            }
            out.push(']');
        }
    }
    let mut out = String::new();
    walk(tree, tree.root(), symbols, &mut out);
    out
}

/// A hash-only signature (no canonical string).
fn signature_hash(tree: &IntervalTree, symbols: &SymbolTable) -> u64 {
    fn walk(tree: &IntervalTree, id: NodeId, symbols: &SymbolTable, h: &mut DefaultHasher) {
        let interval = tree.interval(id);
        if interval.kind == IntervalKind::Gc {
            return;
        }
        interval.kind.tag().hash(h);
        if let Some(sym) = interval.symbol {
            symbols.resolve(sym.class).hash(h);
            symbols.resolve(sym.method).hash(h);
        }
        0xfeu8.hash(h);
        for &c in tree.children(id) {
            walk(tree, c, symbols, h);
        }
        0xffu8.hash(h);
    }
    let mut h = DefaultHasher::new();
    walk(tree, tree.root(), symbols, &mut h);
    h.finish()
}

/// Coarse duration bucket (powers of ~4 of milliseconds).
fn duration_bucket(e: &Episode) -> u32 {
    let ms = e.duration().as_millis().max(1);
    (64 - u64::leading_zeros(ms) as u64) as u32 / 2
}

fn bench_ablations(c: &mut Criterion) {
    let session = AnalysisSession::new(
        runner::simulate_session(&apps::argo_uml(), 0, 42),
        AnalysisConfig::default(),
    );
    let symbols = session.trace().symbols();
    let episodes: Vec<&Episode> = session
        .episodes()
        .iter()
        .filter(|e| !e.is_structureless())
        .collect();

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    group.bench_function("mining_gc_excluded_paper", |b| {
        b.iter(|| session.mine_patterns().len());
    });
    group.bench_function("mining_gc_included_variant", |b| {
        b.iter(|| {
            let mut groups: HashMap<String, u64> = HashMap::new();
            for e in &episodes {
                *groups
                    .entry(signature_with_gc(e.tree(), symbols))
                    .or_default() += 1;
            }
            groups.len()
        });
    });
    group.bench_function("signature_strings", |b| {
        b.iter(|| {
            for e in &episodes {
                black_box(ShapeSignature::of_tree(e.tree(), symbols));
            }
        });
    });
    group.bench_function("signature_hash_only", |b| {
        b.iter(|| {
            for e in &episodes {
                black_box(signature_hash(e.tree(), symbols));
            }
        });
    });
    group.bench_function("timing_buckets_variant", |b| {
        b.iter(|| {
            let mut groups: HashMap<(String, u32), u64> = HashMap::new();
            for e in &episodes {
                let key = (
                    ShapeSignature::of_tree(e.tree(), symbols)
                        .as_str()
                        .to_owned(),
                    duration_bucket(e),
                );
                *groups.entry(key).or_default() += 1;
            }
            groups.len()
        });
    });
    group.finish();

    // Report the pattern-count effect of the ablations once.
    let paper = session.mine_patterns().len();
    let mut with_gc: HashMap<String, u64> = HashMap::new();
    let mut with_time: HashMap<(String, u32), u64> = HashMap::new();
    for e in &episodes {
        *with_gc
            .entry(signature_with_gc(e.tree(), symbols))
            .or_default() += 1;
        let key = (
            ShapeSignature::of_tree(e.tree(), symbols)
                .as_str()
                .to_owned(),
            duration_bucket(e),
        );
        *with_time.entry(key).or_default() += 1;
    }
    eprintln!(
        "pattern counts — paper signature: {paper}; GC included: {}; timing buckets: {}",
        with_gc.len(),
        with_time.len()
    );
}

criterion_group!(benches, bench_ablations, bench_tree_storage);
criterion_main!(benches);

/// Tree-storage ablation: the arena layout used by `IntervalTree` vs a
/// boxed-node tree, compared on full pre-order traversal (the access
/// pattern every analysis uses).
mod tree_storage {
    use lagalyzer_model::{Interval, IntervalTree, NodeId};

    /// The boxed alternative a naive implementation would use. The
    /// per-child `Box` is the whole point of the ablation (pointer-chasing
    /// vs the arena's contiguous layout), so the `vec_box` lint is
    /// silenced deliberately.
    #[allow(clippy::vec_box)]
    pub struct BoxedNode {
        pub interval: Interval,
        pub children: Vec<Box<BoxedNode>>,
    }

    pub fn to_boxed(tree: &IntervalTree, id: NodeId) -> Box<BoxedNode> {
        Box::new(BoxedNode {
            interval: *tree.interval(id),
            children: tree
                .children(id)
                .iter()
                .map(|&c| to_boxed(tree, c))
                .collect(),
        })
    }

    pub fn boxed_pre_order_sum(node: &BoxedNode) -> u64 {
        let mut sum = node.interval.duration().as_nanos();
        for c in &node.children {
            sum += boxed_pre_order_sum(c);
        }
        sum
    }
}

fn bench_tree_storage(c: &mut Criterion) {
    use lagalyzer_sim::scenarios;
    let scenario = scenarios::figure2(); // the deep GanttProject tree
    let tree = scenario.episode.tree();
    let boxed = tree_storage::to_boxed(tree, tree.root());

    let mut group = c.benchmark_group("tree_storage");
    group.bench_function("arena_pre_order", |b| {
        b.iter(|| {
            black_box(&tree)
                .pre_order()
                .map(|id| tree.interval(id).duration().as_nanos())
                .sum::<u64>()
        });
    });
    group.bench_function("boxed_pre_order", |b| {
        b.iter(|| tree_storage::boxed_pre_order_sum(black_box(&boxed)));
    });
    group.finish();
}
