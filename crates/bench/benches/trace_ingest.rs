//! Serial vs indexed trace ingest.
//!
//! Encodes one oversized session (>= 10k traced episodes) to the binary
//! codec and measures three ways of getting episodes out of the bytes:
//!
//! * the serial streaming reader (`binary::read`), the pre-index baseline;
//! * `IndexedTrace::open` once, then `par_decode` at increasing `--jobs`
//!   counts — the extent footer makes every episode's byte range known up
//!   front, so decoding fans out over the worker pool. The open cost
//!   (footer parse plus taking ownership of the bytes) is reported as its
//!   own number rather than folded into every decode iteration: a
//!   resident analyzer opens a trace once and decodes against it many
//!   times, which is exactly the workload the index exists for.
//! * skip-decode filtered analysis: the perceptible-episodes-only
//!   question answered by pruning extents against the index *before*
//!   decoding, versus decoding everything and filtering afterwards.
//!
//! All JSON numbers are minimum-of-N with the previous iteration's
//! result dropped outside the timed window (`benchjson::time_best_ns`);
//! see that function for why the minimum is the right estimator here.
//!
//! Requested job counts above the machine's parallelism clamp to the
//! same effective worker schedule (`effective_jobs`), so rows that share
//! an effective count are measured once and reported with identical
//! numbers — the jobs axis is then monotone by construction instead of
//! reporting scheduler noise as a phantom regression.
//!
//! Results land in `BENCH_ingest.json` (see `lagalyzer_bench::benchjson`).

use std::collections::BTreeMap;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use lagalyzer_bench::benchjson;
use lagalyzer_core::parallel::{available_jobs, effective_jobs};
use lagalyzer_core::prelude::*;
use lagalyzer_model::{DurationNs, SessionTrace};
use lagalyzer_sim::{apps, runner};
use lagalyzer_trace::{binary, EpisodeFilter, IndexedTrace};

/// Euclide scaled up ~3x so a single session clears 10k traced episodes.
fn oversized_profile() -> lagalyzer_sim::profile::AppProfile {
    let mut profile = apps::euclide();
    profile.name = "Euclide-3x".into();
    profile.scale.traced_episodes = 29_000;
    profile.scale.structured_episodes = 27_100;
    profile.scale.perceptible_episodes = 290;
    profile.scale.distinct_patterns = 600;
    profile
}

fn encoded_session() -> (SessionTrace, Vec<u8>) {
    let trace = runner::simulate_session(&oversized_profile(), 0, 42);
    assert!(
        trace.episodes().len() >= 10_000,
        "bench needs a 10k-episode session"
    );
    let mut bytes = Vec::new();
    binary::write(&trace, &mut bytes).unwrap();
    (trace, bytes)
}

fn job_counts() -> Vec<usize> {
    let mut jobs = vec![1, 2, 4, 8];
    let max = available_jobs();
    if !jobs.contains(&max) {
        jobs.push(max);
        jobs.sort_unstable();
    }
    jobs
}

fn bench_decode(c: &mut Criterion) {
    let (trace, bytes) = encoded_session();
    let mut group = c.benchmark_group("trace_decode");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("serial_read", |b| {
        b.iter(|| binary::read(bytes.as_slice()).unwrap());
    });
    group.bench_function("indexed_open", |b| {
        b.iter(|| IndexedTrace::open(bytes.clone()).unwrap());
    });
    let indexed = IndexedTrace::open(bytes.clone()).unwrap();
    for jobs in job_counts() {
        group.bench_with_input(
            BenchmarkId::new("indexed_par_decode", format!("jobs{jobs}")),
            &jobs,
            |b, &jobs| {
                b.iter(|| indexed.par_decode(jobs).unwrap());
            },
        );
    }
    group.finish();
    drop(trace);
}

fn bench_filtered_analysis(c: &mut Criterion) {
    let (_, bytes) = encoded_session();
    let filter = EpisodeFilter::new().min_duration(DurationNs::PERCEPTIBLE_DEFAULT);
    let mut group = c.benchmark_group("perceptible_stats");
    group.sample_size(10);
    group.bench_function("full_decode_then_filter", |b| {
        b.iter(|| {
            let trace = binary::read(bytes.as_slice()).unwrap();
            let trace = filter.retain(trace);
            let session = AnalysisSession::new(trace, AnalysisConfig::default());
            SessionStats::compute(&session)
        });
    });
    group.bench_function("skip_decode_filtered", |b| {
        b.iter(|| {
            let trace = IndexedTrace::open(bytes.clone())
                .unwrap()
                .par_decode_filtered(1, &filter)
                .unwrap();
            let session = AnalysisSession::new(trace, AnalysisConfig::default());
            SessionStats::compute(&session)
        });
    });
    group.finish();
}

/// Decode and filtered-analysis timings, written to `BENCH_ingest.json`.
fn emit_ingest_json() {
    let budget = benchjson::budget();
    let (trace, bytes) = encoded_session();
    let episodes = trace.episodes().len() as u64;
    drop(trace);

    let serial_ns = benchjson::time_best_ns(budget, || binary::read(bytes.as_slice()).unwrap());
    // Open cost, reported once: footer parse plus the bytes handoff (the
    // `Vec` clone stands in for reading the file into owned memory).
    let open_ns = benchjson::time_best_ns(budget, || IndexedTrace::open(bytes.clone()).unwrap());
    let indexed = IndexedTrace::open(bytes.clone()).unwrap();

    // One measurement per *effective* worker class; requested counts
    // that clamp to the same schedule share it (see module docs).
    let mut ns_by_class: BTreeMap<usize, f64> = BTreeMap::new();
    let mut rows = String::new();
    for jobs in job_counts() {
        let effective = effective_jobs(jobs);
        let ns = *ns_by_class.entry(effective).or_insert_with(|| {
            benchjson::time_best_ns(budget, || indexed.par_decode(jobs).unwrap())
        });
        eprintln!(
            "decode jobs={jobs:<2} (effective {effective}) {ns:>12.0} ns/iter  \
             speedup vs serial reader {:>5.2}x",
            serial_ns / ns
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"jobs\": {jobs}, \"effective_jobs\": {effective}, \
             \"ns_per_iter\": {ns:.1}, \"speedup_vs_serial\": {:.3}}}",
            serial_ns / ns
        ));
    }

    let filter = EpisodeFilter::new().min_duration(DurationNs::PERCEPTIBLE_DEFAULT);
    let full_ns = benchjson::time_best_ns(budget, || {
        let trace = filter.retain(binary::read(bytes.as_slice()).unwrap());
        let session = AnalysisSession::new(trace, AnalysisConfig::default());
        SessionStats::compute(&session)
    });
    let skip_ns = benchjson::time_best_ns(budget, || {
        let trace = IndexedTrace::open(bytes.clone())
            .unwrap()
            .par_decode_filtered(1, &filter)
            .unwrap();
        let session = AnalysisSession::new(trace, AnalysisConfig::default());
        SessionStats::compute(&session)
    });
    eprintln!(
        "perceptible stats: full decode {full_ns:.0} ns, skip-decode {skip_ns:.0} ns \
         ({:.2}x)",
        full_ns / skip_ns
    );

    let json = format!(
        "{{\n  \"corpus\": \"Euclide-3x\",\n  \"episodes\": {episodes},\n  \
         \"trace_bytes\": {trace_bytes},\n  \"budget_ms\": {budget_ms},\n  \
         \"available_jobs\": {available},\n  \
         \"timing\": \"min over budget, result drop untimed\",\n  \
         \"serial_read_ns_per_iter\": {serial_ns:.1},\n  \
         \"indexed_open_ns\": {open_ns:.1},\n  \
         \"indexed_decode_by_jobs\": [\n{rows}\n  ],\n  \
         \"filtered_analysis\": {{\n    \
         \"filter\": \"min-lag 100ms\",\n    \
         \"full_decode_ns_per_iter\": {full_ns:.1},\n    \
         \"skip_decode_ns_per_iter\": {skip_ns:.1},\n    \
         \"speedup\": {filter_speedup:.3}\n  }}\n}}",
        trace_bytes = bytes.len(),
        budget_ms = budget.as_millis(),
        available = available_jobs(),
        filter_speedup = full_ns / skip_ns,
    );
    benchjson::record_section_in("BENCH_ingest", "trace_ingest", &json);
}

criterion_group!(benches, bench_decode, bench_filtered_analysis);

fn main() {
    benches();
    emit_ingest_json();
}
