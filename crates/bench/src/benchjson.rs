//! Machine-readable bench output: `BENCH_mining.json`, `BENCH_ingest.json`.
//!
//! The vendored criterion stand-in prints human-readable timings only, so
//! the benches record their before/after measurements here as hand-rolled
//! JSON (no serde in the tree). Each bench binary contributes one
//! top-level *section* of one output file; sections are staged as
//! fragment files under `target/experiments/bench-sections/<file>/` and
//! the combined `<file>.json` is regenerated from all of its staged
//! fragments on every [`record_section_in`] call, so the benches feeding
//! one file can run in any order (or alone) and the combined file stays
//! consistent. `BENCH_MINING_JSON` / `BENCH_INGEST_JSON` (the file stem
//! upper-cased plus `_JSON`) move a combined file elsewhere.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// `target/experiments` under the *workspace* root.
///
/// Cargo runs benches with the package directory as the working
/// directory (unlike `cargo run`), so a relative `target/experiments`
/// would land in `crates/bench/target/`. Anchor on this crate's manifest
/// dir instead so the artifact always sits next to the experiment
/// binaries' output, wherever the bench is invoked from.
fn workspace_experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .join("target/experiments");
    fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// Where the combined JSON for `stem` (e.g. `BENCH_mining`) lands; the
/// environment variable `<STEM>_JSON` (upper-cased) overrides.
pub fn output_path_for(stem: &str) -> PathBuf {
    let env_key = format!("{}_JSON", stem.to_uppercase());
    std::env::var_os(&env_key).map_or_else(
        || workspace_experiments_dir().join(format!("{stem}.json")),
        PathBuf::from,
    )
}

/// Where the combined mining JSON lands (`BENCH_MINING_JSON` overrides).
pub fn output_path() -> PathBuf {
    output_path_for("BENCH_mining")
}

fn sections_dir(stem: &str) -> PathBuf {
    let dir = workspace_experiments_dir()
        .join("bench-sections")
        .join(stem);
    fs::create_dir_all(&dir).expect("can create bench-sections dir");
    dir
}

/// Stages `json` (a complete JSON value) as section `key` of the combined
/// file `<stem>.json` and rewrites that file from every staged section.
pub fn record_section_in(stem: &str, key: &str, json: &str) {
    assert!(
        key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'),
        "section keys are identifiers"
    );
    fs::write(sections_dir(stem).join(format!("{key}.json")), json).expect("write bench section");

    let mut sections: Vec<(String, String)> = fs::read_dir(sections_dir(stem))
        .expect("read bench-sections dir")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_stem()?.to_str()?.to_owned();
            (path.extension()? == "json").then(|| (name, fs::read_to_string(&path).ok()))
        })
        .filter_map(|(name, body)| Some((name, body?)))
        .collect();
    sections.sort();

    let mut combined = String::from("{\n");
    for (i, (name, body)) in sections.iter().enumerate() {
        if i > 0 {
            combined.push_str(",\n");
        }
        combined.push_str(&format!("  \"{name}\": {}", body.trim()));
    }
    combined.push_str("\n}\n");
    let path = output_path_for(stem);
    fs::write(&path, combined).expect("write combined bench JSON");
    eprintln!("wrote {}", path.display());
}

/// Stages `json` as section `key` of the combined `BENCH_mining.json`.
pub fn record_section(key: &str, json: &str) {
    record_section_in("BENCH_mining", key, json);
}

/// Escapes a string for inclusion in JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The per-bench time budget (`CRITERION_BUDGET_MS`, default 500 ms) —
/// the same knob the vendored criterion uses, so the JSON emission scales
/// down with it in CI smoke runs.
pub fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500u64);
    Duration::from_millis(ms)
}

/// Times `routine` repeatedly (one warm-up call, then at least one
/// measured iteration) until `budget` is spent; returns mean ns/iter.
pub fn time_mean_ns<O, R: FnMut() -> O>(budget: Duration, mut routine: R) -> f64 {
    std::hint::black_box(routine());
    let start = Instant::now();
    let mut iters = 0u64;
    let elapsed = loop {
        std::hint::black_box(routine());
        iters += 1;
        let elapsed = start.elapsed();
        if elapsed >= budget {
            break elapsed;
        }
    };
    elapsed.as_nanos() as f64 / iters as f64
}

/// Times `routine` repeatedly (one warm-up call, then at least one
/// measured iteration) until `budget` is spent; returns the *minimum*
/// ns/iter observed.
///
/// Two deliberate differences from [`time_mean_ns`] make this the
/// estimator for allocation-heavy before/after comparisons:
///
/// * each iteration's output is dropped *outside* the timed window
///   (criterion's `iter_with_large_drop`), so tearing down the previous
///   result — hundreds of thousands of frees for a decoded session —
///   does not pollute the construction time being compared;
/// * the minimum, not the mean, is reported. On shared, noisy hosts
///   every perturbation (scheduling, frequency drift, page-cache state)
///   only ever *adds* time, so the minimum over many iterations is the
///   stable estimate of what the code costs.
pub fn time_best_ns<O, R: FnMut() -> O>(budget: Duration, mut routine: R) -> f64 {
    std::hint::black_box(routine());
    let start = Instant::now();
    let mut best = f64::INFINITY;
    loop {
        let t = Instant::now();
        let out = routine();
        let ns = t.elapsed().as_nanos() as f64;
        std::hint::black_box(&out);
        drop(out);
        best = best.min(ns);
        if start.elapsed() >= budget {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("tab\there"), "tab\\u0009here");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn time_mean_ns_measures() {
        let mean = time_mean_ns(Duration::from_millis(2), || std::hint::black_box(1u64 + 1));
        assert!(mean > 0.0);
    }

    #[test]
    fn time_best_ns_measures() {
        let best = time_best_ns(Duration::from_millis(2), || {
            std::hint::black_box(vec![1u8; 64])
        });
        assert!(best.is_finite() && best > 0.0);
    }

    #[test]
    fn sections_combine_into_one_object() {
        // Use a stem of our own rather than staging a throwaway section
        // into the real BENCH_mining.json: a test section leaking into a
        // shipped artifact is exactly what `bench-verify` rejects.
        const STEM: &str = "zz_benchjson_selftest";

        /// Removes the test stem's staging dir and combined file even
        /// when an assertion below panics mid-test.
        struct Cleanup;
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = fs::remove_dir_all(
                    workspace_experiments_dir().join(format!("bench-sections/{STEM}")),
                );
                let _ = fs::remove_file(output_path_for(STEM));
            }
        }
        let _cleanup = Cleanup;

        record_section_in(STEM, "zz_test_section", r#"{"a": 1}"#);
        let combined = fs::read_to_string(output_path_for(STEM)).unwrap();
        assert!(combined.trim_start().starts_with('{'));
        assert!(combined.contains("\"zz_test_section\": {\"a\": 1}"));
        assert!(combined.trim_end().ends_with('}'));
    }
}
