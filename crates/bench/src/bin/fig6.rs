//! Regenerates Fig 6: location where time was spent during (perceptible)
//! episodes.

use lagalyzer_bench::{full_study, save_figure};
use lagalyzer_report::figures;

fn main() {
    let study = full_study();
    for perceptible in [false, true] {
        let (samples, intervals) = figures::fig6(&study, perceptible);
        println!("== {} ==", samples.id);
        print!("{}", samples.text);
        println!("== {} ==", intervals.id);
        print!("{}", intervals.text);
        save_figure(&samples);
        save_figure(&intervals);
    }
    let n = study.apps.len() as f64;
    let mut lib = 0.0;
    let mut gc = 0.0;
    let mut native = 0.0;
    for app in &study.apps {
        lib += app.aggregate.location_perceptible.library / n;
        gc += app.aggregate.location_perceptible.gc / n;
        native += app.aggregate.location_perceptible.native / n;
    }
    println!("\npaper (perceptible means): 52% library / 48% application; 11% GC; 5% native");
    println!(
        "measured: {:.0}% library / {:.0}% application; {:.0}% GC; {:.0}% native",
        lib * 100.0,
        (1.0 - lib) * 100.0,
        gc * 100.0,
        native * 100.0
    );
}
